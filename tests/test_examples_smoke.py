"""Smoke tests: the fast examples must run end to end.

The training-heavy examples (quickstart, small-data, regression) are
exercised implicitly by the equivalent experiment benches; here we run the
two fast ones so a broken public API surfaces in the unit suite.
"""

import pathlib
import runpy


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_examples_exist(self):
        expected = {
            "quickstart.py",
            "grng_quality.py",
            "small_data_diagnosis.py",
            "design_space_exploration.py",
            "accelerator_pipeline.py",
            "regression_uncertainty.py",
        }
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= present

    def test_accelerator_pipeline_example(self, capsys):
        out = _run_example("accelerator_pipeline.py", capsys)
        assert "bit-exact match: True" in out

    def test_design_space_example(self, capsys):
        out = _run_example("design_space_exploration.py", capsys)
        assert "<= paper" in out
        assert "img/J" in out
