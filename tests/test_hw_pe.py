"""Tests for the PE / PE-set models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat, requantize
from repro.hw.pe import PE_PIPELINE_STAGES, PeSet, ProcessingElement

# Single shared format keeps the reference arithmetic simple; the
# mixed-format path is exercised by tests/test_hw_accelerator.py.
FMT = QFormat(integer_bits=2, frac_bits=5)


def _acc_code(fmt: QFormat, value: float) -> int:
    """A bias value expressed at the PE's accumulator precision."""
    return int(round(value * (1 << (2 * fmt.frac_bits))))


class TestProcessingElement:
    def test_single_mac_matches_fixed_dot(self):
        rng = np.random.default_rng(0)
        w = FMT.quantize(rng.uniform(-1, 1, 8))
        x = FMT.quantize(rng.uniform(-1, 1, 8))
        pe = ProcessingElement(8, FMT)
        pe.accumulate(w, x)
        got = pe.finish(0, apply_relu=False)
        wide = int(w.astype(np.int64) @ x.astype(np.int64))
        want = int(requantize(np.array([wide]), 2 * FMT.frac_bits, FMT)[0])
        assert got == want

    def test_multi_iteration_accumulation(self):
        # A 24-input neuron on an 8-input PE: three iterations must equal
        # one wide dot product.
        rng = np.random.default_rng(1)
        w = FMT.quantize(rng.uniform(-1, 1, 24))
        x = FMT.quantize(rng.uniform(-1, 1, 24))
        pe = ProcessingElement(8, FMT)
        for i in range(3):
            pe.accumulate(w[i * 8 : (i + 1) * 8], x[i * 8 : (i + 1) * 8])
        got = pe.finish(0, apply_relu=False)
        wide = int(w.astype(np.int64) @ x.astype(np.int64))
        want = int(requantize(np.array([wide]), 2 * FMT.frac_bits, FMT)[0])
        assert got == want

    def test_bias_and_relu(self):
        pe = ProcessingElement(4, FMT)
        pe.accumulate(FMT.quantize(np.array([-1.0, 0, 0, 0])), FMT.quantize(np.array([1.0, 0, 0, 0])))
        # Accumulated -1.0; bias +0.5 -> -0.5 -> ReLU clamps to 0.
        assert pe.finish(_acc_code(FMT, 0.5), apply_relu=True) == 0
        pe.accumulate(FMT.quantize(np.array([1.0, 0, 0, 0])), FMT.quantize(np.array([1.0, 0, 0, 0])))
        assert pe.finish(_acc_code(FMT, 0.5), apply_relu=True) == FMT.quantize(1.5)

    def test_finish_resets_accumulator(self):
        pe = ProcessingElement(2, FMT)
        pe.accumulate(np.array([10, 0]), np.array([10, 0]))
        pe.finish(0, apply_relu=False)
        pe.accumulate(np.array([0, 0]), np.array([0, 0]))
        assert pe.finish(0, apply_relu=False) == 0

    def test_saturation_on_finish(self):
        pe = ProcessingElement(2, FMT)
        big = np.array([FMT.max_int, FMT.max_int])
        for _ in range(10):
            pe.accumulate(big, big)
        assert pe.finish(0, apply_relu=False) == FMT.max_int

    def test_shape_validation(self):
        pe = ProcessingElement(4, FMT)
        with pytest.raises(ConfigurationError):
            pe.accumulate(np.zeros(3), np.zeros(4))

    def test_mac_counter(self):
        pe = ProcessingElement(4, FMT)
        pe.accumulate(np.zeros(4), np.zeros(4))
        pe.accumulate(np.zeros(4), np.zeros(4))
        assert pe.mac_operations == 2

    def test_pipeline_depth_constant(self):
        assert PE_PIPELINE_STAGES == 3  # §5.5: multiply / accumulate / ReLU


class TestPeSet:
    def test_shared_features_across_pes(self):
        rng = np.random.default_rng(2)
        weights = FMT.quantize(rng.uniform(-1, 1, (4, 8)))
        features = FMT.quantize(rng.uniform(-1, 1, 8))
        pe_set = PeSet(4, 8, FMT)
        pe_set.accumulate(weights, features)
        out = pe_set.finish(np.zeros(4, dtype=np.int64), apply_relu=False)
        for i in range(4):
            pe = ProcessingElement(8, FMT)
            pe.accumulate(weights[i], features)
            assert out[i] == pe.finish(0, apply_relu=False)

    def test_shape_validation(self):
        pe_set = PeSet(4, 8, FMT)
        with pytest.raises(ConfigurationError):
            pe_set.accumulate(np.zeros((3, 8)), np.zeros(8))
        with pytest.raises(ConfigurationError):
            pe_set.finish(np.zeros(3), apply_relu=False)

    def test_len(self):
        assert len(PeSet(8, 8, FMT)) == 8
