"""Tests for the PE / PE-set models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat, requantize
from repro.hw.pe import (
    PE_PIPELINE_STAGES,
    PeSet,
    ProcessingElement,
    stacked_accumulate,
    stacked_finish,
)

# Single shared format keeps the reference arithmetic simple; the
# mixed-format path is exercised by tests/test_hw_accelerator.py.
FMT = QFormat(integer_bits=2, frac_bits=5)


def _acc_code(fmt: QFormat, value: float) -> int:
    """A bias value expressed at the PE's accumulator precision."""
    return int(round(value * (1 << (2 * fmt.frac_bits))))


class TestProcessingElement:
    def test_single_mac_matches_fixed_dot(self):
        rng = np.random.default_rng(0)
        w = FMT.quantize(rng.uniform(-1, 1, 8))
        x = FMT.quantize(rng.uniform(-1, 1, 8))
        pe = ProcessingElement(8, FMT)
        pe.accumulate(w, x)
        got = pe.finish(0, apply_relu=False)
        wide = int(w.astype(np.int64) @ x.astype(np.int64))
        want = int(requantize(np.array([wide]), 2 * FMT.frac_bits, FMT)[0])
        assert got == want

    def test_multi_iteration_accumulation(self):
        # A 24-input neuron on an 8-input PE: three iterations must equal
        # one wide dot product.
        rng = np.random.default_rng(1)
        w = FMT.quantize(rng.uniform(-1, 1, 24))
        x = FMT.quantize(rng.uniform(-1, 1, 24))
        pe = ProcessingElement(8, FMT)
        for i in range(3):
            pe.accumulate(w[i * 8 : (i + 1) * 8], x[i * 8 : (i + 1) * 8])
        got = pe.finish(0, apply_relu=False)
        wide = int(w.astype(np.int64) @ x.astype(np.int64))
        want = int(requantize(np.array([wide]), 2 * FMT.frac_bits, FMT)[0])
        assert got == want

    def test_bias_and_relu(self):
        pe = ProcessingElement(4, FMT)
        pe.accumulate(FMT.quantize(np.array([-1.0, 0, 0, 0])), FMT.quantize(np.array([1.0, 0, 0, 0])))
        # Accumulated -1.0; bias +0.5 -> -0.5 -> ReLU clamps to 0.
        assert pe.finish(_acc_code(FMT, 0.5), apply_relu=True) == 0
        pe.accumulate(FMT.quantize(np.array([1.0, 0, 0, 0])), FMT.quantize(np.array([1.0, 0, 0, 0])))
        assert pe.finish(_acc_code(FMT, 0.5), apply_relu=True) == FMT.quantize(1.5)

    def test_finish_resets_accumulator(self):
        pe = ProcessingElement(2, FMT)
        pe.accumulate(np.array([10, 0]), np.array([10, 0]))
        pe.finish(0, apply_relu=False)
        pe.accumulate(np.array([0, 0]), np.array([0, 0]))
        assert pe.finish(0, apply_relu=False) == 0

    def test_saturation_on_finish(self):
        pe = ProcessingElement(2, FMT)
        big = np.array([FMT.max_int, FMT.max_int])
        for _ in range(10):
            pe.accumulate(big, big)
        assert pe.finish(0, apply_relu=False) == FMT.max_int

    def test_shape_validation(self):
        pe = ProcessingElement(4, FMT)
        with pytest.raises(ConfigurationError):
            pe.accumulate(np.zeros(3), np.zeros(4))

    def test_mac_counter(self):
        pe = ProcessingElement(4, FMT)
        pe.accumulate(np.zeros(4), np.zeros(4))
        pe.accumulate(np.zeros(4), np.zeros(4))
        assert pe.mac_operations == 2

    def test_pipeline_depth_constant(self):
        assert PE_PIPELINE_STAGES == 3  # §5.5: multiply / accumulate / ReLU


class TestPeSet:
    def test_shared_features_across_pes(self):
        rng = np.random.default_rng(2)
        weights = FMT.quantize(rng.uniform(-1, 1, (4, 8)))
        features = FMT.quantize(rng.uniform(-1, 1, 8))
        pe_set = PeSet(4, 8, FMT)
        pe_set.accumulate(weights, features)
        out = pe_set.finish(np.zeros(4, dtype=np.int64), apply_relu=False)
        for i in range(4):
            pe = ProcessingElement(8, FMT)
            pe.accumulate(weights[i], features)
            assert out[i] == pe.finish(0, apply_relu=False)

    def test_shape_validation(self):
        pe_set = PeSet(4, 8, FMT)
        with pytest.raises(ConfigurationError):
            pe_set.accumulate(np.zeros((3, 8)), np.zeros(8))
        with pytest.raises(ConfigurationError):
            pe_set.finish(np.zeros(3), apply_relu=False)

    def test_len(self):
        assert len(PeSet(8, 8, FMT)) == 8


class TestStackedKernels:
    """The lockstep array kernels must match per-PE loops bit for bit."""

    def _reference_accumulate(self, features, weights):
        """Per-PE reference: iteration-chunked accumulation, Python-int acc."""
        passes, k, out = weights.shape
        shared = features.ndim == 2
        batch = features.shape[-2]
        acc = np.empty((passes, batch, out), dtype=np.int64)
        for p in range(passes):
            for b in range(batch):
                row = features[b] if shared else features[p, b]
                for o in range(out):
                    pe = ProcessingElement(k, FMT)
                    pe.accumulate(weights[p, :, o], row)
                    acc[p, b, o] = pe._accumulator
        return acc

    def test_matches_per_pe_accumulation_shared_features(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(-16, 16, size=(3, 8, 5))
        features = rng.integers(-16, 16, size=(4, 8))
        got = stacked_accumulate(features, weights, bit_length=8)
        assert (got == self._reference_accumulate(features, weights)).all()

    def test_matches_per_pe_accumulation_per_pass_features(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(-16, 16, size=(3, 6, 4))
        features = rng.integers(-16, 16, size=(3, 5, 6))
        got = stacked_accumulate(features, weights, bit_length=8)
        assert (got == self._reference_accumulate(features, weights)).all()

    def test_wide_bitlength_object_fallback_is_exact(self):
        # K * 2**(2B - 2) >= 2**53 forces the Python-int contraction; the
        # result must still match the unbounded-accumulator reference.
        rng = np.random.default_rng(2)
        big = 1 << 30
        weights = rng.integers(-big, big, size=(2, 4, 3))
        features = rng.integers(-big, big, size=(2, 2, 4))
        got = stacked_accumulate(features, weights, bit_length=32)
        want = np.array(
            [
                [
                    [
                        sum(
                            int(w) * int(f)
                            for w, f in zip(weights[p, :, o], features[p, b])
                        )
                        for o in range(3)
                    ]
                    for b in range(2)
                ]
                for p in range(2)
            ]
        )
        assert (np.asarray(got, dtype=np.int64) == want).all()

    def test_stacked_finish_matches_pe_finish(self):
        rng = np.random.default_rng(3)
        pe = ProcessingElement(4, FMT)
        acc = rng.integers(-4000, 4000, size=(2, 3, 5))
        bias = rng.integers(-500, 500, size=(2, 5))
        for apply_relu in (False, True):
            got = stacked_finish(
                acc, bias[:, None, :], 2 * FMT.frac_bits, FMT, apply_relu=apply_relu
            )
            for p in range(2):
                for b in range(3):
                    for o in range(5):
                        pe._accumulator = int(acc[p, b, o])
                        want = pe.finish(int(bias[p, o]), apply_relu=apply_relu)
                        assert got[p, b, o] == want

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stacked_accumulate(np.zeros((2, 4)), np.zeros((3, 4)), bit_length=8)
        with pytest.raises(ConfigurationError):
            stacked_accumulate(np.zeros((2, 5)), np.zeros((3, 4, 2)), bit_length=8)
        with pytest.raises(ConfigurationError):
            # per-pass features with a mismatched pass count
            stacked_accumulate(np.zeros((2, 6, 4)), np.zeros((3, 4, 2)), bit_length=8)
