"""Tests for the weight generator (GRNG + weight updater)."""

import numpy as np
import pytest

from repro.bnn.quantized import RLF_CODE_OFFSET, RLF_SIGMA_SHIFT, weight_format
from repro.errors import ConfigurationError
from repro.fixedpoint import requantize
from repro.grng import NumpyGrng, ParallelRlfGrng
from repro.hw.weight_generator import (
    WEIGHT_GENERATOR_PIPELINE_STAGES,
    WeightGenerator,
)

W_FMT = weight_format(8)


class TestWeightGenerator:
    def test_bit_length_validation(self):
        with pytest.raises(ConfigurationError):
            WeightGenerator(NumpyGrng(0), bit_length=2)

    def test_zero_sigma_returns_mu(self):
        gen = WeightGenerator(ParallelRlfGrng(lanes=16, seed=0), bit_length=8)
        mu = np.arange(-8, 8, dtype=np.int64)
        out = gen.sample(mu, np.zeros_like(mu))
        assert (out == mu).all()

    def test_rlf_shift_standardisation(self):
        # With sigma = 0.5 the weight deltas are sigma_code * (pc - 128),
        # requantized from frac_w + 3 bits; check a manual computation.
        grng = ParallelRlfGrng(lanes=16, seed=1)
        codes = grng.generate_codes(16)  # consume, then replay with a clone
        gen = WeightGenerator(ParallelRlfGrng(lanes=16, seed=1), bit_length=8)
        mu = np.zeros(16, dtype=np.int64)
        sigma = np.full(16, W_FMT.quantize(0.5), dtype=np.int64)
        out = gen.sample(mu, sigma)
        eps = codes - RLF_CODE_OFFSET
        expected = requantize(sigma * eps, W_FMT.frac_bits + RLF_SIGMA_SHIFT, W_FMT)
        assert (out == expected).all()

    def test_float_grng_quantized_path(self):
        gen = WeightGenerator(NumpyGrng(seed=2), bit_length=8)
        mu = np.zeros(2000, dtype=np.int64)
        sigma = np.full(2000, W_FMT.quantize(0.25), dtype=np.int64)
        out = gen.sample(mu, sigma)
        values = W_FMT.dequantize(out)
        # w = 0 + 0.25 * eps: sample std should be near 0.25.
        assert abs(values.std() - 0.25) < 0.04

    def test_output_within_weight_format(self):
        gen = WeightGenerator(ParallelRlfGrng(lanes=64, seed=3), bit_length=8)
        mu = np.full(640, W_FMT.max_int, dtype=np.int64)
        sigma = np.full(640, W_FMT.max_int, dtype=np.int64)
        out = gen.sample(mu, sigma)
        assert out.max() <= W_FMT.max_int and out.min() >= W_FMT.min_int

    def test_shape_mismatch_rejected(self):
        gen = WeightGenerator(NumpyGrng(0), bit_length=8)
        with pytest.raises(ConfigurationError):
            gen.sample(np.zeros(4, dtype=np.int64), np.zeros(5, dtype=np.int64))

    def test_sample_counter(self):
        gen = WeightGenerator(NumpyGrng(0), bit_length=8)
        gen.sample(np.zeros((4, 4), dtype=np.int64), np.zeros((4, 4), dtype=np.int64))
        assert gen.samples_generated == 16

    def test_pipeline_constant(self):
        assert WEIGHT_GENERATOR_PIPELINE_STAGES == 2  # §5.5 DFFs

    def test_matches_quantized_network_updater_for_weights(self):
        # The accelerator equivalence depends on this: same GRNG stream,
        # same mu/sigma -> same sampled weight codes as the functional model.
        from repro.bnn.quantized import QuantizedBayesianNetwork

        rng = np.random.default_rng(4)
        mu = rng.uniform(-0.8, 0.8, (6, 5))
        sigma = rng.uniform(0.01, 0.3, (6, 5))
        posterior = [
            {
                "mu_weights": mu,
                "sigma_weights": sigma,
                "mu_bias": np.zeros(5),
                "sigma_bias": np.zeros(5),
            }
        ]
        net = QuantizedBayesianNetwork(
            posterior, bit_length=8, grng=ParallelRlfGrng(lanes=8, seed=5)
        )
        w_net, _ = net._sample_layer_weights(net.layers[0])
        gen = WeightGenerator(ParallelRlfGrng(lanes=8, seed=5), bit_length=8)
        mu_codes = W_FMT.quantize(mu).reshape(-1)
        sigma_codes = W_FMT.quantize(sigma).reshape(-1)
        # The functional model draws weight epsilons then bias epsilons; the
        # first mu.size epsilons line up with a fresh generator's stream.
        out = gen.sample(mu_codes, sigma_codes)
        assert (out.reshape(mu.shape) == w_net).all()
