"""Tests for Bayesian regression with predictive uncertainty."""

import numpy as np
import pytest

from repro.bnn import Adam
from repro.bnn.regression import BayesianRegressor
from repro.errors import ConfigurationError


def _sine_data(n=120, seed=0, noise=0.05, lo=-1.0, hi=1.0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(lo, hi, (n, 1))
    y = np.sin(3.0 * x) + rng.normal(0, noise, (n, 1))
    return x, y


class TestBayesianRegressor:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BayesianRegressor((1,))
        with pytest.raises(ConfigurationError):
            BayesianRegressor((1, 8, 1), noise_sigma=0)

    def test_fits_sine(self):
        x, y = _sine_data()
        model = BayesianRegressor((1, 24, 24, 1), noise_sigma=0.1, seed=0, initial_sigma=0.02)
        history = model.fit(x, y, Adam(5e-3), epochs=150, batch_size=32, seed=0)
        assert history[-1] < history[0]
        mean, _ = model.predict(x, n_samples=30)
        rmse = float(np.sqrt(((mean - y) ** 2).mean()))
        assert rmse < 0.25

    def test_uncertainty_grows_off_data(self):
        # The BNN hallmark: predictive std is larger outside the training
        # support than inside it.
        x, y = _sine_data(lo=-1.0, hi=1.0)
        model = BayesianRegressor((1, 24, 24, 1), noise_sigma=0.1, seed=1, initial_sigma=0.05)
        model.fit(x, y, Adam(5e-3), epochs=150, batch_size=32, seed=1)
        inside = np.linspace(-0.8, 0.8, 20)[:, None]
        outside = np.concatenate(
            [np.linspace(-3.0, -2.0, 10), np.linspace(2.0, 3.0, 10)]
        )[:, None]
        _, std_in = model.predict(inside, n_samples=50)
        _, std_out = model.predict(outside, n_samples=50)
        assert std_out.mean() > std_in.mean()

    def test_predictive_std_at_least_noise(self):
        x, y = _sine_data()
        model = BayesianRegressor((1, 8, 1), noise_sigma=0.2, seed=2)
        _, std = model.predict(x, n_samples=10)
        assert (std >= 0.2 - 1e-9).all()

    def test_shape_mismatch_rejected(self):
        model = BayesianRegressor((2, 4, 1), seed=3)
        with pytest.raises(ConfigurationError):
            model.train_step(np.zeros((4, 2)), np.zeros((4, 2)), Adam(), 0.0)

    def test_kl_scale_validation(self):
        model = BayesianRegressor((1, 4, 1), seed=4)
        with pytest.raises(ConfigurationError):
            model.train_step(np.zeros((2, 1)), np.zeros((2, 1)), Adam(), -1.0)

    def test_epochs_validation(self):
        model = BayesianRegressor((1, 4, 1), seed=5)
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((2, 1)), np.zeros((2, 1)), Adam(), epochs=0)
