"""Tests for activation functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bnn.activations import (
    inverse_softplus,
    relu,
    relu_grad,
    sigmoid,
    softmax,
    softplus,
)


class TestRelu:
    def test_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert relu(x).tolist() == [0.0, 0.0, 3.0]

    def test_grad(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert relu_grad(x).tolist() == [0.0, 0.0, 1.0]

    @given(st.floats(-100, 100))
    def test_nonnegative(self, value):
        assert relu(np.array([value]))[0] >= 0


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.standard_normal((5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_invariant_to_shift(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_no_overflow_with_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_known_value(self):
        probs = softmax(np.array([[0.0, 0.0]]))
        assert np.allclose(probs, 0.5)


class TestSigmoid:
    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)

    def test_extremes_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.isfinite(out).all()

    def test_derivative_of_softplus(self):
        # d softplus / dx = sigmoid, checked numerically.
        x = np.linspace(-4, 4, 41)
        h = 1e-6
        numeric = (softplus(x + h) - softplus(x - h)) / (2 * h)
        assert np.allclose(numeric, sigmoid(x), atol=1e-5)


class TestSoftplus:
    def test_positive(self):
        assert (softplus(np.linspace(-50, 50, 101)) > 0).all()

    def test_matches_naive_formula_in_safe_range(self):
        x = np.linspace(-20, 20, 41)
        assert np.allclose(softplus(x), np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0))
        assert np.allclose(softplus(np.array([0.0])), np.log(2.0))

    def test_no_overflow(self):
        assert np.isfinite(softplus(np.array([10_000.0]))).all()

    @given(st.floats(min_value=1e-6, max_value=50.0))
    def test_inverse_roundtrip(self, sigma):
        rho = inverse_softplus(np.array([sigma]))
        assert softplus(rho)[0] == pytest.approx(sigma, rel=1e-6)
