"""Tests for the GRNG quality metrics (repro.grng.quality)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grng import NumpyGrng
from repro.grng.quality import (
    RunsTestResult,
    autocorrelation,
    chi_square_normal,
    ks_normal,
    pass_rate,
    runs_test,
    stability_error,
)


class TestStabilityError:
    def test_exact_standard_normal_stats(self):
        samples = np.array([-1.0, 1.0, -1.0, 1.0])
        result = stability_error(samples)
        assert result.mu_error == 0.0
        assert result.sigma_error == pytest.approx(abs(math.sqrt(4 / 3) - 1))

    def test_shifted_mean_detected(self):
        rng = np.random.default_rng(0)
        result = stability_error(rng.standard_normal(50_000) + 0.5)
        assert result.mu_error == pytest.approx(0.5, abs=0.02)

    def test_scaled_sigma_detected(self):
        rng = np.random.default_rng(1)
        result = stability_error(2.0 * rng.standard_normal(50_000))
        assert result.sigma_error == pytest.approx(1.0, abs=0.05)

    def test_custom_target(self):
        rng = np.random.default_rng(2)
        samples = 3.0 + 2.0 * rng.standard_normal(50_000)
        result = stability_error(samples, target_mu=3.0, target_sigma=2.0)
        assert result.mu_error < 0.05
        assert result.sigma_error < 0.05

    def test_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            stability_error(np.array([1.0]))


class TestRunsTest:
    def test_random_sequence_passes(self):
        rng = np.random.default_rng(3)
        assert runs_test(rng.standard_normal(10_000)).passed()

    def test_alternating_sequence_fails(self):
        # Perfectly alternating: far too many runs.
        samples = np.tile([1.0, -1.0], 5000)
        result = runs_test(samples)
        assert not result.passed()
        assert result.z_statistic > 0

    def test_monotone_sequence_fails(self):
        result = runs_test(np.linspace(0, 1, 1000))
        assert not result.passed()
        assert result.z_statistic < 0

    def test_constant_blocks_fail(self):
        samples = np.concatenate([np.full(500, -1.0), np.full(500, 1.0)])
        assert not runs_test(samples).passed()

    def test_median_values_dropped(self):
        # Matlab-compatible: exact-median samples are discarded.
        samples = np.concatenate([np.zeros(100), np.random.default_rng(4).standard_normal(1000)])
        result = runs_test(samples)
        assert result.n_above + result.n_below <= 1100

    def test_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            runs_test(np.arange(5, dtype=float))

    def test_false_positive_rate_near_alpha(self):
        # Calibration: ~5% of truly random sequences should fail at 0.05.
        rng = np.random.default_rng(5)
        fails = sum(
            not runs_test(rng.standard_normal(2000)).passed() for _ in range(200)
        )
        assert 0 <= fails <= 30  # 5% nominal; allow generous slack

    def test_result_dataclass_fields(self):
        result = runs_test(np.random.default_rng(6).standard_normal(100))
        assert isinstance(result, RunsTestResult)
        assert result.runs >= 1
        assert 0.0 <= result.p_value <= 1.0


class TestKsAndChiSquare:
    def test_ks_accepts_normal(self):
        rng = np.random.default_rng(7)
        _, p = ks_normal(rng.standard_normal(10_000))
        assert p > 0.001

    def test_ks_rejects_uniform(self):
        rng = np.random.default_rng(8)
        _, p = ks_normal(rng.random(10_000))
        assert p < 1e-6

    def test_chi_square_accepts_normal(self):
        rng = np.random.default_rng(9)
        _, p = chi_square_normal(rng.standard_normal(20_000))
        assert p > 0.001

    def test_chi_square_rejects_shifted(self):
        rng = np.random.default_rng(10)
        _, p = chi_square_normal(rng.standard_normal(20_000) + 1.0)
        assert p < 1e-6

    def test_chi_square_bins_validation(self):
        with pytest.raises(ConfigurationError):
            chi_square_normal(np.zeros(100), bins=2)


class TestAutocorrelation:
    def test_iid_near_zero(self):
        rng = np.random.default_rng(11)
        assert abs(autocorrelation(rng.standard_normal(50_000), 1)) < 0.02

    def test_walk_near_one(self):
        rng = np.random.default_rng(12)
        walk = np.cumsum(rng.standard_normal(10_000))
        assert autocorrelation(walk, 1) > 0.95

    def test_lag_validation(self):
        with pytest.raises(ConfigurationError):
            autocorrelation(np.zeros(10), 0)
        with pytest.raises(ConfigurationError):
            autocorrelation(np.zeros(10), 10)

    def test_constant_sequence_zero(self):
        assert autocorrelation(np.ones(100), 1) == 0.0


class TestPassRate:
    def test_good_generator_high_rate(self):
        rate = pass_rate(lambda s: NumpyGrng(s), trials=20, samples_per_trial=2000)
        assert rate >= 0.8

    def test_custom_test(self):
        rate = pass_rate(
            lambda s: NumpyGrng(s),
            trials=5,
            samples_per_trial=100,
            test=lambda samples: False,
        )
        assert rate == 0.0

    def test_trials_validation(self):
        with pytest.raises(ConfigurationError):
            pass_rate(lambda s: NumpyGrng(s), trials=0, samples_per_trial=10)
