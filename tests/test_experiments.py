"""Tests for the experiment registry and its fast members.

The training-heavy experiments (figs. 16-18, tables 6-7) are exercised by
the benchmark harness; here we test the registry plumbing, the rendering,
and the model-only experiments end to end at tiny sizes.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, get_experiment, render_table
from repro.experiments import fig15, table1, table2, table3, table4, table5
from repro.experiments.common import scaled


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "ablation-rlf",
            "ablation-wallace",
            "ablation-mc",
            "taxonomy",
        }
        assert set(EXPERIMENTS) == expected

    def test_every_module_has_run_and_render(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.render)

    def test_get_experiment(self):
        assert get_experiment("table1") is table1
        with pytest.raises(ConfigurationError):
            get_experiment("table99")


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table("Title", ["a", "bb"], [[1, 2.5], ["x", 0.001]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_note_appended(self):
        text = render_table("T", ["a"], [[1]], note="hello")
        assert text.rstrip().endswith("hello")

    def test_float_formatting(self):
        text = render_table("T", ["a"], [[1234567.0]])
        assert "1,234,567" in text


class TestScaled:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert scaled(10, 100) == 10

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert scaled(10, 100) == 100


class TestModelExperiments:
    """The no-training experiments run quickly enough to test directly."""

    def test_table1_tiny(self):
        result = table1.run(samples=2000, trials=1)
        assert set(result["rows"]) == set(table1.PAPER_ROWS)
        text = table1.render(result)
        assert "RLF-GRNG" in text

    def test_fig15_tiny(self):
        result = fig15.run(trials=3, samples=2000)
        assert set(result["rates"]) == set(fig15.GENERATORS)
        assert all(0.0 <= r <= 1.0 for r in result["rates"].values())
        fig15.render(result)

    def test_table2(self):
        result = table2.run()
        assert result["reports"]["rlf"].alms == 831
        assert "Table 2" in table2.render(result)

    def test_table3_all_claims_hold(self):
        result = table3.run()
        assert all(result["claims"].values())
        table3.render(result)

    def test_table4(self):
        result = table4.run()
        assert result["reports"]["rlf"].fits_device()
        assert "Table 4" in table4.render(result)

    def test_table5_quick(self):
        result = table5.run(measure_seconds=0.1)
        rows = result["rows"]
        rlf = next(v for k, v in rows.items() if k.startswith("RLF"))
        cpu = next(v for k, v in rows.items() if k.startswith("Intel"))
        assert rlf[0] > cpu[0]  # FPGA model beats measured CPU throughput
        assert "Table 5" in table5.render(result)
