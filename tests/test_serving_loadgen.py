"""Tests for the load generators' accounting (window/drain split)."""

import numpy as np

from repro.bnn.bayesian import BayesianNetwork
from repro.serving.loadgen import LoadStats, run_closed_loop, run_open_loop
from repro.serving.service import BnnService, ServiceConfig


def _service(**overrides):
    config = ServiceConfig(
        workers=0, cache_capacity=0, max_batch=8, max_wait_ms=0.0, **overrides
    )
    service = BnnService(config=config)
    network = BayesianNetwork((6, 5, 3), seed=0, initial_sigma=0.05)
    service.register_network("m", network, n_samples=2, grng="numpy", seed=0)
    return service


X = np.random.default_rng(0).random((4, 6))


class TestOpenLoopAccounting:
    def test_window_and_drain_measured_separately(self):
        with _service() as service:
            stats = run_open_loop(
                service, "m", X, rate_rps=400.0, duration_s=0.2, seed=1
            )
        assert stats.window_s > 0
        assert stats.drain_s >= 0
        assert stats.duration_s >= stats.window_s
        # duration is exactly window + drain (measured once each).
        assert stats.duration_s == stats.window_s + stats.drain_s

    def test_throughput_divides_by_arrival_window(self):
        with _service() as service:
            stats = run_open_loop(
                service, "m", X, rate_rps=400.0, duration_s=0.2, seed=2
            )
        assert stats.completed > 0
        assert stats.throughput_rps == stats.completed / stats.window_s
        # The seed bug: dividing by the full duration (window + drain)
        # understates the rate whenever any drain happened.
        if stats.drain_s > 0:
            assert stats.throughput_rps > stats.completed / stats.duration_s

    def test_render_reports_both_intervals(self):
        with _service() as service:
            stats = run_open_loop(
                service, "m", X, rate_rps=200.0, duration_s=0.1, seed=3
            )
        text = stats.render()
        assert "arrival window" in text
        assert "drain" in text


class TestClosedLoopAccounting:
    def test_closed_loop_keeps_wall_clock_basis(self):
        with _service() as service:
            stats = run_closed_loop(service, "m", X, total_requests=20, window=8)
        assert stats.window_s == 0.0
        assert stats.drain_s == 0.0
        assert stats.throughput_rps == stats.completed / stats.duration_s
        assert "arrival window" not in stats.render()

    def test_zero_duration_safe(self):
        stats = LoadStats(pattern="x", offered=0, completed=0)
        assert stats.throughput_rps == 0.0


class TestSampleExportSatellite:
    def test_submit_ts_aligned_with_latencies(self):
        with _service() as service:
            stats = run_closed_loop(service, "m", X, total_requests=20, window=8)
        assert len(stats.submit_ts) == len(stats.latencies_s) == stats.completed
        # perf_counter stamps: monotone non-negative, and all inside the run.
        assert all(ts > 0 for ts in stats.submit_ts)

    def test_mean_max_and_summary(self):
        stats = LoadStats(
            pattern="closed", offered=3, completed=3,
            latencies_s=[0.010, 0.020, 0.060], submit_ts=[1.0, 2.0, 3.0],
        )
        assert stats.latency_mean() == (0.010 + 0.020 + 0.060) / 3
        assert stats.latency_max() == 0.060
        summary = stats.summary()
        assert summary["mean"] == stats.latency_mean()
        assert summary["max"] == 0.060
        assert "p99" in summary
        assert "mean=" in stats.render() and "max=" in stats.render()

    def test_export_samples_jsonl(self, tmp_path):
        import json

        with _service() as service:
            stats = run_closed_loop(service, "m", X, total_requests=12, window=4)
        path = tmp_path / "nested" / "samples.jsonl"
        written = stats.export_samples(path)
        assert written == path
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == stats.completed
        assert all(set(r) == {"submit_ts", "latency_s"} for r in rows)
        assert [r["latency_s"] for r in rows] == stats.latencies_s


# ----------------------------------------------------------------------
# Frozen arrival traces (generate_trace / trace_replay)
# ----------------------------------------------------------------------
class TestTraceGeneration:
    def test_same_seed_same_knobs_is_the_identical_schedule(self):
        import pytest

        from repro.serving.loadgen import generate_trace

        first = generate_trace(5, rate_rps=40.0, duration_s=2.0, image_count=4)
        second = generate_trace(5, rate_rps=40.0, duration_s=2.0, image_count=4)
        assert first == second  # frozen dataclass: full tuple equality
        assert len(first) > 0
        assert generate_trace(6, rate_rps=40.0, duration_s=2.0) != first

    def test_arrivals_are_sorted_inside_the_duration(self):
        from repro.serving.loadgen import generate_trace

        plan = generate_trace(1, rate_rps=30.0, duration_s=3.0, image_count=5)
        offsets = [offset for offset, _, _ in plan.arrivals]
        assert offsets == sorted(offsets)
        assert all(0.0 < offset <= 3.0 for offset in offsets)
        assert all(0 <= index < 5 for _, index, _ in plan.arrivals)

    def test_burst_pattern_concentrates_arrivals_in_the_windows(self):
        from repro.serving.loadgen import generate_trace

        plan = generate_trace(
            2,
            rate_rps=50.0,
            duration_s=4.0,
            pattern="burst",
            burst_multiplier=8.0,
            burst_period_s=1.0,
            burst_width_s=0.25,
        )
        in_window = sum(1 for t, _, _ in plan.arrivals if (t % 1.0) < 0.25)
        # Windows cover 25% of time but 8x rate: expect the majority inside.
        assert in_window > len(plan) / 2

    def test_diurnal_pattern_troughs_at_the_edges(self):
        from repro.serving.loadgen import generate_trace

        plan = generate_trace(
            3,
            rate_rps=60.0,
            duration_s=4.0,
            pattern="diurnal",
            diurnal_floor=0.1,
        )
        edges = sum(1 for t, _, _ in plan.arrivals if t < 1.0 or t > 3.0)
        middle = len(plan) - edges
        assert middle > edges  # sinusoid peaks mid-run

    def test_validation_is_typed(self):
        import pytest

        from repro.errors import ConfigurationError
        from repro.serving.loadgen import generate_trace

        with pytest.raises(ConfigurationError, match="pattern"):
            generate_trace(0, rate_rps=10.0, duration_s=1.0, pattern="square")
        with pytest.raises(ConfigurationError, match="burst_multiplier"):
            generate_trace(0, rate_rps=10.0, duration_s=1.0, burst_multiplier=0.5)
        with pytest.raises(ConfigurationError, match="burst_width_s"):
            generate_trace(0, rate_rps=10.0, duration_s=1.0, burst_width_s=2.0)
        with pytest.raises(ConfigurationError, match="diurnal_floor"):
            generate_trace(
                0, rate_rps=10.0, duration_s=1.0, pattern="diurnal", diurnal_floor=0.0
            )
        with pytest.raises(ConfigurationError, match="slo_weights"):
            generate_trace(0, rate_rps=10.0, duration_s=1.0, slo_weights={})


class TestTraceReplay:
    def test_replay_offers_the_whole_plan_and_accounts_for_it(self):
        from repro.serving.loadgen import generate_trace, trace_replay

        plan = generate_trace(4, rate_rps=60.0, duration_s=1.0, image_count=4)
        with _service() as service:
            stats = trace_replay(service, "m", X, plan, pace=False)
        assert stats.offered == len(plan)
        assert stats.completed + stats.dropped + stats.shed == stats.offered
        assert stats.pattern == "trace-replay[burst seed=4]"

    def test_unpaced_replays_are_bit_identical_across_services(self):
        import numpy as np

        from repro.serving.loadgen import generate_trace, trace_replay

        plan = generate_trace(8, rate_rps=40.0, duration_s=1.0, image_count=4)

        def run():
            config = ServiceConfig(
                workers=0, cache_capacity=0, max_batch=8, max_wait_ms=0.0
            )
            service = BnnService(config=config)
            network = BayesianNetwork((6, 5, 3), seed=0, initial_sigma=0.05)
            service.register_network(
                "m", network, n_samples=2, grng="numpy", seed=0,
                share_weight_stacks=True,
            )
            with service:
                stats = trace_replay(service, "m", X, plan, pace=False)
            return stats

        first, second = run(), run()
        assert first.completed == second.completed == len(plan)
        assert first.latencies_s is not None

    def test_replay_validates_images(self):
        import numpy as np
        import pytest

        from repro.errors import ConfigurationError
        from repro.serving.loadgen import generate_trace, trace_replay

        plan = generate_trace(0, rate_rps=10.0, duration_s=0.5)
        with _service() as service:
            with pytest.raises(ConfigurationError, match="images"):
                trace_replay(service, "m", np.zeros((0, 6)), plan)
