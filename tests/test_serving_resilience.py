"""Resilience layer tests: deadlines, admission, degradation, supervision.

Covers the policy surface of :mod:`repro.serving.resilience` end to end:
config validation, the admission controller under a fake clock, deadline
eviction (including the coalesced-follower exactly-once guarantee), the
overload ladder through the ``chunk_probs`` seam, stale serving, worker
supervision under scripted fault plans, and the restart-determinism
contract (two runs against the same seed and fault plan are bit-identical
after a supervised restart).
"""

import time

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.inference import MonteCarloPredictor
from repro.bnn.serialization import save_posterior
from repro.errors import (
    AdmissionShed,
    ConfigurationError,
    DeadlineExceeded,
    InjectedWorkerKill,
    ServingError,
    WorkerCrashed,
)
from repro.grng import GrngStream, make_grng
from repro.serving import (
    BnnService,
    FaultEvent,
    FaultPlan,
    LoadStats,
    PredictionTicket,
    ResilienceConfig,
    ServiceConfig,
    chunk_seam,
    run_closed_loop,
    worker_stream_seed,
)
from repro.serving.loadgen import _collect
from repro.serving.resilience import AdmissionController

IN, OUT = 12, 4


@pytest.fixture()
def network():
    return BayesianNetwork((IN, 8, OUT), seed=0, initial_sigma=0.04)


@pytest.fixture()
def images():
    return np.random.default_rng(7).random((16, IN))


def resilient_service(network, resilience=None, fault_plan=None, **overrides):
    config = dict(
        workers=0,
        max_batch=8,
        cache_capacity=0,
        queue_capacity=64,
        resilience=resilience if resilience is not None else ResilienceConfig(),
    )
    config.update(overrides)
    service = BnnService(config=ServiceConfig(**config), fault_plan=fault_plan)
    service.register_network("m", network, n_samples=5, grng="bnnwallace", seed=3)
    return service


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestConfigValidation:
    def test_defaults_are_valid(self):
        ResilienceConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(interactive_deadline_s=0.0),
            dict(batch_deadline_s=-1.0),
            dict(ewma_alpha=0.0),
            dict(ewma_alpha=1.5),
            dict(best_effort_shed_s=0.0),
            dict(best_effort_depth_frac=0.0),
            dict(batch_depth_frac=1.5),
            dict(trickle_rps=-1.0),
            dict(min_passes=0),
            dict(max_restarts=-1),
            dict(degrade_half_s=0.5, degrade_floor_s=0.1),
        ],
    )
    def test_invalid_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(**kwargs)

    def test_class_deadline_lookup(self):
        config = ResilienceConfig(interactive_deadline_s=0.1, batch_deadline_s=0.5)
        assert config.class_deadline_s("interactive") == 0.1
        assert config.class_deadline_s("batch") == 0.5
        assert config.class_deadline_s("best_effort") is None
        with pytest.raises(ConfigurationError, match="unknown SLO"):
            config.class_deadline_s("nope")

    def test_fault_event_validation(self):
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            FaultEvent(0, 1, "explode")
        with pytest.raises(ConfigurationError, match="at_batch"):
            FaultEvent(0, 0, "kill")
        with pytest.raises(ConfigurationError, match="seconds"):
            FaultEvent(0, 1, "stall")
        FaultEvent(0, 1, "stall", seconds=0.5)  # valid

    def test_burst_validation(self):
        with pytest.raises(ConfigurationError, match="burst"):
            FaultPlan(bursts=[(1.0, 0.5, 2.0)])
        with pytest.raises(ConfigurationError, match="burst"):
            FaultPlan(bursts=[(0.0, 1.0, 0.0)])

    def test_fault_plan_requires_resilience(self, network):
        plan = FaultPlan(events=[FaultEvent(0, 1, "kill")])
        with pytest.raises(ConfigurationError, match="resilience"):
            BnnService(config=ServiceConfig(workers=0), fault_plan=plan)

    def test_slo_and_deadline_require_resilience(self, network, images):
        service = BnnService(config=ServiceConfig(workers=0, cache_capacity=0))
        service.register_network("m", network, n_samples=5, seed=3)
        with service:
            with pytest.raises(ConfigurationError, match="resilience"):
                service.submit("m", images[0], slo="batch")
            with pytest.raises(ConfigurationError, match="resilience"):
                service.submit("m", images[0], deadline_s=1.0)

    def test_unknown_slo_and_bad_deadline_rejected(self, network, images):
        with resilient_service(network) as service:
            with pytest.raises(ConfigurationError, match="unknown SLO"):
                service.submit("m", images[0], slo="platinum")
            with pytest.raises(ConfigurationError, match="deadline_s"):
                service.submit("m", images[0], deadline_s=-1.0)


class TestTicketDelivery:
    def test_first_delivery_wins(self):
        ticket = PredictionTicket("m")
        assert ticket.set_result(np.zeros(OUT))
        assert not ticket.set_exception(ServingError("late"))
        assert not ticket.set_result(np.ones(OUT))
        assert (ticket.result(0.1) == 0).all()

    def test_error_delivery_blocks_later_results(self):
        ticket = PredictionTicket("m")
        assert ticket.set_exception(DeadlineExceeded("expired"))
        assert not ticket.set_result(np.zeros(OUT))
        with pytest.raises(DeadlineExceeded):
            ticket.result(0.1)


class TestAdmissionController:
    def controller(self, clock, **kwargs):
        defaults = dict(trickle_rps=0.0, trickle_burst=0.0)
        defaults.update(kwargs)
        return AdmissionController(
            ResilienceConfig(**defaults), capacity=100, clock=clock
        )

    def test_pressure_is_an_ewma(self):
        ctrl = self.controller(FakeClock(), ewma_alpha=0.5)
        assert ctrl.pressure() == 0.0
        ctrl.observe_queue_wait(1.0)
        assert ctrl.pressure() == pytest.approx(0.5)
        ctrl.observe_queue_wait(1.0)
        assert ctrl.pressure() == pytest.approx(0.75)
        ctrl.observe_queue_wait(-5.0)  # clamped to 0, decays toward it
        assert ctrl.pressure() == pytest.approx(0.375)

    def test_shed_order_best_effort_then_batch_never_interactive(self):
        ctrl = self.controller(
            FakeClock(), best_effort_shed_s=0.05, batch_shed_s=0.25
        )
        for _ in range(20):
            ctrl.observe_queue_wait(0.1)  # above best_effort, below batch
        with pytest.raises(AdmissionShed):
            ctrl.admit("best_effort", queue_depth=0)
        ctrl.admit("batch", queue_depth=0)
        ctrl.admit("interactive", queue_depth=0)
        for _ in range(20):
            ctrl.observe_queue_wait(1.0)  # above every threshold
        with pytest.raises(AdmissionShed):
            ctrl.admit("batch", queue_depth=0)
        ctrl.admit("interactive", queue_depth=0)  # never pressure-shed

    def test_depth_fallback_sheds_without_pressure(self):
        ctrl = self.controller(
            FakeClock(), best_effort_depth_frac=0.5, batch_depth_frac=0.85
        )
        assert ctrl.pressure() == 0.0
        with pytest.raises(AdmissionShed):
            ctrl.admit("best_effort", queue_depth=50)
        ctrl.admit("batch", queue_depth=50)
        with pytest.raises(AdmissionShed):
            ctrl.admit("batch", queue_depth=85)

    def test_trickle_bucket_lets_a_metered_residue_through(self):
        clock = FakeClock()
        ctrl = self.controller(clock, trickle_rps=1.0, trickle_burst=1.0)
        for _ in range(20):
            ctrl.observe_queue_wait(1.0)
        ctrl.admit("best_effort", queue_depth=0)  # burst token
        with pytest.raises(AdmissionShed):
            ctrl.admit("best_effort", queue_depth=0)  # bucket drained
        clock.now += 1.0  # one second refills one token
        ctrl.admit("best_effort", queue_depth=0)
        with pytest.raises(AdmissionShed):
            ctrl.admit("best_effort", queue_depth=0)

    def test_degrade_ladder_and_effective_passes(self):
        ctrl = self.controller(
            FakeClock(), degrade_half_s=0.08, degrade_floor_s=0.35, min_passes=4
        )
        assert ctrl.degrade_level() == 0
        assert ctrl.effective_passes(32) == 32
        for _ in range(30):
            ctrl.observe_queue_wait(0.2)
        assert ctrl.degrade_level() == 1
        assert ctrl.effective_passes(32) == 16
        for _ in range(30):
            ctrl.observe_queue_wait(1.0)
        assert ctrl.degrade_level() == 2
        assert ctrl.effective_passes(32) == 4
        assert ctrl.effective_passes(3) == 3  # floor never exceeds N

    def test_force_level_pins_and_releases(self):
        ctrl = self.controller(FakeClock())
        ctrl.force_level(2)
        assert ctrl.degrade_level() == 2
        ctrl.force_level(None)
        assert ctrl.degrade_level() == 0
        with pytest.raises(ConfigurationError):
            ctrl.force_level(3)


class TestFaultPlan:
    def test_fire_counts_batches_per_slot(self):
        plan = FaultPlan(events=[FaultEvent(0, 2, "kill")])
        assert plan.fire(0, 0) is None
        assert plan.fire(1, 0) is None  # slot 1 has its own counter
        event = plan.fire(0, 0)
        assert event is not None and event.action == "kill"
        assert plan.fire(0, 0) is None
        plan.reset()
        assert plan.fire(0, 0) is None
        assert plan.fire(0, 0).action == "kill"

    def test_incarnation_pin(self):
        # at_batch counts across incarnations; the pin filters who fires.
        plan = FaultPlan(events=[FaultEvent(0, 2, "kill", incarnation=1)])
        assert plan.fire(0, 0) is None  # batch 1: wrong count
        assert plan.fire(0, 1).action == "kill"  # batch 2, incarnation 1
        plan.reset()
        assert plan.fire(0, 0) is None
        assert plan.fire(0, 0) is None  # batch 2 but wrong incarnation

    def test_rate_multiplier_windows(self):
        plan = FaultPlan(bursts=[(1.0, 2.0, 4.0)])
        assert plan.rate_multiplier(0.5) == 1.0
        assert plan.rate_multiplier(1.5) == 4.0
        assert plan.rate_multiplier(2.0) == 1.0

    def test_random_plan_is_seeded(self):
        one = FaultPlan.random_plan(7, workers=2)
        two = FaultPlan.random_plan(7, workers=2)
        other = FaultPlan.random_plan(8, workers=2)
        assert one.events == two.events
        assert one.events != other.events


class TestDeadlineEviction:
    def test_expired_request_fails_typed_without_inference(self, network, images):
        with resilient_service(network) as service:
            tickets = [
                service.submit("m", images[i], deadline_s=0.005) for i in range(3)
            ]
            time.sleep(0.02)
            service.flush()
            for ticket in tickets:
                with pytest.raises(DeadlineExceeded):
                    ticket.result(1.0)
            stats = service.stats()
            assert stats["batches"] == 0  # whole batch expired: no MC call
            assert stats["deadline_evictions"] == 3
            assert stats["requests_failed"] == 3

    def test_live_rows_still_serve_next_to_expired_ones(self, network, images):
        with resilient_service(network) as service:
            doomed = service.submit("m", images[0], deadline_s=0.005)
            time.sleep(0.02)
            alive = service.submit("m", images[1])
            service.flush()
            with pytest.raises(DeadlineExceeded):
                doomed.result(1.0)
            assert alive.result(1.0).shape == (OUT,)
            stats = service.stats()
            assert stats["deadline_evictions"] == 1
            assert stats["requests_served"] == 1

    def test_class_default_deadline_applies(self, network, images):
        config = ResilienceConfig(best_effort_deadline_s=0.005)
        with resilient_service(network, resilience=config) as service:
            ticket = service.submit("m", images[0], slo="best_effort")
            assert ticket.deadline is not None
            time.sleep(0.02)
            service.flush()
            with pytest.raises(DeadlineExceeded):
                ticket.result(1.0)
            assert service.stats()["shed_by_class"] == {}  # evicted, not shed

    def test_coalesced_follower_fails_exactly_once(self, network, images):
        """Satellite regression: followers share the primary's eviction.

        Two identical in-flight requests coalesce onto one ticket; when
        the deadline evicts it, both callers must observe the same typed
        DeadlineExceeded and the failure/eviction must be counted exactly
        once (the shared ticket resolves once — not once per caller, and
        never a second resolution by a late worker).
        """
        with resilient_service(network, cache_capacity=32) as service:
            primary = service.submit("m", images[0], deadline_s=0.005)
            follower = service.submit("m", images[0])
            assert follower is primary
            time.sleep(0.02)
            service.flush()
            for caller in (primary, follower):
                with pytest.raises(DeadlineExceeded):
                    caller.result(1.0)
            stats = service.stats()
            assert stats["deadline_evictions"] == 1
            assert stats["requests_failed"] == 1


class TestDegradation:
    def test_forced_floor_serves_matched_prefix(self, network, images):
        """Level 2 serves min_passes through the chunk seam — the same
        first passes a full run would execute (matched-ensemble prefix)."""
        config = ResilienceConfig(min_passes=2)
        with resilient_service(network, resilience=config) as service:
            service.admission.force_level(2)
            tickets = [service.submit("m", row) for row in images[:8]]
            service.flush()
            served = np.stack([t.result(1.0) for t in tickets])
            assert all(t.degraded == 2 for t in tickets)
            assert service.stats()["degraded_rows"] == 8
        direct = MonteCarloPredictor(
            network,
            grng=GrngStream(
                make_grng("bnnwallace", seed=worker_stream_seed(3, 1, 0))
            ),
            n_samples=5,
            batched=True,
        )
        expected = np.asarray(direct.chunk_probs(images[:8], 0, 2)).mean(axis=0)
        assert (served == expected).all()

    def test_level_zero_is_bit_identical_to_resilience_off(self, network, images):
        with resilient_service(network) as service:
            with_layer = service.predict_many("m", images[:8])
            assert service.stats()["degraded_rows"] == 0
        plain = BnnService(
            config=ServiceConfig(workers=0, max_batch=8, cache_capacity=0)
        )
        plain.register_network("m", network, n_samples=5, grng="bnnwallace", seed=3)
        with plain:
            without = plain.predict_many("m", images[:8])
        assert (with_layer == without).all()

    def test_chunk_seam_resolution(self, network):
        predictor = MonteCarloPredictor(
            network, grng=GrngStream(make_grng("bnnwallace", seed=1)), n_samples=4
        )
        assert chunk_seam(predictor) is not None

        class Bare:
            pass

        class Wrapped:
            def __init__(self, base):
                self.base = base

        assert chunk_seam(Bare()) is None
        assert chunk_seam(Wrapped(predictor)) is not None


class TestStaleServing:
    def test_reload_keeps_old_rows_and_floor_serves_them(
        self, network, images, tmp_path
    ):
        path = tmp_path / "model.npz"
        save_posterior(path, network.posterior_parameters())
        config = ServiceConfig(
            workers=0, max_batch=8, cache_capacity=32,
            resilience=ResilienceConfig(),
        )
        with BnnService(config=config) as service:
            service.register_file("m", path, n_samples=5, grng="bnnwallace", seed=3)
            before = service.predict_proba("m", images[0])
            retrained = BayesianNetwork((IN, 8, OUT), seed=9).posterior_parameters()
            save_posterior(path, retrained)
            service.reload("m")
            assert service.stats()["cache_entries"] == 1  # old row kept
            service.admission.force_level(2)
            ticket = service.submit("m", images[0])
            assert ticket.done() and ticket.stale
            assert (ticket.result(1.0) == before).all()
            assert service.stats()["stale_serves"] == 1
            # A row never cached still computes (degraded), not stale.
            fresh = service.submit("m", images[1])
            service.flush()
            assert fresh.result(1.0).shape == (OUT,)
            assert not fresh.stale

    def test_serve_stale_disabled_drops_old_rows_on_reload(
        self, network, images, tmp_path
    ):
        path = tmp_path / "model.npz"
        save_posterior(path, network.posterior_parameters())
        config = ServiceConfig(
            workers=0, max_batch=8, cache_capacity=32,
            resilience=ResilienceConfig(serve_stale=False),
        )
        with BnnService(config=config) as service:
            service.register_file("m", path, n_samples=5, grng="bnnwallace", seed=3)
            service.predict_proba("m", images[0])
            save_posterior(
                path, BayesianNetwork((IN, 8, OUT), seed=9).posterior_parameters()
            )
            service.reload("m")
            assert service.stats()["cache_entries"] == 0


class TestSupervision:
    def chaos_config(self, **overrides):
        config = dict(heartbeat_interval_s=0.02, batch_timeout_s=0.2)
        config.update(overrides)
        return ResilienceConfig(**config)

    def test_injected_kill_punches_through_the_fault_barrier(self):
        # The chaos kill must NOT be swallowed by the worker's per-batch
        # except Exception barrier, or no restart would ever happen.
        assert issubclass(InjectedWorkerKill, BaseException)
        assert not issubclass(InjectedWorkerKill, Exception)

    def test_killed_worker_fails_batch_typed_and_restarts(self, network, images):
        plan = FaultPlan(events=[FaultEvent(0, 1, "kill")])
        with resilient_service(
            network,
            resilience=self.chaos_config(),
            fault_plan=plan,
            workers=1,
            max_batch=4,
            max_wait_ms=50.0,
        ) as service:
            tickets = [service.submit("m", images[i]) for i in range(4)]
            for ticket in tickets:
                with pytest.raises(WorkerCrashed, match="failed over"):
                    ticket.result(5.0)
            assert service.stats()["worker_restarts"] == 1
            assert service._pool.restarts == 1
            # The replacement incarnation keeps serving.
            probs = service.predict_many("m", images[:4])
            assert probs.shape == (4, OUT)
            assert np.allclose(probs.sum(axis=1), 1.0)

    def test_stalled_worker_fails_over_within_batch_timeout(self, network, images):
        plan = FaultPlan(events=[FaultEvent(0, 1, "stall", seconds=1.0)])
        with resilient_service(
            network,
            resilience=self.chaos_config(),
            fault_plan=plan,
            workers=1,
            max_batch=4,
            max_wait_ms=50.0,
        ) as service:
            tickets = [service.submit("m", images[i]) for i in range(4)]
            start = time.perf_counter()
            for ticket in tickets:
                with pytest.raises(WorkerCrashed, match="stalled"):
                    ticket.result(5.0)
            # Failed over by the supervisor, not by waiting out the stall.
            assert time.perf_counter() - start < 0.9
            assert service.stats()["worker_restarts"] == 1

    def test_max_restarts_caps_supervised_restarts(self, network, images):
        plan = FaultPlan(
            events=[FaultEvent(0, 1, "kill"), FaultEvent(0, 2, "kill")]
        )
        with resilient_service(
            network,
            resilience=self.chaos_config(max_restarts=1),
            fault_plan=plan,
            workers=1,
            max_batch=4,
            max_wait_ms=50.0,
        ) as service:
            for _ in range(2):
                tickets = [service.submit("m", images[i]) for i in range(4)]
                for ticket in tickets:
                    with pytest.raises(WorkerCrashed):
                        ticket.result(5.0)
            assert service.stats()["worker_restarts"] == 1

    def test_restart_determinism_under_a_fault_plan(self, network, images):
        """Satellite: same seed + same plan => bit-identical runs.

        The killed batch fails in both runs; every other batch — including
        the post-restart ones served by the bumped incarnation — must be
        bit-for-bit identical, because the replacement's stream is derived
        from (seed, version, slot, incarnation), not from wall clock.
        """

        def run_once():
            plan = FaultPlan(events=[FaultEvent(0, 2, "kill")])
            outputs, failures = [], []
            with resilient_service(
                network,
                resilience=self.chaos_config(),
                fault_plan=plan,
                workers=1,
                max_batch=4,
                max_wait_ms=200.0,
            ) as service:
                for chunk in range(3):
                    rows = images[chunk * 4:(chunk + 1) * 4]
                    tickets = [service.submit("m", row) for row in rows]
                    try:
                        outputs.append(
                            np.stack([t.result(5.0) for t in tickets])
                        )
                    except WorkerCrashed:
                        failures.append(chunk)
                        for ticket in tickets:
                            assert ticket.done()  # no hangs, ever
            return outputs, failures

        first_outputs, first_failures = run_once()
        second_outputs, second_failures = run_once()
        assert first_failures == second_failures == [1]
        assert len(first_outputs) == len(second_outputs) == 2
        for left, right in zip(first_outputs, second_outputs):
            assert (left == right).all()
        # The post-restart batch really is decorrelated from what the dead
        # incarnation would have served at that stream position.
        assert worker_stream_seed(3, 1, 0, incarnation=1) != worker_stream_seed(
            3, 1, 0
        )

    def test_stop_sweeps_unfinished_batches(self, network, images):
        """A pool stopped while a worker still holds a batch must resolve
        its tickets (the no-hang invariant extends through shutdown).

        The batch timeout is set far out so the supervisor never fires;
        stopping the pool with a join timeout shorter than the stall is
        what forces the shutdown sweep to do the failing-over.
        """
        plan = FaultPlan(events=[FaultEvent(0, 1, "stall", seconds=1.5)])
        service = resilient_service(
            network,
            resilience=self.chaos_config(max_restarts=0, batch_timeout_s=60.0),
            fault_plan=plan,
            workers=1,
            max_batch=4,
            max_wait_ms=50.0,
        )
        tickets = [service.submit("m", images[i]) for i in range(4)]
        time.sleep(0.2)  # let the worker pop the batch and begin the stall
        service._pool.stop(timeout=0.1)  # join expires mid-stall
        for ticket in tickets:
            assert ticket.done()
            with pytest.raises(WorkerCrashed, match="unfinished batch"):
                ticket.result(0.1)
        service.close()


class TestLoadgenBuckets:
    def test_collect_separates_shed_failed_and_hung(self):
        stats = LoadStats(pattern="x", offered=5, completed=0)
        served = PredictionTicket("m")
        served.set_result(np.zeros(OUT))
        evicted = PredictionTicket("m")
        evicted.set_exception(DeadlineExceeded("expired"))
        refused = PredictionTicket("m")
        refused.set_exception(AdmissionShed("shed"))
        broken = PredictionTicket("m")
        broken.set_exception(ServingError("boom"))
        wedged = PredictionTicket("m")
        _collect(stats, [served, evicted, refused, broken, wedged], timeout=0.01)
        assert stats.completed == 1
        assert stats.shed == 2  # deadline eviction + admission shed
        assert stats.failed == 1
        assert stats.hung == 1
        # Latency summary excludes shed/failed/hung rows, reports the rate.
        assert len(stats.latencies_s) == 1
        summary = stats.summary()
        assert summary["shed_rate"] == pytest.approx(2 / 5)

    def test_summary_omits_shed_rate_when_clean(self):
        stats = LoadStats(pattern="x", offered=1, completed=0)
        ticket = PredictionTicket("m")
        ticket.set_result(np.zeros(OUT))
        _collect(stats, [ticket], timeout=0.01)
        assert "shed_rate" not in stats.summary()

    def test_closed_loop_counts_admission_sheds_as_final(self, network, images):
        config = ResilienceConfig(trickle_rps=0.0, trickle_burst=0.0)
        with resilient_service(network, resilience=config) as service:
            for _ in range(30):
                service.admission.observe_queue_wait(1.0)
            stats = run_closed_loop(
                service, "m", images, total_requests=6, slo="best_effort"
            )
        assert stats.shed == 6
        assert stats.completed == 0
        assert stats.retried == 0  # shed is final, never a retry storm
        assert stats.shed_rate == 1.0
        assert service.metrics.shed == 6

    def test_per_slo_latency_buckets(self, network, images):
        with resilient_service(network) as service:
            interactive = service.submit("m", images[0])
            batchy = service.submit("m", images[1], slo="batch")
            service.flush()
            stats = LoadStats(pattern="x", offered=2, completed=0)
            _collect(stats, [interactive, batchy], timeout=1.0)
        assert set(stats.latencies_by_slo) == {"interactive", "batch"}
        assert stats.slo_percentiles("batch")["p50"] > 0.0
        assert stats.slo_percentiles("best_effort")["p99"] == 0.0
