"""Tests for the calibrated resource/power/clock models (Tables 2, 4, 5)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import schedule_network
from repro.hw.resources import (
    full_design_resources,
    grng_resources,
    grng_system_memory_bits,
    network_parameter_bits,
    system_clock_mhz,
    system_power_mw,
)


class TestTable2Calibration:
    """The model must reproduce Table 2 at 64 lanes."""

    def test_rlf_row(self):
        r = grng_resources("rlf", 64)
        assert r.alms == 831
        assert r.registers == 1780
        assert r.memory_bits == 16_384
        assert r.ram_blocks == 3
        assert r.power_mw == pytest.approx(528.69, rel=0.01)
        assert r.fmax_mhz == pytest.approx(212.95)

    def test_wallace_row(self):
        r = grng_resources("bnnwallace", 64)
        assert r.alms == 401
        assert r.registers == 1166
        assert r.memory_bits == 1_048_576
        assert r.ram_blocks == 103
        assert r.power_mw == pytest.approx(560.25, rel=0.01)
        assert r.fmax_mhz == pytest.approx(117.63)

    def test_relative_story(self):
        # Table 3's qualitative comparison must fall out of the numbers.
        rlf = grng_resources("rlf", 64)
        wal = grng_resources("bnnwallace", 64)
        assert rlf.memory_bits < wal.memory_bits      # RLF: low memory
        assert rlf.fmax_mhz > wal.fmax_mhz            # RLF: high frequency
        assert wal.alms < rlf.alms                    # Wallace: low ALM
        assert wal.registers < rlf.registers          # Wallace: low register

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            grng_resources("xorshift", 64)
        with pytest.raises(ConfigurationError):
            grng_resources("rlf", 2)

    def test_scaling_monotone(self):
        small = grng_resources("rlf", 64)
        large = grng_resources("rlf", 1024)
        assert large.alms > small.alms
        assert large.memory_bits > small.memory_bits


class TestTable4Calibration:
    """The model must reproduce Table 4 at the paper design point."""

    def test_rlf_network(self):
        report = full_design_resources(ArchitectureConfig.paper("rlf"))
        assert report.alms == pytest.approx(98_006, rel=0.001)
        assert report.registers == pytest.approx(88_720, rel=0.005)
        assert report.memory_bits == 4_572_928
        assert report.dsps == 342
        assert report.fits_device()

    def test_wallace_network(self):
        report = full_design_resources(ArchitectureConfig.paper("bnnwallace"))
        assert report.alms == pytest.approx(91_126, rel=0.001)
        assert report.registers == pytest.approx(78_800, rel=0.005)
        assert report.memory_bits == 4_880_128
        assert report.dsps == 342
        assert report.fits_device()

    def test_utilization_fractions(self):
        report = full_design_resources(ArchitectureConfig.paper("rlf"))
        assert report.alm_utilization == pytest.approx(0.863, abs=0.01)
        assert report.memory_utilization == pytest.approx(0.366, abs=0.01)
        assert report.dsp_utilization == 1.0

    def test_parameter_bits_formula(self):
        # (784*200 + 200*200 + 200*10 weights + 410 biases) * 2 params * 8b.
        bits = network_parameter_bits((784, 200, 200, 10), 8)
        assert bits == (156_800 + 40_000 + 2_000 + 410) * 16


class TestTable5Calibration:
    """Throughput and energy efficiency at the paper design point."""

    def test_rlf_energy_efficiency(self):
        cfg = ArchitectureConfig.paper("rlf")
        ips = schedule_network(cfg, (784, 200, 200, 10)).images_per_second()
        ipj = ips / (system_power_mw(cfg) / 1e3)
        assert ipj == pytest.approx(52_694.8, rel=0.01)

    def test_wallace_energy_efficiency(self):
        cfg = ArchitectureConfig.paper("bnnwallace")
        ips = schedule_network(cfg, (784, 200, 200, 10)).images_per_second()
        ipj = ips / (system_power_mw(cfg) / 1e3)
        assert ipj == pytest.approx(37_722.1, rel=0.01)

    def test_rlf_more_efficient_than_wallace(self):
        rlf = system_power_mw(ArchitectureConfig.paper("rlf"))
        wal = system_power_mw(ArchitectureConfig.paper("bnnwallace"))
        assert rlf < wal

    def test_system_clock_bounded_by_grng(self):
        cfg = ArchitectureConfig.paper("rlf")
        assert system_clock_mhz(cfg) <= 100.0
        slow = ArchitectureConfig(
            pe_sets=16, pes_per_set=8, pe_inputs=8, clock_mhz=50.0
        )
        assert system_clock_mhz(slow) == 50.0


class TestSystemMemoryModel:
    def test_rlf_power_of_two(self):
        bits = grng_system_memory_bits("rlf", 1024)
        assert bits == 262_144  # 2^18 >= 255 * 1024

    def test_wallace_pool_shrink_with_many_units(self):
        few = grng_system_memory_bits("bnnwallace", 64)      # 16 units
        many = grng_system_memory_bits("bnnwallace", 1024)   # 256 units
        # Per-lane memory must shrink (more sharing -> smaller pools).
        assert many / 1024 < few / 64

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            grng_system_memory_bits("nope", 64)
