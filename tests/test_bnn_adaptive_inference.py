"""Property tests for adaptive Monte-Carlo inference (`repro.bnn.adaptive`).

Three properties carry the subsystem's correctness story:

1. **Bit-exact fallback** — with the exit bound disabled the adaptive
   chunked path performs the identical float operations in the identical
   order as the fixed-``N`` batched path, so the results are *equal*, not
   merely close, for any chunk size and any call-pattern-invariant
   epsilon stream.
2. **Monotone pass counts** — the Hoeffding bound ``t(n) =
   sqrt(2 ln(2/delta)/n)`` is strictly decreasing in ``delta``, so for a
   fixed epsilon stream every row's exit pass count is monotone
   non-increasing as ``delta`` grows (stricter confidence can only delay
   exits).
3. **Antithetic cancellation** — the paired stream emits ``[z, -z]``
   units, so each consecutive pass pair's epsilons sum to exactly zero
   and the pair's sampled weights ``mu + sigma * eps`` average to ``mu``
   bit-exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn.adaptive import (
    AdaptiveConfig,
    AdaptivePredictor,
    AdaptiveQuantizedPredictor,
    concentration_bound,
    run_adaptive,
)
from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.inference import MonteCarloPredictor, stacked_epsilons
from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.errors import ConfigurationError
from repro.grng import AntitheticGrngStream, GrngStream, NumpyGrng, make_grng

IN, OUT = 6, 3


def make_network(seed=0):
    return BayesianNetwork((IN, 5, OUT), seed=seed, initial_sigma=0.05)


def images(rows, seed=1):
    return np.random.default_rng(seed).normal(size=(rows, IN))


def confident_network(seed=0):
    """A network whose posterior strongly prefers class 0 (rows exit early)."""
    network = make_network(seed)
    network.layers[-1].mu_bias[0] += 6.0
    return network


class TestExitDisabledBitExact:
    """Property 1: exit_delta=None reproduces predict_proba bit for bit."""

    @settings(max_examples=20, deadline=None)
    @given(
        chunk=st.integers(1, 17),
        n_samples=st.integers(1, 24),
        grng_name=st.sampled_from(["bnnwallace", "rlf", "numpy"]),
    )
    def test_equals_fixed_batched_path(self, chunk, n_samples, grng_name):
        x = images(4)
        fixed = MonteCarloPredictor(
            make_network(),
            grng=GrngStream(make_grng(grng_name, seed=9)),
            n_samples=n_samples,
        )
        reference = fixed.predict_proba(x)
        chunked = MonteCarloPredictor(
            make_network(),
            grng=GrngStream(make_grng(grng_name, seed=9)),
            n_samples=n_samples,
        )
        adaptive = AdaptivePredictor(
            chunked, AdaptiveConfig(chunk=chunk, exit_delta=None)
        )
        result = adaptive.predict_proba(x)
        assert result.shape == reference.shape
        assert (result == reference).all()

    def test_equals_fixed_path_with_layer_numpy_streams(self):
        """grng=None (per-layer NumPy streams) is also call-pattern invariant."""
        x = images(5)
        reference = MonteCarloPredictor(make_network(), n_samples=12).predict_proba(x)
        adaptive = AdaptivePredictor(
            MonteCarloPredictor(make_network(), n_samples=12),
            AdaptiveConfig(chunk=5, exit_delta=None),
        )
        assert (adaptive.predict_proba(x) == reference).all()

    @settings(max_examples=10, deadline=None)
    @given(chunk=st.integers(1, 9), n_samples=st.integers(1, 16))
    def test_quantized_path_bit_exact(self, chunk, n_samples):
        x = images(3)
        posterior = make_network().posterior_parameters()
        fixed = QuantizedBayesianNetwork(
            posterior, grng=GrngStream(make_grng("rlf", seed=4)), seed=4
        )
        reference = fixed.predict_proba(x, n_samples=n_samples)
        chunked = QuantizedBayesianNetwork(
            posterior, grng=GrngStream(make_grng("rlf", seed=4)), seed=4
        )
        adaptive = AdaptiveQuantizedPredictor(
            chunked, n_samples, AdaptiveConfig(chunk=chunk, exit_delta=None)
        )
        assert (adaptive.predict_proba(x) == reference).all()

    def test_exit_disabled_runs_every_pass(self):
        predictor = AdaptivePredictor(
            MonteCarloPredictor(confident_network(), n_samples=16),
            AdaptiveConfig(chunk=4, exit_delta=None),
        )
        outcome = predictor.predict_adaptive(images(4))
        assert (outcome.passes == 16).all()


class TestPassCountMonotonicity:
    """Property 2: pass counts are monotone non-increasing in exit_delta."""

    @settings(max_examples=15, deadline=None)
    @given(
        deltas=st.lists(
            st.floats(1e-4, 0.5, allow_nan=False), min_size=2, max_size=4
        ),
        seed=st.integers(0, 5),
    )
    def test_monotone_in_delta(self, deltas, seed):
        x = images(6, seed=seed)
        counts = []
        for delta in sorted(deltas):
            predictor = AdaptivePredictor(
                MonteCarloPredictor(
                    confident_network(),
                    grng=GrngStream(make_grng("bnnwallace", seed=2)),
                    n_samples=32,
                ),
                AdaptiveConfig(chunk=4, exit_delta=delta),
            )
            counts.append(predictor.predict_adaptive(x).passes)
        # Larger delta = laxer bound: exits can only come earlier.
        for stricter, laxer in zip(counts, counts[1:]):
            assert (laxer <= stricter).all()

    def test_bound_is_strictly_decreasing(self):
        for delta in (0.001, 0.05, 0.3):
            values = [concentration_bound(n, delta) for n in (1, 2, 8, 64)]
            assert all(a > b for a, b in zip(values, values[1:]))
        for n in (1, 8, 64):
            values = [concentration_bound(n, d) for d in (0.001, 0.05, 0.3)]
            assert all(a > b for a, b in zip(values, values[1:]))

    def test_confident_rows_exit_early(self):
        predictor = AdaptivePredictor(
            MonteCarloPredictor(
                confident_network(),
                grng=GrngStream(make_grng("bnnwallace", seed=2)),
                n_samples=64,
            ),
            AdaptiveConfig(chunk=8, exit_delta=0.05),
        )
        outcome = predictor.predict_adaptive(images(6))
        assert (outcome.passes < 64).all()
        assert outcome.mean_passes() < 64

    def test_min_passes_floor_is_respected(self):
        predictor = AdaptivePredictor(
            MonteCarloPredictor(
                confident_network(),
                grng=GrngStream(make_grng("bnnwallace", seed=2)),
                n_samples=64,
            ),
            AdaptiveConfig(chunk=8, exit_delta=0.3, min_passes=24),
        )
        outcome = predictor.predict_adaptive(images(4))
        assert (outcome.passes >= 24).all()


class TestAntitheticCancellation:
    """Property 3: antithetic pass pairs cancel exactly."""

    @settings(max_examples=15, deadline=None)
    @given(
        period=st.integers(1, 40),
        pairs=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    def test_pair_epsilons_sum_to_zero(self, period, pairs, seed):
        stream = AntitheticGrngStream(NumpyGrng(seed), period)
        block = stream.generate_block((2 * pairs, period))
        assert (block[0::2] + block[1::2] == 0.0).all()

    def test_pair_mean_epsilon_recovers_mu_exactly(self):
        """The pair-mean epsilon is exactly zero, so ``mu + sigma * mean(eps)
        == mu`` bit for bit (IEEE sign symmetry makes ``sigma * (-z)`` the
        exact negative of ``sigma * z``)."""
        network = make_network()
        stream = AntitheticGrngStream(
            NumpyGrng(3), sum(layer.weight_count() for layer in network.layers)
        )
        epsilons = stacked_epsilons(network.layers, 2, stream)
        for layer, (eps_w, eps_b) in zip(network.layers, epsilons):
            assert (eps_w[0] + eps_w[1] == 0.0).all()
            assert (eps_b[0] + eps_b[1] == 0.0).all()
            scaled = layer.sigma_weights() * eps_w
            assert (scaled[0] == -scaled[1]).all()
            mean_w = layer.mu_weights + layer.sigma_weights() * (
                (eps_w[0] + eps_w[1]) / 2.0
            )
            mean_b = layer.mu_bias + layer.sigma_bias() * ((eps_b[0] + eps_b[1]) / 2.0)
            assert (mean_w == layer.mu_weights).all()
            assert (mean_b == layer.mu_bias).all()

    def test_chunked_draws_match_one_block(self):
        """The antithetic stream is call-pattern invariant like GrngStream."""
        one = AntitheticGrngStream(NumpyGrng(5), 7).generate(70)
        stream = AntitheticGrngStream(NumpyGrng(5), 7)
        parts = np.concatenate([stream.generate(k) for k in (3, 11, 20, 36)])
        assert (one == parts).all()


class TestConfigValidation:
    def test_rejects_bad_chunk(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(chunk=0)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_out_of_range_delta(self, delta):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(exit_delta=delta)

    def test_rejects_negative_min_passes(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(min_passes=-1)

    def test_pop_pass_counts_clears(self):
        predictor = AdaptivePredictor(
            MonteCarloPredictor(make_network(), n_samples=4),
            AdaptiveConfig(chunk=2, exit_delta=0.05),
        )
        predictor.predict_proba_batched(images(2))
        counts = predictor.pop_pass_counts()
        assert counts is not None and counts.shape == (2,)
        assert predictor.pop_pass_counts() is None


class TestRunAdaptiveEdgeCases:
    def test_single_class_head_exits_at_first_boundary(self):
        """A 1-class output is decided by construction; rows exit ASAP."""

        def chunk_probs(x, start, size):
            return np.full((size, x.shape[0], 1), 1.0)

        outcome = run_adaptive(
            images(3), 12, chunk_probs, AdaptiveConfig(chunk=4, exit_delta=0.05)
        )
        assert (outcome.passes == 4).all()
        assert (outcome.probs == 1.0).all()

    def test_result_rows_freeze_at_exit(self):
        """An exited row's probabilities average only its own passes."""
        calls = []

        def chunk_probs(x, start, size):
            calls.append(size)
            probs = np.zeros((size, x.shape[0], 2))
            # Row 0 is instantly decided; row 1 stays ambivalent forever.
            probs[:, 0, 0] = 1.0
            probs[:, 1, :] = 0.5
            return probs

        outcome = run_adaptive(
            images(2), 32, chunk_probs, AdaptiveConfig(chunk=8, exit_delta=0.2)
        )
        assert outcome.passes[0] == 8
        assert outcome.passes[1] == 32
        assert (outcome.probs[0] == [1.0, 0.0]).all()
        assert (outcome.probs[1] == [0.5, 0.5]).all()
