"""Tests for the shared sampled weight-stack cache (`repro.serving.weight_stack`).

The cache's contract: concurrent same-model requests cost **one** stream
draw (single-flight builds), entries are keyed ``(model, version, N,
position)`` so reloads and re-registrations can never serve stale
ensembles, and ``advance``/``invalidate_model`` provide the freshness and
eviction knobs the service exposes.
"""

import threading

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianNetwork
from repro.errors import ConfigurationError
from repro.serving import (
    BnnService,
    ServiceConfig,
    WeightStackCache,
)
from repro.serving.registry import ModelRegistry

IN, OUT = 10, 3


class CountingEntry:
    """ModelEntry stand-in that counts (and records) stack builds."""

    def __init__(self, name="m", version=1, n_samples=4, build_delay=None):
        self.name = name
        self.version = version
        self.n_samples = n_samples
        self.builds = []
        self.build_delay = build_delay  # optional threading.Event to wait on
        self.lock = threading.Lock()

    def build_weight_stack(self, position):
        if self.build_delay is not None:
            self.build_delay.wait(1.0)
        with self.lock:
            self.builds.append(position)
        return {"entry": self.name, "version": self.version, "position": position}


class TestSingleFlight:
    def test_one_draw_under_concurrent_requests(self):
        """A thundering herd of identical requests builds the stack once."""
        gate = threading.Event()
        entry = CountingEntry(build_delay=gate)
        cache = WeightStackCache(capacity=4)
        results = []

        def fetch():
            results.append(cache.get_or_create(entry))

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(5.0)
        assert len(entry.builds) == 1
        assert cache.draws == 1
        assert len(results) == 8
        assert all(r is results[0] for r in results)

    def test_second_call_hits(self):
        entry = CountingEntry()
        cache = WeightStackCache()
        first = cache.get_or_create(entry)
        second = cache.get_or_create(entry)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1 and entry.builds == [0]

    def test_failed_build_releases_waiters(self):
        """A builder that raises must not deadlock or poison the key."""

        class FailingOnce(CountingEntry):
            def __init__(self):
                super().__init__()
                self.fail_next = True

            def build_weight_stack(self, position):
                if self.fail_next:
                    self.fail_next = False
                    raise RuntimeError("injected build fault")
                return super().build_weight_stack(position)

        entry = FailingOnce()
        cache = WeightStackCache()
        with pytest.raises(RuntimeError):
            cache.get_or_create(entry)
        # The key is released: the next caller becomes the builder.
        assert cache.get_or_create(entry)["position"] == 0
        assert cache.draws == 1


class TestKeying:
    def test_no_cross_model_version_or_n_leakage(self):
        """Distinct (model, version, N) triples never share an entry."""
        cache = WeightStackCache(capacity=16)
        entries = [
            CountingEntry("a", version=1, n_samples=4),
            CountingEntry("a", version=2, n_samples=4),
            CountingEntry("a", version=2, n_samples=8),
            CountingEntry("b", version=1, n_samples=4),
        ]
        stacks = [cache.get_or_create(entry) for entry in entries]
        assert len({id(stack) for stack in stacks}) == 4
        assert cache.draws == 4
        # Re-reading each returns its own cached object.
        for entry, stack in zip(entries, stacks):
            assert cache.get_or_create(entry) is stack

    def test_advance_bumps_position_and_drops_stacks(self):
        cache = WeightStackCache()
        entry = CountingEntry()
        cache.get_or_create(entry)
        assert cache.position("m", 1, 4) == 0
        assert cache.advance("m") == 1
        assert cache.position("m", 1, 4) == 1
        assert len(cache) == 0
        assert cache.get_or_create(entry)["position"] == 1
        assert entry.builds == [0, 1]

    def test_advance_leaves_other_models_alone(self):
        cache = WeightStackCache()
        a, b = CountingEntry("a"), CountingEntry("b")
        cache.get_or_create(a)
        cache.get_or_create(b)
        cache.advance("a")
        assert cache.position("a", 1, 4) == 1
        assert cache.position("b", 1, 4) == 0
        assert cache.get_or_create(b) is cache.get_or_create(b)
        assert b.builds == [0]

    def test_invalidate_model_drops_stacks_and_positions(self):
        cache = WeightStackCache()
        a, b = CountingEntry("a"), CountingEntry("b")
        cache.get_or_create(a)
        cache.get_or_create(b)
        cache.advance("a")
        cache.get_or_create(a)
        assert cache.invalidate_model("a") == 1
        assert cache.position("a", 1, 4) == 0  # positions reset too
        assert [key[0] for key in cache.keys()] == ["b"]

    def test_lru_eviction_at_capacity(self):
        cache = WeightStackCache(capacity=2)
        entries = [CountingEntry(name) for name in ("a", "b", "c")]
        for entry in entries:
            cache.get_or_create(entry)
        assert len(cache) == 2
        names = [key[0] for key in cache.keys()]
        assert names == ["b", "c"]  # "a" was least recently used
        cache.get_or_create(entries[0])
        assert entries[0].builds == [0, 0]  # evicted, so rebuilt

    def test_zero_capacity_is_a_configuration_error(self):
        cache = WeightStackCache(capacity=0)
        with pytest.raises(ConfigurationError):
            cache.get_or_create(CountingEntry())

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightStackCache(capacity=-1)


@pytest.fixture()
def network():
    return BayesianNetwork((IN, 6, OUT), seed=0, initial_sigma=0.04)


@pytest.fixture()
def images():
    return np.random.default_rng(11).random((12, IN))


def shared_service(network, **overrides) -> BnnService:
    config = dict(workers=0, max_batch=8, cache_capacity=0, queue_capacity=64)
    config.update(overrides)
    service = BnnService(config=ServiceConfig(**config))
    service.register_network(
        "m", network, n_samples=6, grng="bnnwallace", seed=3, share_weight_stacks=True
    )
    return service


class TestServiceIntegration:
    def test_batches_share_one_draw_and_are_deterministic(self, network, images):
        with shared_service(network) as service:
            first = service.predict_many("m", images)
            second = service.predict_many("m", images)
            assert service.stack_cache.draws == 1
            assert service.stack_cache.hits >= 1
        assert (first == second).all()

    def test_stack_matches_entry_build(self, network, images):
        """The served ensemble is exactly build_weight_stack(position=0)."""
        from repro.bnn.activations import softmax
        from repro.bnn.inference import stacked_forward_stacks

        with shared_service(network) as service:
            served = service.predict_many("m", images)
            entry = service.registry.get("m")
        stacks = entry.build_weight_stack(0)
        logits = stacked_forward_stacks(stacks, images)
        probs = softmax(logits)
        total = np.zeros(probs.shape[1:])
        for index in range(probs.shape[0]):
            total += probs[index]
        assert (served == total / probs.shape[0]).all()

    def test_reload_invalidates_shared_stacks(self, network, images, tmp_path):
        from repro.bnn.serialization import save_posterior

        path = tmp_path / "model.npz"
        save_posterior(path, network.posterior_parameters())
        service = BnnService(
            config=ServiceConfig(workers=0, max_batch=8, cache_capacity=0)
        )
        with service:
            service.register_file(
                "m", path, n_samples=6, grng="bnnwallace", seed=3,
                share_weight_stacks=True,
            )
            before = service.predict_many("m", images)
            assert len(service.stack_cache) == 1
            service.reload("m")
            assert len(service.stack_cache) == 0
            after = service.predict_many("m", images)
        # Version is in the stack seed: the reloaded ensemble differs.
        assert not (before == after).all()
        assert service.stack_cache.draws == 2

    def test_evict_drops_shared_stacks(self, network, images):
        with shared_service(network) as service:
            service.predict_many("m", images)
            assert len(service.stack_cache) == 1
            service.evict("m")
            assert len(service.stack_cache) == 0

    def test_refresh_weight_stacks_draws_a_new_ensemble(self, network, images):
        with shared_service(network) as service:
            before = service.predict_many("m", images)
            assert service.refresh_weight_stacks("m") == 1
            after = service.predict_many("m", images)
            assert service.stack_cache.draws == 2
        assert not (before == after).all()

    def test_threaded_workers_share_one_draw(self, network, images):
        with shared_service(network, workers=2, max_wait_ms=1.0) as service:
            tickets = [service.submit("m", row) for row in images]
            rows = np.stack([ticket.result(10.0) for ticket in tickets])
            assert service.stack_cache.draws == 1
        # Worker-independent stacks: same rows as the synchronous mode.
        with shared_service(network) as sync:
            expected = sync.predict_many("m", images)
        assert (rows == expected).all()

    def test_share_without_cache_capacity_fails_batches(self, network, images):
        service = BnnService(
            config=ServiceConfig(
                workers=0, max_batch=8, cache_capacity=0, stack_cache_capacity=0
            )
        )
        with service:
            service.register_network(
                "m", network, n_samples=6, seed=3, share_weight_stacks=True
            )
            ticket = service.submit("m", images[0])
            service.flush()
            with pytest.raises(ConfigurationError):
                ticket.result(1.0)

    def test_quantized_shared_stacks_deterministic(self, network, images):
        posterior = network.posterior_parameters()
        def make():
            service = BnnService(
                config=ServiceConfig(workers=0, max_batch=8, cache_capacity=0)
            )
            service.register_quantized(
                "q", posterior, n_samples=6, grng="rlf", seed=5,
                share_weight_stacks=True,
            )
            return service
        with make() as service:
            first = service.predict_many("q", images)
            assert service.stack_cache.draws == 1
        with make() as service:
            second = service.predict_many("q", images)
        assert (first == second).all()


class TestRegistryBuildWeightStack:
    def test_stack_is_a_pure_function_of_the_key(self, network):
        registry = ModelRegistry()
        entry = registry.register_network(
            "m", network, n_samples=5, seed=9, share_weight_stacks=True
        )
        one = entry.build_weight_stack(0)
        two = entry.build_weight_stack(0)
        for (w1, b1), (w2, b2) in zip(one, two):
            assert (w1 == w2).all() and (b1 == b2).all()
        other = entry.build_weight_stack(1)
        assert not all(
            (w1 == w2).all() for (w1, _), (w2, _) in zip(one, other)
        )

    def test_build_predictor_requires_stack_cache(self, network):
        registry = ModelRegistry()
        entry = registry.register_network(
            "m", network, n_samples=5, share_weight_stacks=True
        )
        with pytest.raises(ConfigurationError):
            entry.build_predictor(0)
        predictor = entry.build_predictor(0, stack_cache=WeightStackCache())
        assert predictor.n_samples == 5
