"""Tests for deterministic layers (dense, dropout) with gradient checks."""

import numpy as np
import pytest

from repro.bnn.layers import DenseLayer, DropoutLayer
from repro.bnn.losses import cross_entropy_loss
from repro.errors import ConfigurationError


class TestDenseLayer:
    def test_forward_affine(self):
        layer = DenseLayer(3, 2, seed=0)
        layer.weights = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        layer.bias = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        assert np.allclose(out, [[4.5, 4.5]])

    def test_backward_gradients_numerical(self):
        rng = np.random.default_rng(0)
        layer = DenseLayer(4, 3, seed=1)
        x = rng.standard_normal((5, 4))
        labels = np.array([0, 1, 2, 0, 1])

        def loss_fn():
            logits = layer.forward(x)
            loss, _ = cross_entropy_loss(logits, labels)
            return loss

        logits = layer.forward(x)
        _, grad_out = cross_entropy_loss(logits, labels)
        layer.backward(grad_out)
        eps = 1e-6
        for index in [(0, 0), (2, 1), (3, 2)]:
            layer.weights[index] += eps
            up = loss_fn()
            layer.weights[index] -= 2 * eps
            down = loss_fn()
            layer.weights[index] += eps
            assert layer.grad_weights[index] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-5
            )

    def test_backward_input_gradient_numerical(self):
        rng = np.random.default_rng(2)
        layer = DenseLayer(3, 2, seed=3)
        x = rng.standard_normal((2, 3))
        labels = np.array([0, 1])
        logits = layer.forward(x)
        _, grad_out = cross_entropy_loss(logits, labels)
        grad_x = layer.backward(grad_out)
        eps = 1e-6
        x_bumped = x.copy()
        x_bumped[1, 2] += eps
        up, _ = cross_entropy_loss(layer.forward(x_bumped), labels)
        x_bumped[1, 2] -= 2 * eps
        down, _ = cross_entropy_loss(layer.forward(x_bumped), labels)
        assert grad_x[1, 2] == pytest.approx((up - down) / (2 * eps), abs=1e-5)

    def test_backward_before_forward(self):
        with pytest.raises(ConfigurationError):
            DenseLayer(2, 2).backward(np.zeros((1, 2)))

    def test_input_shape_validation(self):
        with pytest.raises(ConfigurationError):
            DenseLayer(3, 2).forward(np.zeros((1, 4)))

    def test_he_initialisation_scale(self):
        layer = DenseLayer(1000, 50, seed=4)
        assert layer.weights.std() == pytest.approx(np.sqrt(2 / 1000), rel=0.1)


class TestDropoutLayer:
    def test_identity_at_inference(self):
        layer = DropoutLayer(0.5, seed=0)
        x = np.ones((4, 4))
        assert (layer.forward(x, training=False) == x).all()

    def test_inverted_scaling_preserves_mean(self):
        layer = DropoutLayer(0.5, seed=1)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_mask_applied_in_backward(self):
        layer = DropoutLayer(0.5, seed=2)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones((10, 10)))
        assert ((out == 0) == (grad == 0)).all()

    def test_zero_rate_is_identity(self):
        layer = DropoutLayer(0.0)
        x = np.random.default_rng(3).standard_normal((3, 3))
        assert (layer.forward(x, training=True) == x).all()

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            DropoutLayer(1.0)
        with pytest.raises(ConfigurationError):
            DropoutLayer(-0.1)
