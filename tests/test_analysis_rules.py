"""Fixture-corpus tests for every reprolint rule.

Each test builds a tiny synthetic project tree (``src/repro/...`` +
``tests/...``) in a temp directory and runs the engine API over it — the
same path ``python -m repro.cli lint`` takes — so both the positive case
(the bad snippet is caught) and the negative case (the idiomatic snippet
is clean) are pinned for each rule, plus the engine features: inline
suppressions, baseline filtering, stale-baseline reporting, and the
``_locked``-helper exemption for RL005.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import Baseline, lint_project
from repro.analysis.engine import load_project
from repro.cli import main as cli_main
from repro.errors import AnalysisError


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` into a throwaway project root."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def findings_of(report, rule):
    return [finding for finding in report.new if finding.rule == rule]


# ----------------------------------------------------------------------
# RL001 — seed discipline
# ----------------------------------------------------------------------
class TestSeedDiscipline:
    def test_raw_default_rng_is_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/foo.py": """\
                import numpy as np

                def sample():
                    return np.random.default_rng(0).random(4)
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL001"]), "RL001")
        assert len(found) == 1
        assert found[0].path == "src/repro/bnn/foo.py"
        assert found[0].line == 4
        assert found[0].token == "numpy.random.default_rng"
        assert found[0].scope == "sample"

    @pytest.mark.parametrize(
        "call",
        [
            "np.random.seed(1)",
            "np.random.normal(0.0, 1.0)",
            "np.random.RandomState(3)",
            "random.random()",
            "random.randint(0, 7)",
            "time.time()",
            "time.time_ns()",
        ],
    )
    def test_banned_entropy_sources(self, tmp_path, call):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/foo.py": f"""\
                import random
                import time

                import numpy as np

                def entropy():
                    return {call}
                """
            },
        )
        assert len(findings_of(lint_project(root, only=["RL001"]), "RL001")) == 1

    def test_from_import_alias_is_resolved(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/hw/foo.py": """\
                from random import choice

                def pick(items):
                    return choice(items)
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL001"]), "RL001")
        assert [finding.token for finding in found] == ["random.choice"]

    def test_seam_calls_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/foo.py": """\
                import time

                from repro.utils.seeding import generator_from_seed, spawn_generator

                def sample(seed):
                    rng = spawn_generator(seed, "foo")
                    raw = generator_from_seed(seed)
                    started = time.perf_counter()  # measuring, not seeding
                    return rng.random(4) + raw.random(4), started
                """
            },
        )
        assert lint_project(root, only=["RL001"]).clean

    def test_seeding_seam_module_is_exempt(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/utils/seeding.py": """\
                import numpy as np

                def spawn(seed):
                    return np.random.default_rng(seed)
                """
            },
        )
        assert lint_project(root, only=["RL001"]).clean

    def test_mentions_in_docstrings_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/foo.py": '''\
                def sample():
                    """Fallback np.random.default_rng(0) is documented here.

                    # and random.random() in a comment-looking line too
                    """
                    return 1
                '''
            },
        )
        assert lint_project(root, only=["RL001"]).clean


# ----------------------------------------------------------------------
# RL002 — kernel-pair contract
# ----------------------------------------------------------------------
class TestKernelPairs:
    SRC = """\
    def fast_kernel(x):
        return x

    def fast_kernel_loop(x):
        return x
    """

    def test_untested_pair_is_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/kern.py": self.SRC,
                "tests/test_kern.py": """\
                from repro.bnn.kern import fast_kernel

                def test_fast_kernel():
                    assert fast_kernel(1) == 1
                """,
            },
        )
        found = findings_of(lint_project(root, only=["RL002"]), "RL002")
        assert len(found) == 1
        assert found[0].token == "fast_kernel/fast_kernel_loop"

    def test_equivalence_test_satisfies_the_pair(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/kern.py": self.SRC,
                "tests/test_kern.py": """\
                from repro.bnn.kern import fast_kernel, fast_kernel_loop

                def test_bit_exact():
                    assert fast_kernel(1) == fast_kernel_loop(1)
                """,
            },
        )
        assert lint_project(root, only=["RL002"]).clean

    def test_method_pair_covered_via_attributes(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/kern.py": """\
                class Predictor:
                    def predict(self, x):
                        return x

                    def predict_loop(self, x):
                        return x
                """,
                "tests/test_kern.py": """\
                def test_bit_exact(predictor):
                    assert predictor.predict(1) == predictor.predict_loop(1)
                """,
            },
        )
        assert lint_project(root, only=["RL002"]).clean

    def test_loop_without_fast_sibling_is_not_a_pair(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                # run_open_loop-style names: no 'run_open' sibling, no pair.
                "src/repro/serving/gen.py": """\
                def run_open_loop(n):
                    return n
                """,
                "tests/test_gen.py": "",
            },
        )
        assert lint_project(root, only=["RL002"]).clean

    def test_private_pairs_are_ignored(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/kern.py": """\
                def _helper(x):
                    return x

                def _helper_loop(x):
                    return x
                """,
                "tests/test_kern.py": "",
            },
        )
        assert lint_project(root, only=["RL002"]).clean


# ----------------------------------------------------------------------
# RL003 — count contract
# ----------------------------------------------------------------------
class TestCountContract:
    def test_unchecked_override_is_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/grng/gen.py": """\
                import numpy as np

                class SloppyGrng:
                    def generate(self, count):
                        return np.zeros(count)
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL003"]), "RL003")
        assert len(found) == 1
        assert found[0].scope == "SloppyGrng.generate"

    def test_check_count_satisfies(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/grng/gen.py": """\
                import numpy as np

                from repro.utils.validation import check_count

                class CheckedGrng:
                    def generate(self, count):
                        count = check_count("sample count", count)
                        return np.zeros(count)

                    def fill(self, out):
                        out = self._check_out(out)
                        out[...] = 0.0
                """
            },
        )
        assert lint_project(root, only=["RL003"]).clean

    def test_delegation_to_checked_entry_point_satisfies(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/grng/gen.py": """\
                class DelegatingGrng:
                    def generate_codes(self, count):
                        count = self._check_count(count)
                        return [0] * count

                    def generate(self, count):
                        return [c * 0.5 for c in self.generate_codes(count)]

                    def generate_block(self, shape):
                        return super().generate_block(shape)
                """
            },
        )
        assert lint_project(root, only=["RL003"]).clean

    def test_abstract_and_raise_only_bodies_are_exempt(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/grng/gen.py": """\
                from abc import abstractmethod

                from repro.errors import ConfigurationError

                class StubGrng:
                    @abstractmethod
                    def generate(self, count):
                        \"\"\"Subclasses implement.\"\"\"

                    def generate_codes(self, count):
                        raise ConfigurationError("no integer datapath")
                """
            },
        )
        assert lint_project(root, only=["RL003"]).clean

    def test_grng_named_class_outside_grng_dir_is_covered(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/hw/faulty.py": """\
                import numpy as np

                class FaultyThingGrng:
                    def generate(self, count):
                        return np.zeros(count)
                """
            },
        )
        assert len(findings_of(lint_project(root, only=["RL003"]), "RL003")) == 1

    def test_non_grng_class_outside_grng_dir_is_ignored(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/gen.py": """\
                class LoadPattern:
                    def generate(self, count):
                        return list(range(count))
                """
            },
        )
        assert lint_project(root, only=["RL003"]).clean


# ----------------------------------------------------------------------
# RL004 — typed-error discipline
# ----------------------------------------------------------------------
class TestTypedErrors:
    def test_stray_builtin_raise_is_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/hw/mod.py": """\
                def f(x):
                    if x < 0:
                        raise ValueError("negative")
                    return x
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL004"]), "RL004")
        assert len(found) == 1
        assert found[0].token == "ValueError"

    def test_library_errors_and_reraises_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/hw/mod.py": """\
                from repro import errors
                from repro.errors import ConfigurationError, ReproError

                class Holder:
                    def f(self, x):
                        if x < 0:
                            raise ConfigurationError("negative")
                        if x == 0:
                            raise errors.TrainingError("zero")
                        if x == 1:
                            raise NotImplementedError
                        try:
                            return 1 / x
                        except ZeroDivisionError as exc:
                            if x > 10:
                                raise
                            if self._error is not None:
                                raise self._error
                            raise ReproError("bad") from exc
                """
            },
        )
        assert lint_project(root, only=["RL004"]).clean

    def test_test_code_is_out_of_scope(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/hw/mod.py": "x = 1\n",
                "tests/test_mod.py": """\
                def test_raises():
                    raise ValueError("fine in tests")
                """,
            },
        )
        assert lint_project(root, only=["RL004"]).clean


# ----------------------------------------------------------------------
# RL005 — lock discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    def test_unlocked_read_of_guarded_attribute_is_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/counter.py": """\
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def increment(self):
                        with self._lock:
                            self.count += 1

                    def value(self):
                        return self.count
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL005"]), "RL005")
        assert len(found) == 1
        assert found[0].scope == "Counter.value"
        assert found[0].token == "count"
        assert "read without it" in found[0].message

    def test_unlocked_write_is_flagged_as_write(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/obs/counter.py": """\
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def increment(self):
                        with self._lock:
                            self.count += 1

                    def reset(self):
                        self.count = 0
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL005"]), "RL005")
        assert len(found) == 1
        assert "written without it" in found[0].message

    def test_locked_reads_and_init_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/counter.py": """\
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0
                        self.count = self.count + 0  # __init__ is exempt

                    def increment(self):
                        with self._lock:
                            self.count += 1

                    def value(self):
                        with self._lock:
                            return self.count
                """
            },
        )
        assert lint_project(root, only=["RL005"]).clean

    def test_locked_suffix_helper_is_exempt(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/queue.py": """\
                import threading

                class Queue:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._put_locked(key, value)

                    def _put_locked(self, key, value):
                        self.items[key] = value

                    def pop_locked(self, key):
                        del self.items[key]
                """
            },
        )
        assert lint_project(root, only=["RL005"]).clean

    def test_subscript_store_marks_attribute_guarded(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/store.py": """\
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.entries = {}

                    def put(self, key, value):
                        with self._lock:
                            self.entries[key] = value

                    def snapshot(self):
                        return dict(self.entries)
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL005"]), "RL005")
        assert [finding.scope for finding in found] == ["Store.snapshot"]

    def test_condition_wrapping_the_lock_counts_as_holding_it(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/cond.py": """\
                import threading

                class Waiter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._ready = threading.Condition(self._lock)
                        self.closed = False

                    def close(self):
                        with self._ready:
                            self.closed = True
                            self._ready.notify_all()

                    def is_closed(self):
                        with self._ready:
                            return self.closed
                """
            },
        )
        assert lint_project(root, only=["RL005"]).clean

    def test_nested_function_under_lock_is_treated_as_lock_free(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/obs/cb.py": """\
                import threading

                class Callbacks:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.state = 0

                    def bump(self):
                        with self._lock:
                            self.state += 1

                            def later():
                                return self.state  # runs without the lock

                            return later
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL005"]), "RL005")
        assert len(found) == 1
        assert found[0].scope == "Callbacks.bump"

    def test_unguarded_config_attributes_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/cfg.py": """\
                import threading

                class Service:
                    def __init__(self, capacity):
                        self._lock = threading.Lock()
                        self.capacity = capacity
                        self.depth = 0

                    def submit(self):
                        if self.depth >= self.capacity:  # capacity never
                            return False                 # mutated under lock
                        with self._lock:
                            self.depth += 1
                        return True
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL005"]), "RL005")
        # capacity is immutable-after-init: clean; the unlocked depth
        # *read* in submit is the race the rule exists to catch.
        assert [finding.token for finding in found] == ["depth"]

    def test_code_outside_serving_and_obs_is_out_of_scope(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/hw/counter.py": """\
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def increment(self):
                        with self._lock:
                            self.count += 1

                    def value(self):
                        return self.count
                """
            },
        )
        assert lint_project(root, only=["RL005"]).clean


# ----------------------------------------------------------------------
# RL006 — bounded waits in serving
# ----------------------------------------------------------------------
class TestWaitTimeout:
    def test_bare_event_wait_is_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/foo.py": """\
                import threading

                class Gate:
                    def __init__(self):
                        self.event = threading.Event()

                    def block(self):
                        self.event.wait()
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL006"]), "RL006")
        assert len(found) == 1
        assert found[0].scope == "Gate.block"
        assert "timeout" in found[0].message

    def test_literal_none_timeout_is_the_unbounded_form_in_disguise(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/foo.py": """\
                def block(event):
                    event.wait(None)

                def block_kw(event):
                    event.wait(timeout=None)
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL006"]), "RL006")
        assert len(found) == 2

    def test_condition_wait_and_wait_for_need_their_timeout_slot(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/foo.py": """\
                def park(cond):
                    cond.wait()

                def park_for(cond):
                    cond.wait_for(lambda: True)
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL006"]), "RL006")
        assert sorted(finding.scope for finding in found) == ["park", "park_for"]

    def test_bounded_waits_are_clean(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/foo.py": """\
                def poll(event, cond, remaining, **kwargs):
                    event.wait(0.1)
                    event.wait(timeout=remaining)
                    cond.wait(remaining)
                    cond.wait_for(lambda: True, 1.0)
                    cond.wait_for(lambda: True, timeout=None if False else 2.0)
                    event.wait(*[0.5])
                    event.wait(**kwargs)
                """
            },
        )
        assert lint_project(root, only=["RL006"]).clean

    def test_waits_outside_serving_are_out_of_scope(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/obs/foo.py": """\
                def block(event):
                    event.wait()
                """
            },
        )
        assert lint_project(root, only=["RL006"]).clean

    def test_the_repo_serving_tier_is_rl006_clean(self):
        """The real serving package honours its own no-hang rule (modulo
        the committed baseline, which must carry a reason per entry)."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        report = lint_project(root, only=["RL006"])
        assert [finding.fingerprint for finding in report.new] == []


# ----------------------------------------------------------------------
# RL007 — fork-safe process seam
# ----------------------------------------------------------------------
class TestProcessSeam:
    def test_threading_primitive_in_entry_function_is_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/foo.py": """\
                import multiprocessing
                import threading

                def worker_main(name):
                    gate = threading.Event()
                    gate.wait(0.1)

                def start():
                    p = multiprocessing.Process(target=worker_main, args=("w",))
                    p.start()
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL007"]), "RL007")
        assert len(found) == 1
        assert found[0].token == "threading.Event"
        assert found[0].scope == "worker_main:worker_main"
        assert "spawn/fork seam" in found[0].message

    def test_transitive_callee_and_from_import_are_caught(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/foo.py": """\
                import multiprocessing
                from threading import Lock

                def helper():
                    return Lock()

                def worker_main():
                    return helper()

                def start(ctx):
                    ctx.Process(target=worker_main).start()
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL007"]), "RL007")
        assert len(found) == 1
        assert found[0].token == "threading.Lock"
        assert found[0].scope == "worker_main:helper"

    def test_parent_side_threading_is_not_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/foo.py": """\
                import multiprocessing
                import threading

                def worker_main(name):
                    return name.upper()

                class Pool:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._proc = multiprocessing.Process(target=worker_main)
                """
            },
        )
        assert lint_project(root, only=["RL007"]).clean

    def test_raw_pickle_on_the_request_path_is_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/foo.py": """\
                import pickle

                def encode(batch):
                    return pickle.dumps(batch)

                def decode(payload):
                    return pickle.loads(payload)
                """
            },
        )
        found = findings_of(lint_project(root, only=["RL007"]), "RL007")
        assert sorted(finding.token for finding in found) == [
            "pickle.dumps",
            "pickle.loads",
        ]
        assert all("pickle-free" in finding.message for finding in found)

    def test_pickle_outside_serving_is_out_of_scope(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/experiments/foo.py": """\
                import pickle

                def snapshot(obj):
                    return pickle.dumps(obj)
                """
            },
        )
        assert lint_project(root, only=["RL007"]).clean

    def test_the_repo_serving_tier_is_rl007_clean(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        report = lint_project(root, only=["RL007"])
        assert [finding.fingerprint for finding in report.new] == []


# ----------------------------------------------------------------------
# Engine: suppressions, baseline, CLI exit codes
# ----------------------------------------------------------------------
BAD_SEED_SRC = """\
import numpy as np

def sample():
    return np.random.default_rng(0).random(4)
"""


class TestEngine:
    def test_inline_suppression(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/foo.py": """\
                import numpy as np

                def sample():
                    return np.random.default_rng(0).random(4)  # reprolint: disable=RL001
                """
            },
        )
        report = lint_project(root, only=["RL001"])
        assert report.clean
        assert len(report.suppressed) == 1

    def test_suppression_of_other_rule_does_not_apply(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/foo.py": """\
                import numpy as np

                def sample():
                    return np.random.default_rng(0).random(4)  # reprolint: disable=RL004
                """
            },
        )
        report = lint_project(root, only=["RL001"])
        assert not report.clean

    def test_disable_all_suppresses_every_rule(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/bnn/foo.py": """\
                import numpy as np

                def sample():
                    return np.random.default_rng(0).random(4)  # reprolint: disable=all
                """
            },
        )
        assert lint_project(root, only=["RL001"]).clean

    def test_baseline_filters_and_reports_stale_entries(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/bnn/foo.py": BAD_SEED_SRC})
        raw = lint_project(root, only=["RL001"])
        assert len(raw.new) == 1
        fingerprint = raw.new[0].fingerprint
        baseline = Baseline(
            {fingerprint: "known", "RL001:src/repro/gone.py:<module>:x": "stale"}
        )
        report = lint_project(root, only=["RL001"], baseline=baseline)
        assert report.clean
        assert [finding.fingerprint for finding in report.baselined] == [fingerprint]
        assert report.stale_baseline == ["RL001:src/repro/gone.py:<module>:x"]

    def test_fingerprint_is_line_number_independent(self, tmp_path):
        root_a = make_tree(tmp_path / "a", {"src/repro/bnn/foo.py": BAD_SEED_SRC})
        root_b = make_tree(
            tmp_path / "b",
            {"src/repro/bnn/foo.py": "# a new leading comment\n" + BAD_SEED_SRC},
        )
        finding_a = lint_project(root_a, only=["RL001"]).new[0]
        finding_b = lint_project(root_b, only=["RL001"]).new[0]
        assert finding_a.line != finding_b.line
        assert finding_a.fingerprint == finding_b.fingerprint

    def test_unknown_rule_id_raises(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/bnn/foo.py": "x = 1\n"})
        with pytest.raises(AnalysisError, match="unknown rule"):
            lint_project(root, only=["RL999"])

    def test_unparseable_source_raises(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/bnn/foo.py": "def broken(:\n"})
        with pytest.raises(AnalysisError, match="cannot parse"):
            lint_project(root)

    def test_project_scan_requires_sources(self, tmp_path):
        with pytest.raises(AnalysisError, match="no Python files"):
            load_project(tmp_path)

    # -- CLI: a deliberately-introduced RL001/RL005 violation fails the
    # -- lint verb (exit 1), and the clean/baselined tree passes (exit 0).
    def test_cli_fails_on_introduced_rl001_violation(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"src/repro/bnn/foo.py": BAD_SEED_SRC})
        assert cli_main(["lint", "--root", str(root)]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_cli_fails_on_introduced_rl005_violation(self, tmp_path, capsys):
        root = make_tree(
            tmp_path,
            {
                "src/repro/serving/counter.py": """\
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def increment(self):
                        with self._lock:
                            self.count += 1

                    def value(self):
                        return self.count
                """
            },
        )
        assert cli_main(["lint", "--root", str(root)]) == 1
        assert "RL005" in capsys.readouterr().out

    def test_cli_baseline_and_json_report(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"src/repro/bnn/foo.py": BAD_SEED_SRC})
        raw = lint_project(root, only=["RL001"])
        baseline_path = root / "analysis-baseline.json"
        Baseline({raw.new[0].fingerprint: "intentional"}).write(baseline_path)
        out_path = tmp_path / "report.json"
        code = cli_main(
            ["lint", "--root", str(root), "--format", "json", "--out", str(out_path)]
        )
        capsys.readouterr()
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["clean"] is True
        assert data["counts"]["baselined"] == 1

    def test_cli_write_baseline_round_trip(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"src/repro/bnn/foo.py": BAD_SEED_SRC})
        assert cli_main(["lint", "--root", str(root), "--write-baseline"]) == 0
        capsys.readouterr()
        baseline = Baseline.load(root / "analysis-baseline.json")
        assert len(baseline.entries) == 1
        # With the written baseline in place the tree now lints clean.
        assert cli_main(["lint", "--root", str(root)]) == 0
        capsys.readouterr()
