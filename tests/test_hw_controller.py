"""Tests for layer scheduling and cycle accounting."""

import pytest

from repro.errors import SchedulingError
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import schedule_network


class TestLayerSchedule:
    def test_paper_network_compute_cycles(self):
        cfg = ArchitectureConfig.paper()
        schedule = schedule_network(cfg, (784, 200, 200, 10))
        layers = schedule.layers
        # Layer 1: ceil(784/8)=98 iterations x ceil(200/128)=2 groups.
        assert layers[0].iterations == 98
        assert layers[0].groups == 2
        assert layers[0].compute_cycles == 196
        # Layer 2: 25 x 2.
        assert layers[1].compute_cycles == 50
        # Layer 3: 25 x 1.
        assert layers[2].compute_cycles == 25

    def test_paper_throughput_within_one_percent(self):
        # Table 5: 321,543.4 images/s.
        cfg = ArchitectureConfig.paper()
        schedule = schedule_network(cfg, (784, 200, 200, 10))
        ips = schedule.images_per_second()
        assert ips == pytest.approx(321_543.4, rel=0.01)

    def test_mc_samples_divide_throughput(self):
        cfg = ArchitectureConfig.paper()
        schedule = schedule_network(cfg, (784, 200, 200, 10))
        single = schedule.images_per_second(n_samples=1)
        ten = schedule.images_per_second(n_samples=10)
        assert ten == pytest.approx(single / 10)

    def test_gaussian_samples_per_image(self):
        cfg = ArchitectureConfig.paper()
        schedule = schedule_network(cfg, (784, 200, 200, 10))
        expected = 784 * 200 + 200 + 200 * 200 + 200 + 200 * 10 + 10
        assert schedule.gaussian_samples_per_image == expected

    def test_mac_utilization_bounds(self):
        cfg = ArchitectureConfig.paper()
        schedule = schedule_network(cfg, (784, 200, 200, 10))
        for layer in schedule.layers:
            assert 0.0 < layer.mac_utilization <= 1.0

    def test_small_layer_underutilises(self):
        # The 200->10 output layer uses 10 of 128 PEs.
        cfg = ArchitectureConfig.paper()
        schedule = schedule_network(cfg, (784, 200, 200, 10))
        assert schedule.layers[2].mac_utilization < 0.1


class TestSchedulingErrors:
    def test_too_few_layers(self):
        with pytest.raises(SchedulingError):
            schedule_network(ArchitectureConfig.paper(), (784,))

    def test_zero_layer_size(self):
        with pytest.raises(SchedulingError):
            schedule_network(ArchitectureConfig.paper(), (784, 0, 10))

    def test_writeback_infeasible(self):
        cfg = ArchitectureConfig(pe_sets=32, pes_per_set=8, pe_inputs=8)
        with pytest.raises(SchedulingError, match="write-back"):
            schedule_network(cfg, (784, 64, 10))

    def test_bad_sample_count(self):
        schedule = schedule_network(ArchitectureConfig.paper(), (784, 200, 10))
        with pytest.raises(SchedulingError):
            schedule.cycles_per_image(0)
