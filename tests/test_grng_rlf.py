"""Tests for the RLF-GRNG (§4.1): equivalence proofs and invariants.

The load-bearing properties:

* the RAM-based update (eq. 10) is bit-exact against the shifting LFSR of
  eq. (9) under the head-relative index mapping;
* the combined double-step cycle (eqs. 12a-e) equals two single steps;
* the incrementally maintained popcount always equals the true popcount
  (the Fig. 7 subtractor/accumulator datapath is exact);
* the steady-state RAM schedule fits 3 two-port blocks (Fig. 6);
* the output delta per cycle is bounded by +-3 (single) / +-5 (double).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, MemoryPortConflictError
from repro.grng.rlf import (
    DOUBLE_STEP_OPS,
    RLF_INJECT_TAPS,
    ParallelRlfGrng,
    RamTrace,
    RlfGrng,
    RlfLogic,
    double_step_ops,
    standardize_codes,
)
from repro.rng.lfsr import ShiftHeadLfsr
from repro.utils.bitops import bits_to_int, int_to_bits


def _random_bits(width: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=width, dtype=np.uint8)
    if not bits.any():
        bits[0] = 1
    return bits


class TestEquivalenceWithShiftLfsr:
    """RLF logic == the paper's eq.-(9) LFSR, bit for bit."""

    @pytest.mark.parametrize("width,taps", [(8, (4, 5, 6)), (16, (9, 12, 13)), (255, RLF_INJECT_TAPS)])
    def test_single_step_matches_shift_lfsr(self, width, taps):
        bits = _random_bits(width, seed=width)
        rlf = RlfLogic(width=width, inject_taps=taps, seed_bits=bits.copy())
        lfsr = ShiftHeadLfsr(width=width, inject_taps=taps, seed=bits_to_int(bits))
        for step in range(min(3 * width, 600)):
            rlf.single_step()
            lfsr.step()
            # Mapping: register i (1-based) of the shifting LFSR lives at
            # RAM position (head + i - 1) mod width.
            reconstructed = np.array(
                [rlf.state[(rlf.head + i) % width] for i in range(width)],
                dtype=np.uint8,
            )
            assert bits_to_int(reconstructed) == lfsr.state, f"diverged at step {step}"

    def test_popcount_matches_shift_lfsr(self):
        bits = _random_bits(255, seed=9)
        rlf = RlfLogic(seed_bits=bits.copy())
        lfsr = ShiftHeadLfsr(255, RLF_INJECT_TAPS, seed=bits_to_int(bits))
        for _ in range(400):
            count = rlf.single_step()
            lfsr.step()
            assert count == lfsr.popcount()


class TestDoubleStep:
    def test_double_step_ops_match_paper_equations(self):
        # eqs. (12a)-(12e) written as (tap, head) pairs, offset 253 twice.
        assert double_step_ops(255, RLF_INJECT_TAPS) == DOUBLE_STEP_OPS
        assert sorted(DOUBLE_STEP_OPS) == sorted(
            [(250, 0), (251, 1), (252, 0), (253, 0), (253, 1), (254, 1)]
        )

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_equals_two_single_steps(self, seed):
        bits = _random_bits(255, seed)
        combined = RlfLogic(seed_bits=bits.copy())
        stepwise = RlfLogic(seed_bits=bits.copy())
        for _ in range(200):
            combined.step()
            stepwise.single_step()
            stepwise.single_step()
            assert (combined.state == stepwise.state).all()
            assert combined.head == stepwise.head
            assert combined.count == stepwise.count

    def test_invalid_tap_for_double_step(self):
        with pytest.raises(ConfigurationError, match="double-step"):
            double_step_ops(255, (254,))
        with pytest.raises(ConfigurationError, match="double-step"):
            double_step_ops(255, (1,))


class TestPopcountInvariant:
    def test_incremental_count_always_exact(self):
        logic = RlfLogic.from_seed(3)
        for _ in range(300):
            logic.step()
            assert logic.count == logic.popcount()

    def test_single_step_count_exact(self):
        logic = RlfLogic.from_seed(4)
        for _ in range(300):
            logic.single_step()
            assert logic.count == logic.popcount()

    def test_delta_bounds(self):
        # §4.1.2: single update delta <= 3 (tap count); combined <= 5.
        single = RlfLogic.from_seed(5)
        prev = single.count
        for _ in range(500):
            current = single.single_step()
            assert abs(current - prev) <= 3
            prev = current
        double = RlfLogic.from_seed(5)
        prev = double.count
        for _ in range(500):
            current = double.step()
            assert abs(current - prev) <= 5
            prev = current

    def test_double_step_widens_delta_support(self):
        # The whole point of eqs. (12): deltas of magnitude 4 and 5 occur.
        logic = RlfLogic.from_seed(6)
        prev = logic.count
        deltas = set()
        for _ in range(3000):
            current = logic.step()
            deltas.add(current - prev)
            prev = current
        assert max(abs(d) for d in deltas) > 3


class TestRamSchedule:
    def test_three_block_two_port_budget_never_violated(self):
        logic = RlfLogic.from_seed(11, track_ram=True)
        for _ in range(1000):
            logic.step()  # RamTrace.end_cycle raises on violation
        trace = logic.ram_trace
        assert trace.cycles == 1000

    def test_bandwidth_within_paper_claim(self):
        # Paper claims 3 reads + 2 writes/cycle; the buffered schedule here
        # needs only 2 + 2.
        logic = RlfLogic.from_seed(12, track_ram=True)
        for _ in range(100):
            logic.step()
        assert logic.ram_trace.reads_per_cycle <= 3
        assert logic.ram_trace.writes_per_cycle <= 2

    def test_ram_trace_detects_conflicts(self):
        trace = RamTrace()
        trace.begin_cycle()
        trace.read(0)
        trace.read(3)
        trace.write(6)  # three accesses to block 0
        with pytest.raises(MemoryPortConflictError):
            trace.end_cycle()


class TestConstruction:
    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError, match="non-zero"):
            RlfLogic(seed_bits=np.zeros(255, dtype=np.uint8))

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError, match="shape"):
            RlfLogic(seed_bits=np.ones(10, dtype=np.uint8))

    def test_rejects_small_width(self):
        with pytest.raises(ConfigurationError):
            RlfLogic(width=4, inject_taps=(2,))

    def test_rejects_tap_out_of_range(self):
        with pytest.raises(ConfigurationError):
            RlfLogic(width=16, inject_taps=(16,), seed_bits=1)

    def test_integer_seed(self):
        logic = RlfLogic(width=8, inject_taps=(4, 5, 6), seed_bits=0b1010)
        assert (logic.state == int_to_bits(0b1010, 8)).all()


class TestRlfGrng:
    def test_codes_in_8bit_range(self):
        codes = RlfGrng(seed=0).generate_codes(500)
        assert codes.min() >= 0 and codes.max() <= 255

    def test_standardized_moments(self):
        samples = RlfGrng(seed=0).generate(20000)
        assert abs(samples.mean()) < 0.3  # single lane: slow-mixing walk
        assert abs(samples.std() - 1.0) < 0.15

    def test_standardize_codes_formula(self):
        out = standardize_codes(np.array([127.5]), 255)
        assert out[0] == pytest.approx(0.0)
        one_sigma = standardize_codes(np.array([127.5 + np.sqrt(255 / 4)]), 255)
        assert one_sigma[0] == pytest.approx(1.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            RlfGrng(seed=0).generate(-1)


class TestParallelRlfGrng:
    def test_lane_count_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelRlfGrng(lanes=6)
        with pytest.raises(ConfigurationError):
            ParallelRlfGrng(lanes=0)

    def test_step_emits_one_code_per_lane(self):
        grng = ParallelRlfGrng(lanes=16, seed=0)
        codes = grng.step()
        assert codes.shape == (16,)
        assert (codes >= 0).all() and (codes <= 255).all()

    def test_counts_match_state_popcounts(self):
        grng = ParallelRlfGrng(lanes=8, seed=1, multiplex_outputs=False)
        for _ in range(100):
            codes = grng.step()
            assert (codes == grng.state.sum(axis=0)).all()

    def test_lanes_evolve_independently(self):
        grng = ParallelRlfGrng(lanes=8, seed=2, multiplex_outputs=False)
        codes = np.array([grng.step() for _ in range(64)])
        # Different lanes should not produce identical code streams.
        for i in range(8):
            for j in range(i + 1, 8):
                assert not (codes[:, i] == codes[:, j]).all()

    def test_multiplexer_rotates_within_groups_of_four(self):
        plain = ParallelRlfGrng(lanes=8, seed=3, multiplex_outputs=False)
        muxed = ParallelRlfGrng(lanes=8, seed=3, multiplex_outputs=True)
        for cycle in range(8):
            raw = plain.step()
            rotated = muxed.step()
            expected = np.roll(raw.reshape(-1, 4), cycle % 4, axis=1).reshape(-1)
            assert (rotated == expected).all()

    def test_generate_exact_count(self):
        grng = ParallelRlfGrng(lanes=16, seed=4)
        assert grng.generate(50).shape == (50,)
        assert grng.generate(0).shape == (0,)

    def test_marginal_distribution_near_standard_normal(self):
        samples = ParallelRlfGrng(lanes=64, seed=5).generate(100_000)
        assert abs(samples.mean()) < 0.08
        assert abs(samples.std() - 1.0) < 0.05

    def test_dead_lane_resurrected(self):
        # Even if the seed RNG produced an all-zero lane it must be fixed up.
        grng = ParallelRlfGrng(lanes=4, seed=6)
        assert (grng.state.sum(axis=0) > 0).all()

    def test_single_step_mode(self):
        grng = ParallelRlfGrng(lanes=4, seed=7, double_step=False, multiplex_outputs=False)
        before = grng.counts.copy()
        after = grng.step()
        assert (np.abs(after - before) <= 3).all()


class TestRlfProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_count_stays_in_code_range(self, seed):
        logic = RlfLogic.from_seed(seed)
        for _ in range(20):
            count = logic.step()
            assert 0 <= count <= 255


class TestWindowKernel:
    """The windowed multi-cycle kernel must match per-step advancement."""

    @pytest.mark.parametrize("double_step", [True, False])
    @pytest.mark.parametrize("multiplex", [True, False])
    def test_generate_codes_matches_step_sequence(self, double_step, multiplex):
        kwargs = dict(lanes=16, seed=3, double_step=double_step, multiplex_outputs=multiplex)
        block_gen = ParallelRlfGrng(**kwargs)
        step_gen = ParallelRlfGrng(**kwargs)
        # Crosses several window boundaries (window_max is 125/250).
        count = 16 * 300 + 5
        cycles = -(-count // 16)
        block = block_gen.generate_codes(count)
        reference = np.concatenate([step_gen.step() for _ in range(cycles)])[:count]
        assert np.array_equal(block, reference)
        assert block_gen.head == step_gen.head
        assert np.array_equal(block_gen.counts, step_gen.counts)
        assert np.array_equal(block_gen.state, step_gen.state)

    def test_chopped_requests_compose(self):
        chopped = ParallelRlfGrng(lanes=8, seed=4)
        whole = ParallelRlfGrng(lanes=8, seed=4)
        parts = [chopped.generate_codes(n) for n in (8, 128, 8 * 130)]
        # Each request rounds up to whole cycles; all are lane multiples
        # here, so the concatenation equals one big draw.
        assert np.array_equal(np.concatenate(parts), whole.generate_codes(8 * 147))

    @pytest.mark.parametrize("width,taps", [(16, (9, 12, 13)), (8, (4, 5, 6)), (32, (20, 27, 29))])
    def test_custom_widths_and_taps(self, width, taps):
        for double_step in (True, False):
            block_gen = ParallelRlfGrng(
                lanes=8, seed=1, width=width, inject_taps=taps, double_step=double_step
            )
            step_gen = ParallelRlfGrng(
                lanes=8, seed=1, width=width, inject_taps=taps, double_step=double_step
            )
            block = block_gen.generate_codes(8 * 50)
            reference = np.concatenate([step_gen.step() for _ in range(50)])
            assert np.array_equal(block, reference), (width, taps, double_step)
            assert np.array_equal(block_gen.state, step_gen.state)

    def test_window_bounds_for_paper_design(self):
        # Double-step: first head/write collision at d = 125 cycles;
        # single-step: at d = 250 (the smallest tap offset).
        assert ParallelRlfGrng(lanes=4, seed=0)._kernel.window_max == 125
        assert ParallelRlfGrng(lanes=4, seed=0, double_step=False)._kernel.window_max == 250

    def test_counts_still_match_full_popcounts_after_block(self):
        grng = ParallelRlfGrng(lanes=8, seed=6, multiplex_outputs=False)
        grng.generate_codes(8 * 400)
        assert np.array_equal(grng.counts, grng.state.sum(axis=0))
