"""Checksummed shared-memory segments: round trips, validation, leak sweep.

The process serving tier trusts :mod:`repro.serving.shm` for exactly two
promises, and these tests pin both:

* an attached array is bit-for-bit the published one, and *every* header
  violation (wrong magic, wrong layout, torn payload, inconsistent
  sizes) is a typed :class:`~repro.errors.ShmIntegrityError` — never a
  silently misread tensor;
* ownership is parent-side and leak-proof: ``unlink`` is idempotent,
  garbage collection unlinks through the finalizer, and ``sweep_all``
  clears whatever remains.
"""

import gc
import struct

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShmIntegrityError
from repro.serving import shm


@pytest.fixture(autouse=True)
def _no_leaks_across_tests():
    """Every test must leave the module registry the way it found it."""
    before = shm.live_segments()
    yield
    leaked = [name for name in shm.live_segments() if name not in before]
    for name in leaked:
        shm._unlink_by_name(name)
    assert leaked == [], f"test leaked shared-memory segments: {leaked}"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "array",
        [
            np.random.default_rng(0).random((7, 5)),
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.linspace(0, 1, 9, dtype=np.float32),
            np.zeros((0, 4)),  # empty payload
        ],
        ids=["f8-matrix", "i8-matrix", "f4-vector", "empty"],
    )
    def test_attach_returns_the_published_array_bit_for_bit(self, array):
        segment = shm.publish_array(array)
        try:
            restored = shm.attach_array(segment.name)
            assert restored.dtype == array.dtype
            assert restored.shape == array.shape
            assert restored.tobytes() == np.ascontiguousarray(array).tobytes()
        finally:
            segment.unlink()

    def test_publish_snapshots_the_source(self):
        source = np.ones((4, 4))
        segment = shm.publish_array(source)
        try:
            source[:] = -1.0  # writer-side mutation after publish
            assert (shm.attach_array(segment.name) == 1.0).all()
        finally:
            segment.unlink()

    def test_attach_returns_a_private_copy(self):
        segment = shm.publish_array(np.ones(8))
        try:
            first = shm.attach_array(segment.name)
            first[:] = 7.0
            assert (shm.attach_array(segment.name) == 1.0).all()
        finally:
            segment.unlink()

    def test_too_many_dims_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="max 8 dims"):
            shm.publish_array(np.zeros((1,) * 9))


class TestHeaderValidation:
    def test_attaching_a_missing_segment_is_typed(self):
        with pytest.raises(ShmIntegrityError, match="does not exist"):
            shm.attach_array("no-such-segment-0000")

    def _corrupt(self, segment, offset, value):
        raw = shm.attach_raw(segment.name)
        try:
            raw.buf[offset:offset + len(value)] = value
        finally:
            raw.close()

    def test_foreign_magic_is_rejected(self):
        segment = shm.publish_array(np.ones(4))
        try:
            self._corrupt(segment, 0, b"XXXX")
            with pytest.raises(ShmIntegrityError, match="no repro header"):
                shm.attach_array(segment.name)
        finally:
            segment.unlink()

    def test_future_layout_version_is_rejected(self):
        segment = shm.publish_array(np.ones(4))
        try:
            raw = shm.attach_raw(segment.name)
            try:
                struct.pack_into("<H", raw.buf, 4, shm.HEADER_LAYOUT_VERSION + 1)
            finally:
                raw.close()
            with pytest.raises(ShmIntegrityError, match="layout version"):
                shm.attach_array(segment.name)
        finally:
            segment.unlink()

    def test_torn_payload_fails_the_digest(self):
        segment = shm.publish_array(np.ones(16))
        try:
            self._corrupt(segment, shm._HEADER.size + 3, b"\x55")
            with pytest.raises(ShmIntegrityError, match="content digest"):
                shm.attach_array(segment.name)
        finally:
            segment.unlink()

    def test_inconsistent_declared_size_is_rejected(self):
        segment = shm.publish_array(np.ones((2, 2)))
        try:
            raw = shm.attach_raw(segment.name)
            try:
                # ndim field (offset 4+2+2+16): claim 1 dim so the shape
                # no longer matches the recorded payload byte count.
                struct.pack_into("<I", raw.buf, 24, 1)
            finally:
                raw.close()
            with pytest.raises(ShmIntegrityError, match="inconsistent"):
                shm.attach_array(segment.name)
        finally:
            segment.unlink()

    def test_truncated_segment_is_rejected(self):
        from multiprocessing import shared_memory

        runt = shared_memory.SharedMemory(
            create=True, size=8, name=shm.segment_name("runt")
        )
        handle = shm.OwnedSegment(runt)
        try:
            with pytest.raises(ShmIntegrityError, match="shorter than"):
                shm.attach_array(handle.name)
        finally:
            handle.unlink()


class TestOwnership:
    def test_unlink_is_idempotent_and_tracked(self):
        segment = shm.publish_array(np.ones(4))
        assert segment.name in shm.live_segments()
        assert segment.linked
        segment.unlink()
        segment.unlink()
        assert segment.name not in shm.live_segments()
        assert not segment.linked

    def test_garbage_collection_unlinks_through_the_finalizer(self):
        segment = shm.publish_array(np.ones(4))
        name = segment.name
        del segment
        gc.collect()
        assert name not in shm.live_segments()
        with pytest.raises(ShmIntegrityError):
            shm.attach_array(name)

    def test_sweep_all_clears_every_registered_segment(self):
        handles = [shm.publish_array(np.ones(2)) for _ in range(3)]
        names = [handle.name for handle in handles]
        assert shm.sweep_all() >= 3
        assert not set(names) & set(shm.live_segments())
        for name in names:
            with pytest.raises(ShmIntegrityError):
                shm.attach_array(name)
