"""Tests for the baseline GRNGs: Box–Muller, ziggurat, CDF inversion, CLT."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import ConfigurationError
from repro.grng import (
    BinomialLfsrGrng,
    BoxMullerGrng,
    CdfInversionGrng,
    CentralLimitGrng,
    ZigguratGrng,
)


def _check_standard_normal(samples, *, ks_alpha=1e-4):
    """Loose distributional check: moments + KS at a forgiving alpha."""
    assert abs(samples.mean()) < 0.05
    assert abs(samples.std() - 1.0) < 0.05
    _, p = stats.kstest(samples, "norm")
    assert p > ks_alpha


class TestBoxMuller:
    def test_distribution(self):
        _check_standard_normal(BoxMullerGrng(seed=0).generate(20_000))

    def test_odd_count(self):
        assert BoxMullerGrng(seed=1).generate(7).shape == (7,)

    def test_deterministic(self):
        assert (BoxMullerGrng(seed=2).generate(10) == BoxMullerGrng(seed=2).generate(10)).all()

    def test_pairs_structure(self):
        # Pairs share a radius: samples 0 and 1 satisfy x0^2 + x1^2 = r^2
        # with r from the exponential; just check finiteness and variety.
        samples = BoxMullerGrng(seed=3).generate(1000)
        assert np.isfinite(samples).all()
        assert np.unique(samples).size > 990


class TestZiggurat:
    def test_distribution(self):
        _check_standard_normal(ZigguratGrng(seed=0).generate(20_000))

    def test_layers_validation(self):
        with pytest.raises(ConfigurationError):
            ZigguratGrng(layers=100)
        with pytest.raises(ConfigurationError):
            ZigguratGrng(layers=4)

    def test_fast_path_dominates(self):
        # The point of the ziggurat: the vast majority of draws take the
        # rectangle fast path.
        grng = ZigguratGrng(seed=1)
        grng.generate(5000)
        assert grng.fast_path_hits / grng.total_draws > 0.95

    def test_tail_samples_occur_and_are_finite(self):
        samples = ZigguratGrng(seed=2).generate(100_000)
        assert np.abs(samples).max() > 3.5  # tails are reachable
        assert np.isfinite(samples).all()

    def test_symmetry(self):
        samples = ZigguratGrng(seed=3).generate(50_000)
        assert abs((samples > 0).mean() - 0.5) < 0.02


class TestCdfInversion:
    def test_distribution(self):
        _check_standard_normal(CdfInversionGrng(seed=0).generate(20_000))

    def test_finite(self):
        assert np.isfinite(CdfInversionGrng(seed=1).generate(10_000)).all()


class TestCentralLimit:
    def test_distribution(self):
        _check_standard_normal(CentralLimitGrng(seed=0, terms=12).generate(20_000))

    def test_terms_validation(self):
        with pytest.raises(ConfigurationError):
            CentralLimitGrng(terms=1)

    def test_support_is_bounded(self):
        # Irwin-Hall with k terms cannot exceed +-sqrt(3k): the known tail
        # deficiency of CLT generators.
        samples = CentralLimitGrng(seed=1, terms=12).generate(50_000)
        assert np.abs(samples).max() <= np.sqrt(3 * 12) + 1e-9

    def test_more_terms_better_tails(self):
        small = CentralLimitGrng(seed=2, terms=4).generate(50_000)
        large = CentralLimitGrng(seed=2, terms=48).generate(50_000)
        # Compare fraction beyond 2.5 sigma with the true value ~0.0124.
        true_frac = 2 * stats.norm.sf(2.5)
        err_small = abs((np.abs(small) > 2.5).mean() - true_frac)
        err_large = abs((np.abs(large) > 2.5).mean() - true_frac)
        assert err_large < err_small


class TestBinomialLfsr:
    def test_codes_range(self):
        codes = BinomialLfsrGrng(seed=0).generate_codes(2000)
        assert codes.min() >= 0 and codes.max() <= 255

    def test_moments(self):
        samples = BinomialLfsrGrng(seed=0).generate(5000)
        assert abs(samples.mean()) < 0.35  # popcount walk mixes slowly
        assert abs(samples.std() - 1.0) < 0.2

    def test_steps_validation(self):
        with pytest.raises(ConfigurationError):
            BinomialLfsrGrng(steps_per_sample=0)

    def test_cost_model_attached(self):
        # The motivating cost: a full-width PC for the naive design.
        grng = BinomialLfsrGrng(seed=0)
        assert grng.parallel_counter.full_adders == 255 - 8

    def test_vectorised_path_matches_shift_lfsr_loop(self):
        # The windowed kernel must reproduce, bit for bit, what the seed
        # did: step the eq.-(9) shifting LFSR twice per sample and emit
        # its popcount.
        from repro.rng.lfsr import ShiftHeadLfsr
        from repro.utils.bitops import bits_to_int
        from repro.utils.seeding import spawn_generator

        rng = spawn_generator(7, "binomial-lfsr")
        bits = rng.integers(0, 2, size=255, dtype=np.uint8)
        if not bits.any():
            bits[0] = 1
        lfsr = ShiftHeadLfsr(
            width=255, inject_taps=(250, 252, 253), seed=int(bits_to_int(bits))
        )
        reference = np.empty(300, dtype=np.int64)
        for i in range(300):
            lfsr.step()
            lfsr.step()
            reference[i] = lfsr.popcount()
        grng = BinomialLfsrGrng(seed=7)
        assert np.array_equal(grng.generate_codes(300), reference)
        assert grng.state_register() == lfsr.state

    def test_chopped_requests_compose(self):
        chopped = BinomialLfsrGrng(seed=1)
        whole = BinomialLfsrGrng(seed=1)
        parts = np.concatenate([chopped.generate_codes(n) for n in (3, 0, 17, 80)])
        assert np.array_equal(parts, whole.generate_codes(100))

    def test_custom_width_and_steps(self):
        grng = BinomialLfsrGrng(seed=2, width=64, inject_taps=(40, 50, 60), steps_per_sample=3)
        codes = grng.generate_codes(50)
        assert codes.shape == (50,)
        assert codes.min() >= 0 and codes.max() <= 64

    def test_invalid_tap_rejected(self):
        with pytest.raises(ConfigurationError):
            BinomialLfsrGrng(width=64, inject_taps=(64,))
