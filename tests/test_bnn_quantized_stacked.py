"""Stacked-vs-loop equivalence and epsilon-dispatch tests (fixed point).

Two load-bearing properties of the fixed-point inference stack:

* the stacked path (:meth:`QuantizedBayesianNetwork.predict_proba`) is a
  pure reformulation of the per-pass reference loop — bit for bit, for
  every registered generator behind a :class:`GrngStream`;
* the epsilon dispatch is capability-probed once at construction and
  NEVER falls back silently: a code-datapath generator whose
  ``generate_codes`` fails mid-run surfaces the error instead of
  switching the run onto the float-quantized path with different
  numerics (the regression the seed's blanket ``except
  ConfigurationError`` allowed).
"""

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.quantized import (
    RLF_SIGMA_SHIFT,
    EpsilonSource,
    QuantizedBayesianNetwork,
    epsilon_format,
)
from repro.errors import ConfigurationError
from repro.grng import BnnWallaceGrng, GrngStream, NumpyGrng, ParallelRlfGrng
from repro.grng.base import Grng
from repro.grng.factory import available_grngs, make_grng
from repro.hw.weight_generator import WeightGenerator


def _posterior(seed=0, sizes=(10, 8, 4)):
    return BayesianNetwork(sizes, seed=seed, initial_sigma=0.05).posterior_parameters()


X = np.random.default_rng(0).random((12, 10))


class FlakyCodesGrng(Grng):
    """Passes the zero-count capability probe, fails every real code draw.

    Models the bug class the shared dispatch exists to catch: a
    count-validation error or any mid-call failure inside a code-datapath
    generator.  The seed's per-call ``except ConfigurationError`` silently
    rerouted this onto the float path.
    """

    def __init__(self, fail_after: int = 0) -> None:
        self._calls_left = fail_after

    def generate(self, count: int) -> np.ndarray:
        count = self._check_count(count)
        return np.zeros(count)

    def generate_codes(self, count: int) -> np.ndarray:
        count = self._check_count(count)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if self._calls_left <= 0:
            raise ConfigurationError("injected mid-run generate_codes failure")
        self._calls_left -= 1
        return np.full(count, 128, dtype=np.int64)


class TestStackedEquivalence:
    @pytest.mark.parametrize("name", available_grngs())
    def test_every_generator_bit_for_bit_behind_stream(self, name):
        # GrngStream makes the epsilon stream call-pattern invariant, so
        # the stacked path consumes exactly the values the loop does.
        posterior = _posterior()
        stacked = QuantizedBayesianNetwork(
            posterior, bit_length=8, grng=GrngStream(make_grng(name, 5), block_size=4096)
        )
        loop = QuantizedBayesianNetwork(
            posterior, bit_length=8, grng=GrngStream(make_grng(name, 5), block_size=4096)
        )
        assert np.array_equal(
            stacked.predict_proba(X, n_samples=7),
            loop.predict_proba_loop(X, n_samples=7),
        )

    def test_numpy_fallback_bit_for_bit(self):
        posterior = _posterior(seed=1)
        stacked = QuantizedBayesianNetwork(posterior, bit_length=8, seed=9)
        loop = QuantizedBayesianNetwork(posterior, bit_length=8, seed=9)
        assert np.array_equal(
            stacked.predict_proba(X, n_samples=6),
            loop.predict_proba_loop(X, n_samples=6),
        )

    @pytest.mark.parametrize("bits", [4, 12, 16, 32])
    def test_bit_lengths_including_non_blas_widths(self, bits):
        # 32-bit operands exceed the float64-exactness bound, exercising
        # the int64-matmul fallback inside the stacked MAC.
        posterior = _posterior(seed=2)
        stacked = QuantizedBayesianNetwork(
            posterior, bit_length=bits, grng=GrngStream(make_grng("rlf", 2))
        )
        loop = QuantizedBayesianNetwork(
            posterior, bit_length=bits, grng=GrngStream(make_grng("rlf", 2))
        )
        assert np.array_equal(
            stacked.predict_proba(X, n_samples=5),
            loop.predict_proba_loop(X, n_samples=5),
        )

    def test_forward_stacked_codes_shape_and_validation(self):
        quantized = QuantizedBayesianNetwork(_posterior(seed=3), bit_length=8, seed=0)
        codes = quantized.act_fmt.quantize(X)
        logits = quantized.forward_stacked_codes(codes, 4)
        assert logits.shape == (4, X.shape[0], 4)
        assert logits.max() <= quantized.act_fmt.max_int
        assert logits.min() >= quantized.act_fmt.min_int
        with pytest.raises(ConfigurationError, match="expected codes"):
            quantized.forward_stacked_codes(np.zeros((3, 99), dtype=np.int64), 2)

    def test_eps_per_pass_counts_weights_and_biases(self):
        quantized = QuantizedBayesianNetwork(_posterior(), bit_length=8, seed=0)
        assert quantized.eps_per_pass == 10 * 8 + 8 + 8 * 4 + 4

    def test_n_samples_validation(self):
        quantized = QuantizedBayesianNetwork(_posterior(), bit_length=8, seed=0)
        with pytest.raises(ConfigurationError):
            quantized.predict_proba(X, n_samples=0)
        with pytest.raises(ConfigurationError):
            quantized.predict_proba_loop(X, n_samples=-1)


class TestEpsilonSource:
    def test_probes_capability_once_at_construction(self):
        assert EpsilonSource(ParallelRlfGrng(lanes=8, seed=0), 8).uses_codes
        assert not EpsilonSource(BnnWallaceGrng(units=2, pool_size=64, seed=0), 8).uses_codes
        assert not EpsilonSource(None, 8, rng=np.random.default_rng(0)).uses_codes

    def test_streamed_float_source_routes_float(self):
        # A GrngStream over a float-only source must be detected as
        # float-capable (the stream forwards the zero-count probe), not
        # misdetected as code-capable and then fail at the first draw.
        source = EpsilonSource(GrngStream(BnnWallaceGrng(units=2, pool_size=64, seed=0)), 8)
        assert not source.uses_codes
        assert source.draw(5).shape == (5,)

    def test_frac_bits_fixed_by_capability(self):
        assert EpsilonSource(ParallelRlfGrng(lanes=8, seed=0), 8).frac_bits == RLF_SIGMA_SHIFT
        assert EpsilonSource(NumpyGrng(0), 8).frac_bits == epsilon_format(8).frac_bits

    def test_requires_grng_or_rng(self):
        with pytest.raises(ConfigurationError):
            EpsilonSource(None, 8)

    def test_draw_and_block_consume_identical_stream(self):
        a = EpsilonSource(GrngStream(ParallelRlfGrng(lanes=8, seed=4)), 8)
        b = EpsilonSource(GrngStream(ParallelRlfGrng(lanes=8, seed=4)), 8)
        block = a.draw_block((3, 5))
        chopped = np.concatenate([b.draw(5) for _ in range(3)])
        assert np.array_equal(block.reshape(-1), chopped)


class TestNoSilentFloatFallback:
    def test_quantized_network_raises_on_mid_run_code_failure(self):
        quantized = QuantizedBayesianNetwork(
            _posterior(), bit_length=8, grng=FlakyCodesGrng(), seed=0
        )
        assert quantized._eps.uses_codes  # probe succeeded
        with pytest.raises(ConfigurationError, match="injected mid-run"):
            quantized.predict_proba(X, n_samples=2)
        with pytest.raises(ConfigurationError, match="injected mid-run"):
            quantized.predict_proba_loop(X, n_samples=2)

    def test_failure_after_first_successful_draw_still_raises(self):
        # The first layer's draw succeeds, the second fails — the run
        # must abort rather than continue with float numerics.
        quantized = QuantizedBayesianNetwork(
            _posterior(), bit_length=8, grng=FlakyCodesGrng(fail_after=1), seed=0
        )
        with pytest.raises(ConfigurationError, match="injected mid-run"):
            quantized.predict_proba_loop(X, n_samples=2)

    def test_weight_generator_raises_on_mid_run_code_failure(self):
        gen = WeightGenerator(FlakyCodesGrng(), bit_length=8)
        assert gen._eps.uses_codes
        mu = np.zeros(6, dtype=np.int64)
        with pytest.raises(ConfigurationError, match="injected mid-run"):
            gen.sample(mu, mu)
        with pytest.raises(ConfigurationError, match="injected mid-run"):
            gen.sample_block(mu, mu, 3)

    def test_failing_path_does_not_change_numerics_silently(self):
        # The regression scenario end to end: the flaky generator's float
        # path would happily produce (different) numbers — assert we
        # never get numbers at all.
        flaky = FlakyCodesGrng()
        quantized = QuantizedBayesianNetwork(_posterior(), bit_length=8, grng=flaky)
        with pytest.raises(ConfigurationError):
            quantized.predict(X, n_samples=1)

    def test_float_generators_still_serve_the_quantized_path(self):
        # Capability-probed float routing is not an error: BNNWallace
        # (and any float GRNG) still feeds the datapath via Q2.(B-3).
        quantized = QuantizedBayesianNetwork(
            _posterior(), bit_length=8, grng=BnnWallaceGrng(units=2, pool_size=64, seed=0)
        )
        probs = quantized.predict_proba(X, n_samples=3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_dispatch_shared_between_functional_and_cycle_models(self):
        # The dedup requirement: both consumers route through EpsilonSource.
        quantized = QuantizedBayesianNetwork(_posterior(), bit_length=8, seed=0)
        gen = WeightGenerator(NumpyGrng(0), bit_length=8)
        assert isinstance(quantized._eps, EpsilonSource)
        assert isinstance(gen._eps, EpsilonSource)
