"""Tests for repro.hw.config (eqs. 14-15 constraints)."""

import pytest

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat
from repro.hw.config import ArchitectureConfig


class TestConstruction:
    def test_paper_config(self):
        cfg = ArchitectureConfig.paper()
        assert cfg.pe_sets == 16
        assert cfg.pes_per_set == 8
        assert cfg.pe_inputs == 8
        assert cfg.bit_length == 8
        assert cfg.total_pes == 128

    def test_s_equals_n_enforced(self):
        # eq. (14c)/(15c)
        with pytest.raises(ConfigurationError, match="S == N"):
            ArchitectureConfig(pe_sets=4, pes_per_set=8, pe_inputs=4)

    def test_word_size_constraints(self):
        # eq. (15b): B*N*S = 16*16*16 = 4096 > 1024.
        with pytest.raises(ConfigurationError, match=r"15b"):
            ArchitectureConfig(pe_sets=2, pes_per_set=16, pe_inputs=16, bit_length=16)

    def test_ifmem_word_constraint(self):
        # eq. (14b): B*N > MaxWS with a tiny MaxWS.
        with pytest.raises(ConfigurationError, match=r"14b"):
            ArchitectureConfig(
                pe_sets=2, pes_per_set=8, pe_inputs=8, bit_length=8, max_word_size=32
            )

    def test_bit_length_bounds(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(bit_length=2)
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(bit_length=64)

    def test_grng_kind_validation(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(grng_kind="xorshift")

    def test_clock_positive(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(clock_mhz=0)


class TestDerivedProperties:
    def test_word_widths(self):
        cfg = ArchitectureConfig.paper()
        assert cfg.ifmem_word_bits == 64          # B*N
        assert cfg.wpmem_word_bits == 512         # B*N*S

    def test_weights_per_cycle(self):
        assert ArchitectureConfig.paper().weights_per_cycle == 1024  # M*N

    def test_formats(self):
        cfg = ArchitectureConfig.paper()
        assert isinstance(cfg.weight_format, QFormat)
        assert cfg.weight_format.total_bits == 8
        assert cfg.activation_format.total_bits == 8
        assert cfg.weight_format.resolution < cfg.activation_format.resolution


class TestWritebackFeasibility:
    def test_paper_design_on_mnist_network(self):
        # T=16 <= ceil(200/8)=25 for the 784-200-200-10 network.
        cfg = ArchitectureConfig.paper()
        assert cfg.writeback_feasible(200)

    def test_infeasible_when_too_many_sets(self):
        cfg = ArchitectureConfig(pe_sets=32, pes_per_set=8, pe_inputs=8)
        assert not cfg.writeback_feasible(64)  # ceil(64/8)=8 < 32

    def test_invalid_min_input(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig.paper().writeback_feasible(0)
