"""Unit tests for repro.fixedpoint.ops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FixedPointOverflowError
from repro.fixedpoint import QFormat, fixed_add, fixed_dot, fixed_mul, requantize, saturate

FMT = QFormat(2, 5)


class TestSaturate:
    def test_in_range_untouched(self):
        assert saturate(np.array([5, -5]), FMT).tolist() == [5, -5]

    def test_clamps(self):
        assert saturate(np.array([1000, -1000]), FMT).tolist() == [127, -128]

    def test_strict_raises(self):
        with pytest.raises(FixedPointOverflowError):
            saturate(np.array([1000]), FMT, strict=True)

    def test_strict_ok_in_range(self):
        saturate(np.array([127, -128]), FMT, strict=True)


class TestFixedAdd:
    def test_matches_float_when_exact(self):
        a = FMT.quantize(np.array([0.5, 1.0]))
        b = FMT.quantize(np.array([0.25, -0.5]))
        out = fixed_add(a, b, FMT)
        assert FMT.dequantize(out).tolist() == [0.75, 0.5]

    def test_saturating(self):
        a = np.array([FMT.max_int])
        out = fixed_add(a, a, FMT)
        assert out[0] == FMT.max_int


class TestFixedMul:
    def test_exact_product(self):
        a = FMT.quantize(0.5)
        b = FMT.quantize(2.0)
        out = fixed_mul(np.array([a]), np.array([b]), FMT)
        assert FMT.dequantize(out)[0] == pytest.approx(1.0)

    def test_rounding_error_bounded(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1.5, 1.5, 200)
        b = rng.uniform(-1.5, 1.5, 200)
        got = FMT.dequantize(fixed_mul(FMT.quantize(a), FMT.quantize(b), FMT))
        exact = FMT.roundtrip(a) * FMT.roundtrip(b)
        assert np.abs(got - np.clip(exact, FMT.min_value, FMT.max_value)).max() <= FMT.resolution

    def test_saturates_on_overflow(self):
        big = np.array([FMT.quantize(3.9)])
        out = fixed_mul(big, big, FMT)
        assert out[0] == FMT.max_int


class TestFixedDot:
    def test_matches_wide_reference(self):
        rng = np.random.default_rng(1)
        w = FMT.quantize(rng.uniform(-1, 1, (4, 16)))
        x = FMT.quantize(rng.uniform(-1, 1, 16))
        got = fixed_dot(w, x, FMT)
        wide = (w.astype(np.int64) * x.astype(np.int64)).sum(axis=1)
        want = requantize(wide, 2 * FMT.frac_bits, FMT)
        assert (got == want).all()

    def test_accumulator_not_saturated_internally(self):
        # Products alternate huge positive / huge negative; the final sum is
        # tiny.  A datapath that saturated per-term would get this wrong.
        w = np.array([FMT.max_int, FMT.min_int] * 8)
        x = np.array([FMT.max_int] * 16)
        out = fixed_dot(w, x, FMT)
        wide = (w.astype(np.int64) * x.astype(np.int64)).sum()
        assert out == requantize(wide, 2 * FMT.frac_bits, FMT)


class TestRequantize:
    def test_identity_shift(self):
        assert requantize(np.array([10]), FMT.frac_bits, FMT)[0] == 10

    def test_rounds_half_away_from_zero(self):
        # One extra frac bit: code 3 (=1.5 ulp) rounds to 2; -3 to -2.
        out = requantize(np.array([3, -3]), FMT.frac_bits + 1, FMT)
        assert out.tolist() == [2, -2]

    def test_left_shift_exact(self):
        out = requantize(np.array([3]), FMT.frac_bits - 2, FMT)
        assert out[0] == 12

    @given(st.integers(min_value=-(2**30), max_value=2**30))
    def test_requantize_close_to_float_division(self, wide):
        out = requantize(np.array([wide]), 2 * FMT.frac_bits, FMT)[0]
        expected = np.clip(round(wide / FMT.scale), FMT.min_int, FMT.max_int)
        assert abs(int(out) - int(expected)) <= 1  # ties may differ in direction
