"""End-to-end tests for `BnnService`: equivalence, backpressure, reload, threads."""

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.inference import MonteCarloPredictor
from repro.bnn.serialization import save_posterior
from repro.errors import (
    ConfigurationError,
    ServiceOverloaded,
    UnknownModelError,
)
from repro.grng import GrngStream, make_grng
from repro.serving import BnnService, ServiceConfig, worker_stream_seed

IN, OUT = 12, 4


@pytest.fixture()
def network():
    return BayesianNetwork((IN, 8, OUT), seed=0, initial_sigma=0.04)


@pytest.fixture()
def images():
    return np.random.default_rng(7).random((16, IN))


def sync_service(network, **overrides) -> BnnService:
    config = dict(workers=0, max_batch=8, cache_capacity=0, queue_capacity=64)
    config.update(overrides)
    service = BnnService(config=ServiceConfig(**config))
    service.register_network("m", network, n_samples=5, grng="bnnwallace", seed=3)
    return service


class TestServedEquivalence:
    def test_bit_for_bit_matches_direct_batched_path(self, network, images):
        """Served == direct predict_proba_batched for the same seed/batch."""
        with sync_service(network) as service:
            served = service.predict_many("m", images[:8])
            version = service.registry.get("m").version
        direct = MonteCarloPredictor(
            network,
            grng=GrngStream(
                make_grng("bnnwallace", seed=worker_stream_seed(3, version, 0))
            ),
            n_samples=5,
            batched=True,
        ).predict_proba_batched(images[:8])
        assert served.shape == direct.shape
        assert (served == direct).all()

    def test_successive_batches_continue_the_stream(self, network, images):
        """Two served batches must equal two direct calls on one stream."""
        with sync_service(network) as service:
            first = service.predict_many("m", images[:8])
            second = service.predict_many("m", images[8:16])
        direct = MonteCarloPredictor(
            network,
            grng=GrngStream(make_grng("bnnwallace", seed=worker_stream_seed(3, 1, 0))),
            n_samples=5,
            batched=True,
        )
        assert (first == direct.predict_proba_batched(images[:8])).all()
        assert (second == direct.predict_proba_batched(images[8:16])).all()

    def test_rows_are_probability_distributions(self, network, images):
        with sync_service(network) as service:
            probs = service.predict_many("m", images)
        assert probs.shape == (16, OUT)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()


class TestRequestValidation:
    def test_unknown_model(self, network, images):
        with sync_service(network) as service:
            with pytest.raises(UnknownModelError):
                service.submit("nope", images[0])

    def test_row_shape_mismatch(self, network):
        with sync_service(network) as service:
            with pytest.raises(ConfigurationError, match="input row"):
                service.submit("m", np.zeros(IN + 1))
            with pytest.raises(ConfigurationError, match="batch, features"):
                service.predict_many("m", np.zeros(IN))

    def test_closed_service_rejects_submissions(self, network, images):
        service = sync_service(network)
        service.close()
        with pytest.raises(ConfigurationError, match="closed"):
            service.submit("m", images[0])


class TestBackpressure:
    def test_queue_full_raises_service_overloaded(self, network, images):
        with sync_service(network, max_batch=4, queue_capacity=4) as service:
            # No model accumulates a full batch (so nothing auto-drains),
            # but together the two models fill the bounded queue.
            service.register_network("m2", network, n_samples=5, seed=4)
            tickets = [service.submit("m", images[i]) for i in range(3)]
            tickets.append(service.submit("m2", images[3]))
            assert all(not ticket.done() for ticket in tickets)
            with pytest.raises(ServiceOverloaded):
                service.submit("m", images[4])
            assert service.stats()["overloads"] == 1
            service.flush()
            assert all(ticket.done() for ticket in tickets)

    def test_full_batch_auto_drains_during_submission(self, network, images):
        with sync_service(network, max_batch=4, queue_capacity=8) as service:
            tickets = [service.submit("m", images[i]) for i in range(4)]
            # The 4th submit completed a micro-batch and dispatched it
            # inline; the queue is empty again without an explicit flush.
            assert all(ticket.done() for ticket in tickets)
            assert service.stats()["queue_pending"] == 0
            assert service.stats()["batch_histogram"] == {4: 1}

    def test_overloaded_submit_fails_its_ticket(self, network, images):
        """A rejected submission must not leave a live ticket in _pending.

        If it did, a later identical request would coalesce onto a ticket
        that is neither queued nor resolvable and hang until timeout.
        """
        with sync_service(
            network, max_batch=4, queue_capacity=4, cache_capacity=32
        ) as service:
            service.register_network("m2", network, n_samples=5, seed=4)
            for i in range(3):
                service.submit("m", images[i])
            service.submit("m2", images[3])
            with pytest.raises(ServiceOverloaded):
                service.submit("m", images[4])
            service.flush()
            # The same request now succeeds instead of returning the
            # stranded ticket.
            assert service.predict_proba("m", images[4]).shape == (OUT,)

    def test_full_batch_behind_other_model_still_auto_drains(self, network, images):
        """A full batch queued behind another model's partial rows dispatches."""
        with sync_service(network, max_batch=2, queue_capacity=8) as service:
            service.register_network("m2", network, n_samples=5, seed=4)
            partial = service.submit("m2", images[0])
            tickets = [service.submit("m", images[i]) for i in (1, 2)]
            # The second "m" submit completed a full batch; the drain loop
            # popped the blocking "m2" partial first, then the full batch.
            assert partial.done() and all(ticket.done() for ticket in tickets)
            assert service.stats()["batch_histogram"] == {1: 1, 2: 1}

    def test_predict_many_larger_than_queue_capacity(self, network, images):
        """Bulk prediction waits out backpressure instead of failing."""
        config = ServiceConfig(
            workers=1, max_batch=4, queue_capacity=4, cache_capacity=0, max_wait_ms=1.0
        )
        service = BnnService(config=config)
        service.register_network("m", network, n_samples=3, grng="bnnwallace", seed=3)
        with service:
            x = np.tile(images, (2, 1))  # 32 rows through a queue of 4
            probs = service.predict_many("m", x)
        assert probs.shape == (32, OUT)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_flush_on_empty_queue_is_noop(self, network):
        with sync_service(network) as service:
            service.flush()
            assert service.stats()["queue_pending"] == 0
            assert service.stats()["batches"] == 0


class TestCacheBehaviour:
    def test_repeat_request_hits_cache(self, network, images):
        with sync_service(network, cache_capacity=32) as service:
            first = service.predict_proba("m", images[0])
            stats = service.stats()
            assert stats["cache_hits"] == 0 and stats["cache_misses"] == 1
            second = service.predict_proba("m", images[0])
            stats = service.stats()
            assert stats["cache_hits"] == 1
            assert (first == second).all()
            # The hit resolved without a new batch.
            assert stats["batches"] == 1

    def test_reload_invalidates_cache(self, network, images, tmp_path):
        path = tmp_path / "model.npz"
        save_posterior(path, network.posterior_parameters())
        with BnnService(
            config=ServiceConfig(workers=0, max_batch=8, cache_capacity=32)
        ) as service:
            service.register_file("m", path, n_samples=5, grng="bnnwallace", seed=3)
            before = service.predict_proba("m", images[0])
            assert service.stats()["cache_entries"] == 1

            retrained = BayesianNetwork((IN, 8, OUT), seed=9).posterior_parameters()
            save_posterior(path, retrained)
            entry = service.reload("m")
            assert entry.version == 2
            assert service.stats()["cache_entries"] == 0  # eagerly dropped

            after = service.predict_proba("m", images[0])
            assert service.stats()["cache_misses"] == 2  # recomputed, not served stale
            assert not np.array_equal(before, after)

    def test_evict_drops_model_and_cache(self, network, images):
        with sync_service(network, cache_capacity=32) as service:
            service.predict_proba("m", images[0])
            service.evict("m")
            assert service.stats()["cache_entries"] == 0
            with pytest.raises(UnknownModelError):
                service.submit("m", images[0])

    def test_evict_then_reregister_serves_the_new_model(self, network, images):
        """A re-registered name must not serve the evicted model's results."""
        with sync_service(network, cache_capacity=32) as service:
            before = service.predict_proba("m", images[0])
            service.evict("m")
            other = BayesianNetwork((IN, 8, OUT), seed=99, initial_sigma=0.04)
            service.register_network("m", other, n_samples=5, grng="bnnwallace", seed=3)
            assert service.registry.get("m").version == 2
            after = service.predict_proba("m", images[0])
            assert not np.array_equal(before, after)

    def test_concurrent_identical_requests_coalesce(self, network, images):
        """In-flight duplicates share one ticket and one computed row."""
        with sync_service(network, cache_capacity=32) as service:
            first = service.submit("m", images[0])
            second = service.submit("m", images[0])
            assert second is first
            service.flush()
            assert service.stats()["batch_histogram"] == {1: 1}
            probs = service.predict_many("m", np.stack([images[1], images[1]]))
            assert (probs[0] == probs[1]).all()
            # Coalesced duplicates count toward the hit rate.
            assert service.stats()["cache_hits"] == 2

    def test_submitted_rows_are_snapshotted(self, network, images):
        """Mutating a caller buffer after submit must not change the request.

        Rows of one batch share sampled weights, so if the queue aliased
        the buffer both requests would collapse to the same (mutated)
        input and return identical rows.
        """
        with sync_service(network) as service:
            buffer = images[0].copy()
            first = service.submit("m", buffer)
            buffer[:] = images[1]
            second = service.submit("m", buffer)
            service.flush()
            assert not np.array_equal(first.result(1.0), second.result(1.0))


class TestWorkerErrorDelivery:
    def test_eviction_race_fails_tickets_not_workers(self, network, images):
        """A model evicted between submit and execute errors the tickets."""
        with sync_service(network) as service:
            ticket = service.submit("m", images[0])
            service.registry.evict("m")
            service.flush()
            with pytest.raises(UnknownModelError):
                ticket.result(timeout=1.0)
            assert service.stats()["requests_failed"] == 1

    def test_faulty_predictor_output_populates_no_cache_rows(self, network, images):
        """A worker fault mid-batch must never cache that batch's rows.

        The worker validates the predictor's output shape *before* any
        ``cache.put``; a malformed result fails every ticket in the batch
        and leaves the result cache untouched, so a later retry cannot be
        served a row that was never computed correctly.
        """

        class BadPredictor:
            def predict_proba_batched(self, x):
                return np.zeros((len(x), OUT + 1))  # wrong class count

        with sync_service(network, cache_capacity=32) as service:
            worker = service._sync_worker
            entry = service.registry.get("m")
            worker._predictors["m"] = (entry.version, BadPredictor())
            tickets = [service.submit("m", row) for row in images[:3]]
            service.flush()
            for ticket in tickets:
                with pytest.raises(ConfigurationError, match="returned shape"):
                    ticket.result(timeout=1.0)
            assert service.stats()["cache_entries"] == 0
            assert service.stats()["requests_failed"] == 3
            # The model itself is fine: a fresh predictor (version bump via
            # reload-free eviction of the poisoned one) serves and caches.
            del worker._predictors["m"]
            probs = service.predict_proba("m", images[0])
            assert probs.shape == (OUT,)
            assert service.stats()["cache_entries"] == 1


class TestThreadedMode:
    def test_worker_pool_serves_and_coalesces(self, network, images):
        config = ServiceConfig(workers=2, max_batch=8, max_wait_ms=5.0, cache_capacity=0)
        service = BnnService(config=config)
        service.register_network("m", network, n_samples=5, grng="bnnwallace", seed=3)
        with service:
            probs = service.predict_many("m", np.tile(images, (4, 1)))
        assert probs.shape == (64, OUT)
        assert np.allclose(probs.sum(axis=1), 1.0)
        snap = service.stats()
        assert snap["requests_served"] == 64
        assert snap["batches"] >= 1
        # Coalescing must actually happen: far fewer batches than requests.
        assert snap["mean_batch_size"] > 1.0

    def test_single_worker_full_batch_is_deterministic(self, network, images):
        """One worker + one full batch == the synchronous mode bit for bit."""
        config = ServiceConfig(workers=1, max_batch=8, max_wait_ms=50.0, cache_capacity=0)
        service = BnnService(config=config)
        service.register_network("m", network, n_samples=5, grng="bnnwallace", seed=3)
        with service:
            threaded = service.predict_many("m", images[:8])
        with sync_service(network) as reference_service:
            reference = reference_service.predict_many("m", images[:8])
        assert (threaded == reference).all()

    def test_close_is_idempotent(self, network):
        service = sync_service(network)
        service.close()
        service.close()
