"""Pickle-free SPSC rings: ordering, flow control, torn-write detection.

The ring is the only transport between the service and a process worker,
so the load-bearing promises are pinned in-process here (cross-process
behaviour rides on the same byte protocol and is covered end to end by
``test_serving_procpool.py``):

* strict FIFO with every header field intact, across wraparound;
* Disruptor flow control — a full ring blocks then raises typed, never
  overwrites unconsumed slots;
* a stamped slot with a corrupt payload or an out-of-order sequence is a
  :class:`~repro.errors.RingIntegrityError`, never silently consumed.
"""

import struct

import numpy as np
import pytest

from repro.errors import ConfigurationError, RingIntegrityError, ServingError
from repro.serving import shm
from repro.serving.ring import (
    MSG_REQUEST,
    MSG_RESULT,
    MSG_SHUTDOWN,
    Ring,
    _SLOT_HEADER,
)


@pytest.fixture()
def ring():
    ring = Ring.create(slots=2, slot_bytes=256, name_prefix="test-ring")
    yield ring
    ring.close()
    ring.close()  # idempotent


def consumer_of(ring):
    """A second mapping of the same segment with its own pop cursor."""
    return Ring.attach(ring.name)


class TestRoundTrip:
    def test_fields_and_payload_survive_verbatim(self, ring):
        rows = np.random.default_rng(3).random((4, 5))
        consumer = consumer_of(ring)
        ring.push(
            MSG_REQUEST,
            rows.tobytes(),
            rows=4,
            cols=5,
            version=7,
            msg_id=42,
            aux1=-1,
            aux2=9,
            aux3=2,
        )
        message = consumer.pop(timeout_s=1.0)
        assert message is not None
        assert (message.kind, message.rows, message.cols) == (MSG_REQUEST, 4, 5)
        assert (message.version, message.msg_id) == (7, 42)
        assert (message.aux1, message.aux2, message.aux3) == (-1, 9, 2)
        assert np.array_equal(message.rows_array(), rows)
        consumer.close()

    def test_fifo_order_across_wraparound(self, ring):
        consumer = consumer_of(ring)
        for index in range(7):  # > 3 laps of a 2-slot ring
            ring.push(MSG_RESULT, bytes([index]), msg_id=index)
            message = consumer.pop(timeout_s=1.0)
            assert message.msg_id == index
            assert message.payload == bytes([index])
        consumer.close()

    def test_pop_on_empty_returns_none(self, ring):
        assert consumer_of(ring).pop(timeout_s=0.01) is None

    def test_empty_payload_messages(self, ring):
        consumer = consumer_of(ring)
        ring.push(MSG_SHUTDOWN)
        message = consumer.pop(timeout_s=1.0)
        assert message.kind == MSG_SHUTDOWN
        assert message.payload == b""
        consumer.close()

    def test_rows_array_size_mismatch_is_typed(self, ring):
        consumer = consumer_of(ring)
        ring.push(MSG_RESULT, b"\0" * 16, rows=3, cols=3)  # 72 bytes declared
        with pytest.raises(RingIntegrityError, match="carries"):
            consumer.pop(timeout_s=1.0).rows_array()
        consumer.close()


class TestFlowControl:
    def test_oversized_payload_is_a_configuration_error(self, ring):
        with pytest.raises(ConfigurationError, match="slot capacity"):
            ring.push(MSG_REQUEST, b"\0" * 257)

    def test_full_ring_times_out_typed(self, ring):
        ring.push(MSG_REQUEST, b"a")
        ring.push(MSG_REQUEST, b"b")
        with pytest.raises(ServingError, match="ring full"):
            ring.push(MSG_REQUEST, b"c", timeout_s=0.05)

    def test_full_ring_aborts_on_request(self, ring):
        ring.push(MSG_REQUEST, b"a")
        ring.push(MSG_REQUEST, b"b")
        with pytest.raises(ServingError, match="aborted"):
            ring.push(MSG_REQUEST, b"c", timeout_s=5.0, should_abort=lambda: True)

    def test_consumer_progress_reopens_the_ring(self, ring):
        consumer = consumer_of(ring)
        ring.push(MSG_REQUEST, b"a")
        ring.push(MSG_REQUEST, b"b")
        assert consumer.pop(timeout_s=1.0).payload == b"a"
        ring.push(MSG_REQUEST, b"c", timeout_s=1.0)  # must not raise now
        assert consumer.pop(timeout_s=1.0).payload == b"b"
        assert consumer.pop(timeout_s=1.0).payload == b"c"
        consumer.close()

    def test_pop_abort_returns_none_immediately(self, ring):
        assert consumer_of(ring).pop(timeout_s=5.0, should_abort=lambda: True) is None


class TestIntegrity:
    def test_torn_payload_fails_crc(self, ring):
        consumer = consumer_of(ring)
        ring.push(MSG_REQUEST, b"payload-bytes")
        body = ring._slot_offset(0) + _SLOT_HEADER.size
        ring._buf[body] ^= 0xFF  # SIGKILL-mid-write stand-in
        with pytest.raises(RingIntegrityError, match="CRC"):
            consumer.pop(timeout_s=1.0)
        consumer.close()

    def test_sequence_ahead_of_cursor_is_detected(self, ring):
        consumer = consumer_of(ring)
        # Foreign write: stamp slot 0 with a far-future sequence.
        struct.pack_into("<Q", ring._buf, ring._slot_offset(0), 99)
        with pytest.raises(RingIntegrityError, match="sequence 99"):
            consumer.pop(timeout_s=1.0)
        consumer.close()

    def test_attaching_a_non_ring_segment_is_typed(self):
        segment = shm.publish_array(np.ones(64))
        try:
            with pytest.raises(RingIntegrityError, match="not a ring"):
                Ring.attach(segment.name)
        finally:
            segment.unlink()

    def test_attaching_a_missing_ring_is_typed(self):
        from repro.errors import ShmIntegrityError

        with pytest.raises(ShmIntegrityError, match="does not exist"):
            Ring.attach("never-created-ring")


class TestLifecycle:
    def test_create_validates_geometry(self):
        with pytest.raises(ConfigurationError, match=">= 2 slots"):
            Ring.create(slots=1)
        with pytest.raises(ConfigurationError, match="slot_bytes"):
            Ring.create(slot_bytes=8)

    def test_owner_close_unlinks_the_segment(self):
        ring = Ring.create(slots=2, slot_bytes=64, name_prefix="test-ring")
        name = ring.name
        assert name in shm.live_segments()
        ring.close()
        assert name not in shm.live_segments()

    def test_attached_close_leaves_the_segment_to_the_owner(self):
        ring = Ring.create(slots=2, slot_bytes=64, name_prefix="test-ring")
        try:
            consumer = Ring.attach(ring.name)
            consumer.close()
            assert ring.name in shm.live_segments()
            Ring.attach(ring.name).close()  # still attachable
        finally:
            ring.close()
