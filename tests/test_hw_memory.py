"""Tests for the on-chip memory models."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    MemoryAccessError,
    MemoryPortConflictError,
)
from repro.hw.memory import (
    DoubleBufferedMemory,
    DualPortRam,
    Rom,
    WeightParameterMemory,
)


class TestDualPortRam:
    def test_read_write_roundtrip(self):
        ram = DualPortRam(depth=8, width_bits=16)
        ram.write(3, 0xBEEF)
        ram.tick()
        assert ram.read(3) == 0xBEEF

    def test_two_accesses_per_cycle_ok(self):
        ram = DualPortRam(depth=8, width_bits=8)
        ram.write(0, 1)
        ram.read(0)
        ram.tick()

    def test_third_access_conflicts(self):
        ram = DualPortRam(depth=8, width_bits=8)
        ram.write(0, 1)
        ram.read(0)
        with pytest.raises(MemoryPortConflictError):
            ram.read(1)

    def test_tick_resets_budget(self):
        ram = DualPortRam(depth=8, width_bits=8)
        for _ in range(10):
            ram.read(0)
            ram.read(1)
            ram.tick()

    def test_address_bounds(self):
        ram = DualPortRam(depth=4, width_bits=8)
        with pytest.raises(MemoryAccessError):
            ram.read(4)
        with pytest.raises(MemoryAccessError):
            ram.write(-1, 0)

    def test_value_width_checked(self):
        ram = DualPortRam(depth=4, width_bits=8)
        with pytest.raises(MemoryAccessError):
            ram.write(0, 256)

    def test_load_not_cycle_counted(self):
        ram = DualPortRam(depth=4, width_bits=8)
        ram.load(np.array([1, 2, 3, 4], dtype=object))
        ram.read(0)
        ram.read(1)  # still within budget: load used no ports
        assert ram.read is not None

    def test_load_too_many_words(self):
        ram = DualPortRam(depth=2, width_bits=8)
        with pytest.raises(MemoryAccessError):
            ram.load(np.array([1, 2, 3], dtype=object))

    def test_capacity(self):
        assert DualPortRam(depth=255, width_bits=64).capacity_bits == 255 * 64

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            DualPortRam(depth=0, width_bits=8)
        with pytest.raises(ConfigurationError):
            DualPortRam(depth=8, width_bits=0)


class TestRom:
    def test_read(self):
        rom = Rom([10, 20, 30])
        assert rom.read(1) == 20
        assert len(rom) == 3

    def test_bounds(self):
        with pytest.raises(MemoryAccessError):
            Rom([1]).read(1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Rom([])


class TestDoubleBufferedMemory:
    def test_swap_flips_roles(self):
        mem = DoubleBufferedMemory(depth=4, width_bits=8)
        first_reader = mem.read_buffer
        mem.swap()
        assert mem.read_buffer is not first_reader
        assert mem.write_buffer is first_reader

    def test_layer_handoff_pattern(self):
        # Write activations to the write buffer, swap, read them back —
        # the §5.4.1 alternation.
        mem = DoubleBufferedMemory(depth=4, width_bits=8)
        mem.write_buffer.write(0, 42)
        mem.tick()
        mem.swap()
        assert mem.read_buffer.read(0) == 42

    def test_capacity_counts_both(self):
        mem = DoubleBufferedMemory(depth=4, width_bits=8)
        assert mem.capacity_bits == 2 * 4 * 8


class TestWeightParameterMemory:
    def test_distributed_reads_same_cycle(self):
        # Every PE-set reads its own memory in one cycle — the whole point
        # of distributing WPMems (§5.4.2).
        wp = WeightParameterMemory(pe_sets=16, depth=4, word_bits=512)
        for set_index in range(16):
            wp.load_set(set_index, [set_index * 10])
        for set_index in range(16):
            assert wp.read_set_word(set_index, 0) == set_index * 10
        wp.tick()

    def test_set_index_bounds(self):
        wp = WeightParameterMemory(pe_sets=2, depth=2, word_bits=8)
        with pytest.raises(MemoryAccessError):
            wp.read_set_word(2, 0)

    def test_capacity(self):
        wp = WeightParameterMemory(pe_sets=4, depth=8, word_bits=16)
        assert wp.capacity_bits == 4 * 8 * 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WeightParameterMemory(pe_sets=0, depth=4, word_bits=8)
