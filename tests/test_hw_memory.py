"""Tests for the on-chip memory models."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    MemoryAccessError,
    MemoryPortConflictError,
)
from repro.hw.memory import (
    DoubleBufferedMemory,
    DualPortRam,
    Rom,
    WeightParameterMemory,
)


class TestDualPortRam:
    def test_read_write_roundtrip(self):
        ram = DualPortRam(depth=8, width_bits=16)
        ram.write(3, 0xBEEF)
        ram.tick()
        assert ram.read(3) == 0xBEEF

    def test_two_accesses_per_cycle_ok(self):
        ram = DualPortRam(depth=8, width_bits=8)
        ram.write(0, 1)
        ram.read(0)
        ram.tick()

    def test_third_access_conflicts(self):
        ram = DualPortRam(depth=8, width_bits=8)
        ram.write(0, 1)
        ram.read(0)
        with pytest.raises(MemoryPortConflictError):
            ram.read(1)

    def test_tick_resets_budget(self):
        ram = DualPortRam(depth=8, width_bits=8)
        for _ in range(10):
            ram.read(0)
            ram.read(1)
            ram.tick()

    def test_address_bounds(self):
        ram = DualPortRam(depth=4, width_bits=8)
        with pytest.raises(MemoryAccessError):
            ram.read(4)
        with pytest.raises(MemoryAccessError):
            ram.write(-1, 0)

    def test_value_width_checked(self):
        ram = DualPortRam(depth=4, width_bits=8)
        with pytest.raises(MemoryAccessError):
            ram.write(0, 256)

    def test_load_not_cycle_counted(self):
        ram = DualPortRam(depth=4, width_bits=8)
        ram.load(np.array([1, 2, 3, 4], dtype=object))
        ram.read(0)
        ram.read(1)  # still within budget: load used no ports
        assert ram.read is not None

    def test_load_too_many_words(self):
        ram = DualPortRam(depth=2, width_bits=8)
        with pytest.raises(MemoryAccessError):
            ram.load(np.array([1, 2, 3], dtype=object))

    def test_capacity(self):
        assert DualPortRam(depth=255, width_bits=64).capacity_bits == 255 * 64

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            DualPortRam(depth=0, width_bits=8)
        with pytest.raises(ConfigurationError):
            DualPortRam(depth=8, width_bits=0)


class TestRom:
    def test_read(self):
        rom = Rom([10, 20, 30])
        assert rom.read(1) == 20
        assert len(rom) == 3

    def test_bounds(self):
        with pytest.raises(MemoryAccessError):
            Rom([1]).read(1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Rom([])


class TestDoubleBufferedMemory:
    def test_swap_flips_roles(self):
        mem = DoubleBufferedMemory(depth=4, width_bits=8)
        first_reader = mem.read_buffer
        mem.swap()
        assert mem.read_buffer is not first_reader
        assert mem.write_buffer is first_reader

    def test_layer_handoff_pattern(self):
        # Write activations to the write buffer, swap, read them back —
        # the §5.4.1 alternation.
        mem = DoubleBufferedMemory(depth=4, width_bits=8)
        mem.write_buffer.write(0, 42)
        mem.tick()
        mem.swap()
        assert mem.read_buffer.read(0) == 42

    def test_capacity_counts_both(self):
        mem = DoubleBufferedMemory(depth=4, width_bits=8)
        assert mem.capacity_bits == 2 * 4 * 8


class TestWeightParameterMemory:
    def test_distributed_reads_same_cycle(self):
        # Every PE-set reads its own memory in one cycle — the whole point
        # of distributing WPMems (§5.4.2).
        wp = WeightParameterMemory(pe_sets=16, depth=4, word_bits=512)
        for set_index in range(16):
            wp.load_set(set_index, [set_index * 10])
        for set_index in range(16):
            assert wp.read_set_word(set_index, 0) == set_index * 10
        wp.tick()

    def test_set_index_bounds(self):
        wp = WeightParameterMemory(pe_sets=2, depth=2, word_bits=8)
        with pytest.raises(MemoryAccessError):
            wp.read_set_word(2, 0)

    def test_capacity(self):
        wp = WeightParameterMemory(pe_sets=4, depth=8, word_bits=16)
        assert wp.capacity_bits == 4 * 8 * 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WeightParameterMemory(pe_sets=0, depth=4, word_bits=8)


def _loaded_ram(depth=8, width_bits=16):
    ram = DualPortRam(depth=depth, width_bits=width_bits)
    ram.load(np.arange(1, depth + 1).astype(object) * 3)
    return ram


class TestBlockAccounting:
    """Block operations must account exactly like the word-by-word loop."""

    def test_read_block_matches_loop_accounting(self):
        addresses = [0, 3, 1, 3, 7]
        block_ram = _loaded_ram()
        loop_ram = _loaded_ram()
        words = block_ram.read_block(np.array(addresses))
        loop_words = []
        for address in addresses:
            loop_words.append(loop_ram.read(address))
            loop_ram.tick()
        assert list(words) == loop_words
        assert block_ram.cycles == loop_ram.cycles
        assert block_ram.total_reads == loop_ram.total_reads
        assert block_ram._accesses_this_cycle == loop_ram._accesses_this_cycle

    def test_write_block_matches_loop_accounting(self):
        addresses = [2, 5, 0]
        values = [7, 9, 11]
        block_ram = _loaded_ram()
        loop_ram = _loaded_ram()
        block_ram.write_block(np.array(addresses), np.array(values, dtype=object))
        for address, value in zip(addresses, values):
            loop_ram.write(address, value)
            loop_ram.tick()
        assert block_ram.cycles == loop_ram.cycles
        assert block_ram.total_writes == loop_ram.total_writes
        for address, value in zip(addresses, values):
            assert block_ram.read(address) == value
            block_ram.tick()

    def test_block_read_into_saturated_cycle_conflicts(self):
        # The first block word lands in the current cycle, exactly like
        # the loop's first read — two prior accesses exhaust the ports.
        ram = _loaded_ram()
        ram.read(0)
        ram.read(1)
        with pytest.raises(MemoryPortConflictError):
            ram.read_block(np.array([2, 3]))

    def test_block_read_shares_cycle_with_one_prior_access(self):
        ram = _loaded_ram()
        ram.read(0)
        words = ram.read_block(np.array([1, 2]))
        assert len(words) == 2
        # Loop equivalent: read(1) in the started cycle, tick, read(2), tick.
        loop_ram = _loaded_ram()
        loop_ram.read(0)
        loop_ram.read(1)
        loop_ram.tick()
        loop_ram.read(2)
        loop_ram.tick()
        assert ram.cycles == loop_ram.cycles
        assert ram.total_reads == loop_ram.total_reads

    def test_empty_block_is_free(self):
        ram = _loaded_ram()
        assert ram.read_block(np.array([], dtype=np.int64)).shape == (0,)
        ram.write_block(np.array([], dtype=np.int64), np.array([], dtype=object))
        assert ram.cycles == 0 and ram.total_reads == 0 and ram.total_writes == 0

    def test_block_validation(self):
        ram = _loaded_ram(depth=4)
        with pytest.raises(MemoryAccessError):
            ram.read_block(np.array([0, 4]))
        with pytest.raises(MemoryAccessError):
            ram.read_block(np.array([[0, 1]]))
        with pytest.raises(MemoryAccessError):
            ram.write_block(np.array([0]), np.array([1 << 16], dtype=object))
        with pytest.raises(MemoryAccessError):
            ram.write_block(np.array([0, 1]), np.array([1], dtype=object))
        with pytest.raises(ConfigurationError):
            ram.advance(-1)

    def test_advance_counts_idle_cycles(self):
        ram = _loaded_ram()
        ram.read(0)
        ram.advance(5)
        assert ram.cycles == 5
        assert ram._accesses_this_cycle == 0

    def test_double_buffered_block_ticks_both_buffers(self):
        addresses = np.arange(3)
        block_mem = DoubleBufferedMemory(depth=4, width_bits=8)
        loop_mem = DoubleBufferedMemory(depth=4, width_bits=8)
        block_mem.read_block(addresses)
        for address in addresses:
            loop_mem.read_buffer.read(int(address))
            loop_mem.tick()
        for block_buf, loop_buf in (
            (block_mem.read_buffer, loop_mem.read_buffer),
            (block_mem.write_buffer, loop_mem.write_buffer),
        ):
            assert block_buf.cycles == loop_buf.cycles
            assert block_buf.total_reads == loop_buf.total_reads
        block_mem.write_block(addresses, np.array([1, 2, 3], dtype=object))
        for address in addresses:
            loop_mem.write_buffer.write(int(address), int(address) + 1)
            loop_mem.tick()
        assert block_mem.write_buffer.cycles == loop_mem.write_buffer.cycles
        assert block_mem.read_buffer.cycles == loop_mem.read_buffer.cycles
        assert block_mem.write_buffer.total_writes == loop_mem.write_buffer.total_writes

    def test_weight_parameter_memory_set_blocks(self):
        block_wp = WeightParameterMemory(pe_sets=3, depth=4, word_bits=8)
        loop_wp = WeightParameterMemory(pe_sets=3, depth=4, word_bits=8)
        for wp in (block_wp, loop_wp):
            for set_index in range(3):
                wp.load_set(set_index, [10 * set_index + a for a in range(4)])
        addresses = np.array([0, 2, 1])
        words = block_wp.read_set_blocks(addresses)
        assert words.shape == (3, 3)
        for position, address in enumerate(addresses):
            for set_index in range(3):
                assert words[set_index][position] == loop_wp.read_set_word(
                    set_index, int(address)
                )
            loop_wp.tick()
        for block_ram, loop_ram in zip(block_wp.memories, loop_wp.memories):
            assert block_ram.cycles == loop_ram.cycles
            assert block_ram.total_reads == loop_ram.total_reads
        block_wp.advance(2)
        assert all(ram.cycles == 5 for ram in block_wp.memories)
