"""Tests for variance-reduced epsilon streams (`repro.grng.stream`).

Covers the `make_stream` factory, call-pattern invariance of the
period-remap streams, the float-only code datapath contract (and the
quantized fallback it triggers), exact-marginal / strata-coverage
properties of the stratified stream, and the statistical regression the
subsystem exists for: with a fixed set of seeds, antithetic and
stratified epsilon streams must not increase the predictive-mean MSE of
``N``-pass Monte-Carlo inference relative to the plain stream.
"""

import numpy as np
import pytest

from repro.bnn.activations import softmax
from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.inference import (
    build_weight_stacks,
    stacked_epsilons,
    stacked_forward_stacks,
)
from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.errors import ConfigurationError
from repro.grng import (
    VARIANCE_REDUCTIONS,
    AntitheticGrngStream,
    GrngStream,
    NumpyGrng,
    StratifiedGrngStream,
    make_grng,
    make_stream,
)

IN, OUT = 6, 3


def make_network(seed=0):
    return BayesianNetwork((IN, 5, OUT), seed=seed, initial_sigma=0.08)


def eps_per_pass(network):
    return sum(layer.weight_count() for layer in network.layers)


class TestMakeStream:
    def test_plain_is_a_default_grng_stream(self):
        stream = make_stream(NumpyGrng(0))
        assert type(stream) is GrngStream
        assert stream.block_size == 65536

    def test_named_variants(self):
        assert VARIANCE_REDUCTIONS == ("plain", "antithetic", "stratified")
        anti = make_stream(NumpyGrng(0), variance_reduction="antithetic", period=10)
        assert isinstance(anti, AntitheticGrngStream) and anti.period == 10
        strat = make_stream(
            NumpyGrng(0), variance_reduction="stratified", period=10, seed=7
        )
        assert isinstance(strat, StratifiedGrngStream) and strat.period == 10

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_stream(NumpyGrng(0), variance_reduction="latin")

    def test_bad_period_rejected(self):
        for variance_reduction in ("antithetic", "stratified"):
            with pytest.raises(ConfigurationError):
                make_stream(
                    NumpyGrng(0), variance_reduction=variance_reduction, period=0
                )

    def test_bad_strata_rejected(self):
        with pytest.raises(ConfigurationError):
            StratifiedGrngStream(NumpyGrng(0), period=4, strata=0)


class TestCallPatternInvariance:
    @pytest.mark.parametrize("variance_reduction", ["antithetic", "stratified"])
    def test_chunked_equals_one_block(self, variance_reduction):
        def build():
            return make_stream(
                NumpyGrng(3),
                variance_reduction=variance_reduction,
                period=7,
                seed=5,
            )

        one = build().generate(84)
        stream = build()
        parts = np.concatenate([stream.generate(k) for k in (1, 5, 16, 27, 35)])
        assert (one == parts).all()

    @pytest.mark.parametrize("variance_reduction", ["antithetic", "stratified"])
    def test_fill_matches_generate(self, variance_reduction):
        def build():
            return make_stream(
                NumpyGrng(3),
                variance_reduction=variance_reduction,
                period=5,
                seed=5,
            )

        reference = build().generate(40)
        out = np.empty((8, 5))
        build().fill(out)
        assert (out.reshape(-1) == reference).all()


class TestCodeDatapath:
    """The remap is float-only: every code request raises, including the
    zero-count capability probe, which routes quantized consumers onto
    their quantized-float epsilon path."""

    @pytest.mark.parametrize("variance_reduction", ["antithetic", "stratified"])
    def test_generate_codes_raises_even_for_probe(self, variance_reduction):
        stream = make_stream(
            make_grng("rlf", seed=0), variance_reduction=variance_reduction, period=4
        )
        for count in (0, 1, 16):
            with pytest.raises(ConfigurationError):
                stream.generate_codes(count)
        with pytest.raises(ConfigurationError):
            stream.fill_codes(np.empty(4, dtype=np.int64))

    @pytest.mark.parametrize("variance_reduction", ["antithetic", "stratified"])
    def test_quantized_network_falls_back_to_float_path(self, variance_reduction):
        """A code-capable source behind a remap stream must still serve
        fixed-point inference (via quantized-float epsilons), not crash."""
        network = make_network()
        stream = make_stream(
            make_grng("rlf", seed=2),
            variance_reduction=variance_reduction,
            period=eps_per_pass(network),
        )
        quantized = QuantizedBayesianNetwork(
            network.posterior_parameters(), grng=stream, seed=2
        )
        x = np.random.default_rng(0).random((4, IN))
        probs = quantized.predict_proba(x, n_samples=6)
        assert probs.shape == (4, OUT)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestStratifiedProperties:
    def test_cycle_covers_every_stratum_once_per_component(self):
        from scipy.special import ndtr

        strata, period = 8, 11
        stream = StratifiedGrngStream(NumpyGrng(0), period, strata=strata, seed=1)
        block = stream.generate(strata * period).reshape(strata, period)
        indices = np.floor(ndtr(block) * strata).astype(int)
        for component in range(period):
            assert sorted(indices[:, component]) == list(range(strata))

    def test_permutations_are_redrawn_per_cycle(self):
        from scipy.special import ndtr

        strata, period = 4, 16
        stream = StratifiedGrngStream(NumpyGrng(0), period, strata=strata, seed=1)
        block = stream.generate(2 * strata * period).reshape(2, strata, period)
        schedules = np.floor(ndtr(block) * strata).astype(int)
        assert (schedules[0] != schedules[1]).any()

    def test_marginals_stay_standard_normal(self):
        stream = StratifiedGrngStream(NumpyGrng(7), period=64, strata=8, seed=3)
        samples = stream.generate(64 * 512)
        assert abs(samples.mean()) < 0.02
        assert abs(samples.std() - 1.0) < 0.02

    def test_antithetic_halves_source_consumption(self):
        source = NumpyGrng(0)
        stream = AntitheticGrngStream(source, period=16, block_size=16)
        stream.generate(32 * 16)  # 32 passes
        # 16 passes worth of fresh draws = 16 refills of 16 samples each.
        assert stream.refills == 16


def predictive_mean(network, x, n_samples, stream):
    epsilons = stacked_epsilons(network.layers, n_samples, stream)
    stacks = build_weight_stacks(network.layers, epsilons)
    probs = softmax(stacked_forward_stacks(stacks, x))
    return probs.mean(axis=0)


class TestPredictiveMeanMSERegression:
    """The statistical gate: across a fixed seed battery, antithetic and
    stratified N-pass predictive means are no farther (in MSE) from the
    converged predictive mean than the plain stream's."""

    N_PASSES = 16
    SEEDS = range(24)

    @pytest.fixture(scope="class")
    def setup(self):
        network = make_network()
        x = np.random.default_rng(1).normal(size=(8, IN))
        reference = predictive_mean(
            network, x, 8192, GrngStream(NumpyGrng(10_000))
        )
        return network, x, reference

    def mse(self, setup, variance_reduction):
        network, x, reference = setup
        period = eps_per_pass(network)
        errors = []
        for seed in self.SEEDS:
            stream = make_stream(
                NumpyGrng(seed),
                variance_reduction=variance_reduction,
                period=period,
                seed=seed,
            )
            estimate = predictive_mean(network, x, self.N_PASSES, stream)
            errors.append(np.mean((estimate - reference) ** 2))
        return float(np.mean(errors))

    def test_antithetic_does_not_increase_mse(self, setup):
        assert self.mse(setup, "antithetic") <= self.mse(setup, "plain")

    def test_stratified_does_not_increase_mse(self, setup):
        assert self.mse(setup, "stratified") <= self.mse(setup, "plain")
