"""Tests for the prediction cache and the service metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving.cache import PredictionCache, input_digest
from repro.serving.metrics import ServiceMetrics


class TestInputDigest:
    def test_depends_on_values(self):
        assert input_digest(np.zeros(4)) != input_digest(np.ones(4))
        assert input_digest(np.arange(4.0)) == input_digest(np.arange(4.0))

    def test_layout_independent(self):
        strided = np.arange(8.0)[::2]
        assert input_digest(strided) == input_digest(strided.copy())


class TestPredictionCache:
    def test_miss_then_hit(self):
        cache = PredictionCache(capacity=4)
        key = PredictionCache.key("m", 1, 10, np.zeros(3))
        assert cache.get(key) is None
        cache.put(key, np.array([0.5, 0.5]))
        assert np.array_equal(cache.get(key), [0.5, 0.5])
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate() == 0.5

    def test_returns_defensive_copies(self):
        cache = PredictionCache(capacity=4)
        key = PredictionCache.key("m", 1, 10, np.zeros(3))
        cache.put(key, np.array([0.5, 0.5]))
        cache.get(key)[0] = 99.0
        assert np.array_equal(cache.get(key), [0.5, 0.5])

    def test_version_changes_key(self):
        row = np.zeros(3)
        assert PredictionCache.key("m", 1, 10, row) != PredictionCache.key("m", 2, 10, row)
        assert PredictionCache.key("m", 1, 10, row) != PredictionCache.key("m", 1, 20, row)

    def test_lru_eviction(self):
        cache = PredictionCache(capacity=2)
        keys = [PredictionCache.key("m", 1, 10, np.full(3, v)) for v in range(3)]
        cache.put(keys[0], np.zeros(2))
        cache.put(keys[1], np.zeros(2))
        cache.get(keys[0])  # refresh 0; 1 becomes LRU
        cache.put(keys[2], np.zeros(2))
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None

    def test_invalidate_model(self):
        cache = PredictionCache(capacity=8)
        for model in ("a", "b"):
            cache.put(PredictionCache.key(model, 1, 10, np.zeros(3)), np.zeros(2))
        assert cache.invalidate_model("a") == 1
        assert len(cache) == 1
        assert cache.get(PredictionCache.key("b", 1, 10, np.zeros(3))) is not None

    def test_capacity_zero_disables(self):
        cache = PredictionCache(capacity=0)
        key = PredictionCache.key("m", 1, 10, np.zeros(3))
        cache.put(key, np.zeros(2))
        assert cache.get(key) is None and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PredictionCache(capacity=-1)


class TestServiceMetrics:
    def test_latency_percentiles(self):
        metrics = ServiceMetrics()
        for value in range(1, 101):
            metrics.record_latency(value / 1000.0)
        latency = metrics.latency_percentiles()
        assert latency["p50"] == pytest.approx(0.0505, abs=1e-4)
        assert latency["p99"] <= 0.1
        assert latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_empty_percentiles_are_zero(self):
        assert ServiceMetrics().latency_percentiles() == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_latency_window_is_a_ring(self):
        metrics = ServiceMetrics(latency_window=4)
        for value in (1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0):
            metrics.record_latency(value)
        assert metrics.latency_percentiles()["p50"] == 5.0
        assert metrics.requests_served == 8

    def test_batch_histogram_and_mean(self):
        metrics = ServiceMetrics()
        for size in (1, 64, 64, 7):
            metrics.record_batch(size)
        assert metrics.batch_histogram() == {1: 1, 7: 1, 64: 2}
        assert metrics.mean_batch_size() == pytest.approx(34.0)

    def test_queue_depth_tracks_maximum(self):
        metrics = ServiceMetrics()
        for depth in (3, 9, 2):
            metrics.record_queue_depth(depth)
        assert metrics.max_queue_depth == 9
        assert metrics.last_queue_depth == 2

    def test_cache_and_overload_counters(self):
        metrics = ServiceMetrics()
        metrics.record_cache(True)
        metrics.record_cache(False)
        metrics.record_cache(False)
        metrics.record_overload()
        assert metrics.cache_hit_rate() == pytest.approx(1 / 3)
        snap = metrics.snapshot()
        assert snap["overloads"] == 1
        assert snap["cache_hits"] == 1 and snap["cache_misses"] == 2

    def test_render_mentions_every_section(self):
        metrics = ServiceMetrics()
        metrics.record_latency(0.01)
        metrics.record_batch(4)
        text = metrics.render()
        for fragment in ("requests served", "batch histogram", "latency", "cache", "queue depth"):
            assert fragment in text

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceMetrics(latency_window=0)
