"""Span/tracer unit tests: ring bound, nested phases, export, report."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    RequestSpan,
    Tracer,
    collect_phases,
    load_spans,
    phase,
    render_phase_report,
)


class TestRequestSpan:
    def test_add_phase_accumulates_and_clamps(self):
        span = RequestSpan("m", start=0.0)
        span.add_phase("inference", 0.25)
        span.add_phase("inference", 0.25)
        span.add_phase("respond", -1.0)  # clock skew clamps to zero
        assert span.phases == {"inference": 0.5, "respond": 0.0}

    def test_latency_and_accounted_fraction(self):
        span = RequestSpan("m", start=1.0)
        span.end = 3.0
        span.add_phase("inference", 1.5)
        assert span.latency_s == 2.0
        assert span.accounted_fraction() == pytest.approx(0.75)

    def test_mark_uses_perf_counter(self):
        span = RequestSpan("m", start=time.perf_counter())
        span.mark("enqueued")
        assert span.marks["enqueued"] >= span.start


class TestTracer:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)

    def test_ring_is_bounded_but_counts_everything(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.finish(tracer.begin(f"m{i}"))
        assert len(tracer) == 4
        assert tracer.finished == 10
        assert [s.model for s in tracer.spans()] == ["m6", "m7", "m8", "m9"]
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.finished == 10

    def test_finish_stamps_end_and_error(self):
        tracer = Tracer()
        span = tracer.begin("m")
        tracer.finish(span, error="ValueError")
        assert span.end is not None and span.end >= span.start
        assert span.error == "ValueError"

    def test_export_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        span = tracer.begin("m", start=0.0)
        span.add_phase("inference", 0.5)
        span.batch_size = 4
        tracer.finish(span, end=1.0)
        path = tmp_path / "deep" / "spans.jsonl"
        assert tracer.export_jsonl(path) == 1
        (loaded,) = load_spans(path)
        assert loaded["model"] == "m"
        assert loaded["latency_s"] == 1.0
        assert loaded["phases"] == {"inference": 0.5}
        assert loaded["batch_size"] == 4


class TestPhaseCollection:
    def test_noop_without_collection(self):
        with phase("inference"):
            pass  # must not raise, must not record anywhere

    def test_flat_phases_recorded(self):
        sink = {}
        with collect_phases(sink):
            with phase("a"):
                time.sleep(0.002)
            with phase("b"):
                time.sleep(0.002)
        assert set(sink) == {"a", "b"}
        assert all(v > 0 for v in sink.values())

    def test_nested_phases_attribute_exclusive_time(self):
        """A child's wall time is subtracted from its parent, so the sink
        partitions the outer wall clock — the sum-≤-wall invariant."""
        sink = {}
        start = time.perf_counter()
        with collect_phases(sink):
            with phase("outer"):
                time.sleep(0.002)
                with phase("inner"):
                    time.sleep(0.004)
        wall = time.perf_counter() - start
        assert sink["inner"] >= 0.004
        assert sink["outer"] < sink["inner"]  # exclusive, not inclusive
        assert sum(sink.values()) <= wall + 1e-6

    def test_collection_restores_previous_state(self):
        outer_sink, inner_sink = {}, {}
        with collect_phases(outer_sink):
            with collect_phases(inner_sink):
                with phase("x"):
                    pass
            with phase("y"):
                pass
        assert "x" in inner_sink and "x" not in outer_sink
        assert "y" in outer_sink and "y" not in inner_sink
        with phase("after"):
            pass  # back to no-op: nothing collected
        assert "after" not in outer_sink and "after" not in inner_sink

    def test_same_phase_name_accumulates(self):
        sink = {}
        with collect_phases(sink):
            for _ in range(3):
                with phase("a"):
                    time.sleep(0.001)
        assert len(sink) == 1 and sink["a"] >= 0.003


class TestPhaseReport:
    def _spans(self):
        spans = []
        for i in range(4):
            span = RequestSpan("m", start=0.0)
            span.add_phase("queue_wait", 0.010)
            span.add_phase("inference", 0.030)
            span.end = 0.041
            spans.append(span.to_dict())
        hit = RequestSpan("m", start=0.0)
        hit.add_phase("cache_lookup", 0.001)
        hit.cache_hit = True
        hit.end = 0.001
        spans.append(hit.to_dict())
        err = RequestSpan("m", start=0.0)
        err.end = 0.002
        err.error = "ServiceOverloaded"
        spans.append(err.to_dict())
        return spans

    def test_report_summarises_spans(self):
        report = render_phase_report(self._spans())
        assert "6 total, 5 served (1 cache hits, 1 errors)" in report
        assert "queue_wait" in report and "inference" in report
        assert "coverage" in report
        assert "p99" in report

    def test_report_handles_empty_and_all_error(self):
        assert "0 total" in render_phase_report([])
        err = RequestSpan("m", start=0.0)
        err.end = 1.0
        err.error = "X"
        report = render_phase_report([err.to_dict()])
        assert "0 served" in report
