"""Tests for the trained-posterior artifact cache and its wiring."""

import json

import numpy as np
import pytest

from repro.bnn.serialization import network_from_posterior
from repro.errors import ConfigurationError
from repro.experiments.artifacts import (
    ArtifactCache,
    TrainingSpec,
    active_cache,
    data_fingerprint,
    set_active_cache,
)
from repro.experiments.training import train_bnn


def _spec(**overrides) -> TrainingSpec:
    fields = dict(
        dataset="digits:64:16:0",
        model="bnn",
        topology=(12, 6, 3),
        epochs=2,
        batch_size=16,
        seed=0,
        prior=("scale-mixture", 0.5, 1.0, 0.0025),
        optimizer=("adam", 3e-3),
        initial_sigma=0.02,
        eval_samples=5,
    )
    fields.update(overrides)
    return TrainingSpec(**fields)


def _posterior(seed=0):
    rng = np.random.default_rng(seed)
    return [
        {
            "mu_weights": rng.standard_normal((4, 3)),
            "sigma_weights": np.abs(rng.standard_normal((4, 3))) + 0.01,
            "mu_bias": rng.standard_normal(3),
            "sigma_bias": np.abs(rng.standard_normal(3)) + 0.01,
        }
    ]


class TestTrainingSpec:
    def test_content_key_is_stable(self):
        assert _spec().content_key() == _spec().content_key()

    def test_every_field_changes_the_key(self):
        base = _spec().content_key()
        for overrides in (
            {"dataset": "digits:64:16:1"},
            {"topology": (12, 8, 3)},
            {"epochs": 3},
            {"batch_size": 8},
            {"seed": 1},
            {"prior": ("gaussian", 1.0)},
            {"optimizer": ("adam", 1e-3)},
            {"initial_sigma": 0.05},
            {"eval_samples": 30},
            {"extra": ("dropout", 0.5)},
        ):
            assert _spec(**overrides).content_key() != base, overrides

    def test_unserializable_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(extra=(object(),)).content_key()


class TestDataFingerprint:
    def test_sensitive_to_values_shape_and_absence(self):
        x = np.arange(12.0).reshape(3, 4)
        base = data_fingerprint(x, None)
        assert data_fingerprint(x.copy(), None) == base
        assert data_fingerprint(x + 1, None) != base
        assert data_fingerprint(x.reshape(4, 3), None) != base
        assert data_fingerprint(x, x) != base


class TestArtifactCache:
    def test_round_trip_is_bit_exact(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        posterior = _posterior()
        cache.store("k1", posterior, {"history": {"train_loss": [0.1, 0.2]}})
        loaded, payload = cache.load("k1")
        for original, restored in zip(posterior, loaded):
            for key in original:
                assert np.array_equal(original[key], restored[key])
        assert payload == {"history": {"train_loss": [0.1, 0.2]}}

    def test_get_or_train_counts_hits_and_misses(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def train():
            calls.append(1)
            return _posterior(), {"history": {}}

        spec = _spec()
        _, _, hit1 = cache.get_or_train(spec, train)
        _, _, hit2 = cache.get_or_train(spec, train)
        assert (hit1, hit2) == (False, True)
        assert len(calls) == 1
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_half_written_artifact_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("k2", _posterior(), {"ok": 1})
        # Simulate a crash between the two renames: payload missing.
        (tmp_path / "k2.json").unlink()
        assert cache.load("k2") is None

    def test_env_var_activation(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert active_cache() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = active_cache()
        assert cache is not None and cache.directory == tmp_path
        # Memoized per directory: counts accumulate across lookups.
        assert active_cache() is cache

    def test_explicit_cache_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        explicit = ArtifactCache(tmp_path / "explicit")
        previous = set_active_cache(explicit)
        try:
            assert active_cache() is explicit
        finally:
            set_active_cache(previous)


class TestTrainBnnCaching:
    @pytest.fixture()
    def data(self):
        rng = np.random.default_rng(0)
        return (
            rng.random((48, 10)),
            rng.integers(0, 3, 48),
            rng.random((12, 10)),
            rng.integers(0, 3, 12),
        )

    def test_hit_reproduces_cold_run_bit_for_bit(self, tmp_path, data):
        x_train, y_train, x_test, y_test = data
        previous = set_active_cache(ArtifactCache(tmp_path))
        try:
            cold, cold_history, cold_hit = train_bnn(
                (10, 6, 3), x_train, y_train, x_test, y_test, epochs=2, seed=1
            )
            warm, warm_history, warm_hit = train_bnn(
                (10, 6, 3), x_train, y_train, x_test, y_test, epochs=2, seed=1
            )
        finally:
            set_active_cache(previous)
        assert (cold_hit, warm_hit) == (False, True)
        for left, right in zip(cold.posterior_parameters(), warm.posterior_parameters()):
            for key in left:
                assert np.array_equal(left[key], right[key])
        assert cold_history == warm_history

    def test_different_data_misses(self, tmp_path, data):
        x_train, y_train, x_test, y_test = data
        previous = set_active_cache(ArtifactCache(tmp_path))
        try:
            _, _, first = train_bnn(
                (10, 6, 3), x_train, y_train, x_test, y_test, epochs=2, seed=1
            )
            _, _, second = train_bnn(
                (10, 6, 3), x_train + 1e-9, y_train, x_test, y_test, epochs=2, seed=1
            )
        finally:
            set_active_cache(previous)
        assert (first, second) == (False, False)

    def test_no_cache_returns_live_network(self, data):
        x_train, y_train, x_test, y_test = data
        assert active_cache() is None
        network, history, hit = train_bnn(
            (10, 6, 3), x_train, y_train, x_test, y_test, epochs=1, seed=1
        )
        assert hit is False
        assert history.epochs == 1
        assert network.predict(x_test[:2], n_samples=2).shape == (2,)


class TestNetworkFromPosteriorRoundTrip:
    def test_round_trip_preserves_posterior(self):
        from repro.bnn.bayesian import BayesianNetwork

        original = BayesianNetwork((8, 5, 3), seed=4)
        rebuilt = network_from_posterior(original.posterior_parameters(), seed=4)
        assert rebuilt.layer_sizes == original.layer_sizes
        for left, right in zip(
            original.posterior_parameters(), rebuilt.posterior_parameters()
        ):
            assert np.array_equal(left["mu_weights"], right["mu_weights"])
            assert np.array_equal(left["mu_bias"], right["mu_bias"])
            # sigma survives the softplus^-1 round trip to float precision
            np.testing.assert_allclose(
                left["sigma_weights"], right["sigma_weights"], rtol=1e-12
            )

    def test_empty_posterior_rejected(self):
        with pytest.raises(ConfigurationError):
            network_from_posterior([])
