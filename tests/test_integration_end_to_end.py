"""End-to-end integration: the full paper pipeline on a small workload.

Train a BNN on synthetic digits, export the posterior, run it through
(1) float software MC inference, (2) the quantized functional model with
both hardware GRNGs, and (3) the full accelerator with cycle/energy
accounting — asserting the accuracy relationships the paper's evaluation
rests on.
"""

import pytest

from repro.bnn import Adam, MonteCarloPredictor, Trainer, accuracy
from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.datasets import load_digits_split
from repro.experiments.training import make_bnn, train_pair
from repro.grng import BnnWallaceGrng, ParallelRlfGrng
from repro.hw.accelerator import VibnnAccelerator
from repro.hw.config import ArchitectureConfig


@pytest.fixture(scope="module")
def pipeline():
    x_train, y_train, x_test, y_test = load_digits_split(500, 200, seed=7)
    bnn = make_bnn((784, 48, 10), seed=7)
    Trainer(bnn, Adam(3e-3), batch_size=32, epochs=18, seed=7).fit(x_train, y_train)
    return bnn, x_test, y_test


class TestEndToEnd:
    def test_software_bnn_learns(self, pipeline):
        bnn, x_test, y_test = pipeline
        acc = accuracy(bnn.predict(x_test, n_samples=20), y_test)
        assert acc > 0.75

    def test_quantized_8bit_close_to_float(self, pipeline):
        bnn, x_test, y_test = pipeline
        float_acc = accuracy(bnn.predict(x_test, n_samples=20), y_test)
        quantized = QuantizedBayesianNetwork(
            bnn.posterior_parameters(), bit_length=8, seed=0
        )
        q_acc = accuracy(quantized.predict(x_test, n_samples=20), y_test)
        assert q_acc >= float_acc - 0.06

    @pytest.mark.parametrize("grng_kind", ["rlf", "bnnwallace"])
    def test_accelerator_with_both_grngs(self, pipeline, grng_kind):
        bnn, x_test, y_test = pipeline
        config = ArchitectureConfig(
            pe_sets=2, pes_per_set=8, pe_inputs=8, bit_length=8, grng_kind=grng_kind
        )
        accelerator = VibnnAccelerator(config, bnn.posterior_parameters(), seed=0)
        result = accelerator.infer(x_test, n_samples=20)
        acc = accuracy(result.predictions, y_test)
        float_acc = accuracy(bnn.predict(x_test, n_samples=20), y_test)
        assert acc >= float_acc - 0.08
        assert result.images_per_second > 0
        assert result.images_per_joule > 0

    def test_mc_predictor_with_hardware_grngs(self, pipeline):
        bnn, x_test, y_test = pipeline
        for grng in (
            ParallelRlfGrng(lanes=64, seed=0),
            BnnWallaceGrng(units=8, pool_size=64, seed=0),
        ):
            predictor = MonteCarloPredictor(bnn, grng=grng, n_samples=20)
            acc = accuracy(predictor.predict(x_test), y_test)
            assert acc > 0.7, type(grng).__name__

    def test_more_mc_samples_never_much_worse(self, pipeline):
        bnn, x_test, y_test = pipeline
        one = accuracy(bnn.predict(x_test, n_samples=1), y_test)
        many = accuracy(bnn.predict(x_test, n_samples=30), y_test)
        assert many >= one - 0.02  # averaging helps (eq. 6)


class TestTrainPairHelper:
    def test_histories_and_models_consistent(self):
        x_train, y_train, x_test, y_test = load_digits_split(200, 100, seed=9)
        pair = train_pair(
            (784, 24, 10), x_train, y_train, x_test, y_test, epochs=6, seed=9
        )
        assert pair.fnn_history.epochs == 6
        assert pair.bnn_history.epochs == 18  # 3x multiplier
        assert 0.0 <= pair.fnn_history.final_test_accuracy() <= 1.0
        assert 0.0 <= pair.bnn_history.final_test_accuracy() <= 1.0
