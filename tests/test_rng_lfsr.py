"""Unit tests for repro.rng.lfsr and repro.rng.taps."""

import pytest

from repro.errors import ConfigurationError
from repro.rng.lfsr import FibonacciLfsr, ShiftHeadLfsr, lfsr_period
from repro.rng.taps import WARD_MOLTENO_TAPS, taps_for_width


class TestTapTable:
    def test_known_entries(self):
        assert taps_for_width(8) == (8, 6, 5, 4)
        assert taps_for_width(255) == (255, 253, 252, 250)

    def test_unknown_width_raises(self):
        with pytest.raises(ConfigurationError, match="no tap entry"):
            taps_for_width(33)

    def test_all_entries_include_width(self):
        for width, taps in WARD_MOLTENO_TAPS.items():
            assert width in taps
            assert all(1 <= t <= width for t in taps)

    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16])
    def test_table_entries_are_maximal_length(self, width):
        assert lfsr_period(width) == 2**width - 1


class TestFibonacciLfsr:
    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            FibonacciLfsr(8, seed=0)

    def test_rejects_oversized_seed(self):
        with pytest.raises(ConfigurationError):
            FibonacciLfsr(8, seed=256)

    def test_rejects_bad_tap(self):
        with pytest.raises(ConfigurationError):
            FibonacciLfsr(8, taps=(9, 1))

    def test_never_reaches_zero(self):
        lfsr = FibonacciLfsr(8, seed=1)
        for _ in range(300):
            lfsr.step()
            assert lfsr.state != 0

    def test_step_word_packs_lsb_first(self):
        a = FibonacciLfsr(8, seed=17)
        b = FibonacciLfsr(8, seed=17)
        bits = [b.step() for _ in range(8)]
        word = a.step_word(8)
        assert word == sum(bit << i for i, bit in enumerate(bits))

    def test_output_bits_balanced_over_period(self):
        lfsr = FibonacciLfsr(8, seed=1)
        ones = sum(lfsr.step() for _ in range(255))
        assert ones == 128  # maximal sequence has 2**(n-1) ones

    def test_popcount_tracks_state(self):
        lfsr = FibonacciLfsr(16, seed=0xBEEF)
        for _ in range(50):
            lfsr.step()
            assert lfsr.popcount() == bin(lfsr.state).count("1")


class TestShiftHeadLfsr:
    def test_paper_8bit_example_is_maximal(self):
        # Fig. 3(a): 8-bit LFSR, head register 1, taps 4, 5, 6.
        lfsr = ShiftHeadLfsr(8, (4, 5, 6), seed=1)
        initial = lfsr.state
        period = 0
        for step in range(1, 2**8 + 1):
            lfsr.step()
            if lfsr.state == initial:
                period = step
                break
        assert period == 255

    def test_rejects_tap_at_or_beyond_width(self):
        with pytest.raises(ConfigurationError):
            ShiftHeadLfsr(8, (8,), seed=1)

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            ShiftHeadLfsr(8, (4, 5, 6), seed=0)

    def test_step_returns_head_bit(self):
        lfsr = ShiftHeadLfsr(8, (4, 5, 6), seed=0b1010_1010)
        head_before = lfsr.state & 1
        assert lfsr.step() == head_before

    def test_wraparound_preserves_head(self):
        # With no taps firing (head bit 0), a step is a pure rotation.
        lfsr = ShiftHeadLfsr(8, (4, 5, 6), seed=0b0000_0010)
        lfsr.step()
        assert lfsr.state == 0b0000_0001

    def test_popcount_changes_by_at_most_tap_count(self):
        lfsr = ShiftHeadLfsr(8, (4, 5, 6), seed=0b1100_0101)
        previous = lfsr.popcount()
        for _ in range(300):
            lfsr.step()
            current = lfsr.popcount()
            assert abs(current - previous) <= 3
            previous = current

    def test_255bit_runs(self):
        lfsr = ShiftHeadLfsr(255, (250, 252, 253), seed=(1 << 254) | 0xFFFF)
        counts = []
        for _ in range(100):
            lfsr.step()
            counts.append(lfsr.popcount())
        assert len(set(counts)) > 1  # state actually evolves


class TestLfsrPeriod:
    def test_limit_respected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            lfsr_period(16, limit=10)

    def test_non_maximal_taps_shorter_period(self):
        # A single tap at the output stage makes a short cycle, not a
        # maximal sequence.
        assert lfsr_period(4, taps=(4,)) < 15
