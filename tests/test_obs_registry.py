"""Unit tests for the unified metrics registry (counters, gauges, histograms)."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("requests_total")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_series_are_independent(self, registry):
        c = registry.counter("by_outcome", labels=("outcome",))
        c.inc(outcome="ok")
        c.inc(3, outcome="err")
        assert c.value(outcome="ok") == 1.0
        assert c.value(outcome="err") == 3.0
        assert c.total() == 4.0
        assert c.series() == {("ok",): 1.0, ("err",): 3.0}

    def test_cannot_decrease(self, registry):
        c = registry.counter("mono")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_label_schema_is_enforced(self, registry):
        c = registry.counter("lab", labels=("a",))
        with pytest.raises(ConfigurationError):
            c.inc(b=1)
        with pytest.raises(ConfigurationError):
            c.value()


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("depth")
        g.set(7)
        assert g.value() == 7.0
        g.inc(-2)
        assert g.value() == 5.0

    def test_function_backed_reads_live(self, registry):
        box = {"n": 1}
        g = registry.gauge("live", fn=lambda: box["n"])
        assert g.value() == 1.0
        box["n"] = 42
        assert g.value() == 42.0
        assert g.series() == {(): 42.0}

    def test_function_backed_rejects_writes_and_labels(self, registry):
        g = registry.gauge("ro", fn=lambda: 0)
        with pytest.raises(ConfigurationError):
            g.set(1)
        with pytest.raises(ConfigurationError):
            g.inc()
        with pytest.raises(ConfigurationError):
            registry.gauge("ro_lab", labels=("x",), fn=lambda: 0)


class TestHistogram:
    def test_cumulative_buckets_sum_count(self, registry):
        h = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == {0.01: 1, 0.1: 2, 1.0: 3}
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)

    def test_buckets_must_be_sorted_unique(self, registry):
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ConfigurationError):
            registry.histogram("dup", buckets=(1.0, 1.0))

    def test_labelled_series(self, registry):
        h = registry.histogram("by_model", labels=("model",), buckets=(1.0,))
        h.observe(0.5, model="a")
        h.observe(2.0, model="a")
        h.observe(0.1, model="b")
        assert h.series() == {("a",): 2.0, ("b",): 1.0}
        assert h.snapshot(model="a")["buckets"][1.0] == 1


class TestRegistry:
    def test_get_or_create_returns_same_object(self, registry):
        a = registry.counter("shared", labels=("x",))
        b = registry.counter("shared", labels=("x",))
        assert a is b

    def test_type_mismatch_rejected(self, registry):
        registry.counter("metric")
        with pytest.raises(ConfigurationError):
            registry.gauge("metric")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("metric", labels=("a",))
        with pytest.raises(ConfigurationError):
            registry.counter("metric", labels=("b",))

    def test_invalid_names_rejected(self, registry):
        for bad in ("", "has space", "9starts_digit", "dash-ed"):
            with pytest.raises(ConfigurationError):
                registry.counter(bad)

    def test_names_and_metrics_sorted(self, registry):
        registry.counter("b_total")
        registry.gauge("a_gauge")
        assert registry.names() == ["a_gauge", "b_total"]
        assert [m.name for m in registry.metrics()] == ["a_gauge", "b_total"]
        assert isinstance(registry.get("a_gauge"), Gauge)
        assert isinstance(registry.get("b_total"), Counter)
        assert registry.get("missing") is None


class TestConcurrentHammer:
    def test_totals_conserved_under_contention(self, registry):
        """N threads hammer one counter, one labelled counter, one gauge,
        one histogram; every per-thread contribution must be conserved."""
        threads_n, iters = 8, 500
        c = registry.counter("hammer_total")
        lab = registry.counter("hammer_by_thread", labels=("thread",))
        h = registry.histogram("hammer_hist", buckets=(0.5,))
        g = registry.gauge("hammer_gauge")
        start = threading.Barrier(threads_n)

        def work(tid: int) -> None:
            start.wait()
            for i in range(iters):
                c.inc()
                lab.inc(2, thread=tid)
                h.observe(i % 2)  # alternates the two buckets
                g.inc()

        workers = [
            threading.Thread(target=work, args=(t,)) for t in range(threads_n)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        total = threads_n * iters
        assert c.value() == total
        assert lab.total() == 2 * total
        assert all(
            lab.value(thread=t) == 2 * iters for t in range(threads_n)
        )
        snap = h.snapshot()
        assert snap["count"] == total
        assert snap["buckets"][0.5] == total // 2  # the `0` observations
        assert g.value() == total

    def test_concurrent_get_or_create_yields_one_metric(self, registry):
        results = []
        barrier = threading.Barrier(6)

        def create() -> None:
            barrier.wait()
            results.append(registry.counter("race_total", labels=("l",)))

        workers = [threading.Thread(target=create) for _ in range(6)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert all(m is results[0] for m in results)
        assert isinstance(results[0], Histogram) is False
