"""Unit tests for repro.rng.uniform."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng.uniform import LfsrUniformSource


class TestLfsrUniformSource:
    def test_range(self):
        src = LfsrUniformSource(lfsr_width=16, word_bits=8, seed=1)
        samples = src.generate(500)
        assert (samples >= 0).all() and (samples < 1).all()

    def test_resolution_grid(self):
        src = LfsrUniformSource(lfsr_width=16, word_bits=4, seed=1)
        samples = src.generate(100)
        assert np.allclose(samples * 16, np.round(samples * 16))

    def test_deterministic(self):
        a = LfsrUniformSource(seed=7).generate(50)
        b = LfsrUniformSource(seed=7).generate(50)
        assert (a == b).all()

    def test_roughly_uniform_mean(self):
        samples = LfsrUniformSource(lfsr_width=32, word_bits=16, seed=3).generate(4000)
        assert abs(samples.mean() - 0.5) < 0.02

    def test_rejects_bad_word_bits(self):
        with pytest.raises(ConfigurationError):
            LfsrUniformSource(word_bits=0)
        with pytest.raises(ConfigurationError):
            LfsrUniformSource(word_bits=54)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            LfsrUniformSource().generate(-1)
