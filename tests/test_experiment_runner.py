"""Tests for the sequential / process-parallel experiment runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import registry
from repro.experiments.runner import ExperimentOutcome, run_experiment, run_experiments


class _FakeExperiment:
    def __init__(self, fail=False, text="fake table\n"):
        self.fail = fail
        self.text = text

    def run(self):
        if self.fail:
            raise ValueError("synthetic failure")
        return {}

    def render(self, _result):
        return self.text


@pytest.fixture()
def fake_registry(monkeypatch):
    experiments = {
        "alpha": _FakeExperiment(text="alpha table\n"),
        "beta": _FakeExperiment(fail=True),
        "gamma": _FakeExperiment(text="gamma table\n"),
    }
    monkeypatch.setattr(registry, "EXPERIMENTS", experiments)
    return experiments


class TestSequentialRunner:
    def test_outcomes_in_order_with_failures_isolated(self, fake_registry):
        outcomes = run_experiments(["alpha", "beta", "gamma"])
        assert [o.name for o in outcomes] == ["alpha", "beta", "gamma"]
        assert outcomes[0].rendered == "alpha table\n" and not outcomes[0].failed
        assert outcomes[1].failed and "synthetic failure" in outcomes[1].error
        assert outcomes[2].rendered == "gamma table\n"

    def test_default_is_sorted_registry(self, fake_registry):
        outcomes = run_experiments()
        assert [o.name for o in outcomes] == ["alpha", "beta", "gamma"]

    def test_unknown_name_fails_fast(self, fake_registry):
        with pytest.raises(ConfigurationError):
            run_experiments(["nope"])

    def test_invalid_jobs_rejected(self, fake_registry):
        with pytest.raises(ConfigurationError):
            run_experiments(["alpha"], jobs=0)

    def test_on_outcome_streams(self, fake_registry):
        seen = []
        run_experiments(["alpha", "gamma"], on_outcome=lambda o: seen.append(o.name))
        assert seen == ["alpha", "gamma"]

    def test_run_experiment_records_seconds(self, fake_registry):
        outcome = run_experiment("alpha")
        assert isinstance(outcome, ExperimentOutcome)
        assert outcome.seconds >= 0.0

    def test_cache_env_restored_after_in_process_run(
        self, fake_registry, tmp_path, monkeypatch
    ):
        # An in-process (jobs=1) batch must not leak REPRO_CACHE_DIR into
        # later cache-less work in the same interpreter.
        import os

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        run_experiments(["alpha"], cache_dir=str(tmp_path))
        assert "REPRO_CACHE_DIR" not in os.environ
        monkeypatch.setenv("REPRO_CACHE_DIR", "/pre-existing")
        run_experiments(["alpha"], cache_dir=str(tmp_path))
        assert os.environ["REPRO_CACHE_DIR"] == "/pre-existing"


class TestParallelRunner:
    """Real experiments across a real process pool (no monkeypatching —
    subprocess workers import the genuine registry)."""

    def test_parallel_equals_sequential(self):
        names = ["table2", "table3"]
        sequential = run_experiments(names, jobs=1)
        parallel = run_experiments(names, jobs=2)
        for seq, par in zip(sequential, parallel):
            assert not seq.failed and not par.failed
            assert seq.rendered == par.rendered

    def test_cache_dir_reaches_workers(self, tmp_path):
        # The env-var plumbing is what lets pooled workers share one
        # artifact cache; the cheap experiments never touch it, so just
        # assert the run completes with a cache_dir set.
        outcomes = run_experiments(["table2"], jobs=2, cache_dir=str(tmp_path))
        assert not outcomes[0].failed
