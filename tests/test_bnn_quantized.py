"""Tests for the fixed-point BNN inference path (Fig. 18 substrate)."""

import numpy as np
import pytest

from repro.bnn import Adam, BayesianNetwork, Trainer, accuracy
from repro.bnn.quantized import (
    RLF_CODE_OFFSET,
    RLF_SIGMA_SHIFT,
    QuantizedBayesianNetwork,
    activation_format,
    epsilon_format,
    weight_format,
)
from repro.errors import ConfigurationError
from repro.grng import BnnWallaceGrng, NumpyGrng, ParallelRlfGrng


def _trained_network(seed=0):
    rng = np.random.default_rng(seed)
    n = 150
    labels = rng.integers(0, 3, n)
    x = rng.normal(0, 0.3, (n, 10)) + np.eye(3)[labels] @ rng.normal(
        0, 1.0, (3, 10)
    )
    network = BayesianNetwork((10, 12, 3), seed=seed, initial_sigma=0.02)
    Trainer(network, Adam(5e-3), batch_size=25, epochs=25, seed=0).fit(x, labels)
    return network, x, labels


class TestFormats:
    def test_constants(self):
        # sqrt(255/4) = 7.98 ~ 2**3: the hardware's shift standardisation.
        assert 2**RLF_SIGMA_SHIFT == 8
        assert RLF_CODE_OFFSET == 128

    def test_8bit_formats(self):
        assert weight_format(8).total_bits == 8
        assert weight_format(8).integer_bits == 0       # Q0.7: +-1 range
        assert activation_format(8).integer_bits == 3   # Q3.4: +-8 range
        assert activation_format(8).total_bits == 8
        assert epsilon_format(8).integer_bits == 2      # Q2.5: +-4 range

    def test_weight_resolution_finer_than_activation(self):
        assert weight_format(8).resolution < activation_format(8).resolution


class TestQuantizedNetwork:
    def test_empty_posterior_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantizedBayesianNetwork([], bit_length=8)

    def test_bit_length_validation(self):
        network = BayesianNetwork((4, 2), seed=0)
        with pytest.raises(ConfigurationError):
            QuantizedBayesianNetwork(network.posterior_parameters(), bit_length=3)

    def test_layer_sizes_derived(self):
        network = BayesianNetwork((7, 5, 2), seed=1)
        quantized = QuantizedBayesianNetwork(
            network.posterior_parameters(), bit_length=8
        )
        assert quantized.layer_sizes == (7, 5, 2)

    def test_8bit_accuracy_close_to_float(self):
        network, x, labels = _trained_network()
        float_acc = accuracy(network.predict(x, n_samples=10), labels)
        quantized = QuantizedBayesianNetwork(
            network.posterior_parameters(), bit_length=8, seed=0
        )
        q_acc = accuracy(quantized.predict(x, n_samples=10), labels)
        assert float_acc > 0.9
        assert q_acc > float_acc - 0.05  # Table 6: ~0.3% degradation at 8 bits

    def test_16bit_nearly_exact(self):
        network, x, labels = _trained_network(seed=1)
        float_acc = accuracy(network.predict(x, n_samples=10), labels)
        quantized = QuantizedBayesianNetwork(
            network.posterior_parameters(), bit_length=16, seed=0
        )
        q_acc = accuracy(quantized.predict(x, n_samples=10), labels)
        assert q_acc > float_acc - 0.03

    def test_low_bitwidth_degrades(self):
        # Fig. 18's cliff: 4-bit should be clearly worse than 8/16-bit.
        network, x, labels = _trained_network(seed=2)
        accuracies = {}
        for bits in (4, 8, 16):
            quantized = QuantizedBayesianNetwork(
                network.posterior_parameters(), bit_length=bits, seed=0
            )
            accuracies[bits] = accuracy(quantized.predict(x, n_samples=10), labels)
        assert accuracies[8] >= accuracies[4]
        assert accuracies[16] >= accuracies[4]

    def test_rlf_grng_integer_path(self):
        network, x, labels = _trained_network(seed=3)
        quantized = QuantizedBayesianNetwork(
            network.posterior_parameters(),
            bit_length=8,
            grng=ParallelRlfGrng(lanes=8, seed=0),
        )
        q_acc = accuracy(quantized.predict(x, n_samples=10), labels)
        assert q_acc > 0.8

    def test_wallace_grng_float_path(self):
        network, x, labels = _trained_network(seed=4)
        quantized = QuantizedBayesianNetwork(
            network.posterior_parameters(),
            bit_length=8,
            grng=BnnWallaceGrng(units=2, pool_size=64, seed=0),
        )
        q_acc = accuracy(quantized.predict(x, n_samples=10), labels)
        assert q_acc > 0.8

    def test_forward_codes_within_activation_format(self):
        network, x, _ = _trained_network(seed=5)
        quantized = QuantizedBayesianNetwork(
            network.posterior_parameters(), bit_length=8, grng=NumpyGrng(0)
        )
        codes = quantized.forward_sample_codes(
            quantized.act_fmt.quantize(x[:5])
        )
        assert codes.max() <= quantized.act_fmt.max_int
        assert codes.min() >= quantized.act_fmt.min_int

    def test_forward_codes_shape_validation(self):
        network, _, _ = _trained_network(seed=6)
        quantized = QuantizedBayesianNetwork(
            network.posterior_parameters(), bit_length=8
        )
        with pytest.raises(ConfigurationError):
            quantized.forward_sample_codes(np.zeros((1, 99), dtype=np.int64))

    def test_n_samples_validation(self):
        network, x, _ = _trained_network(seed=7)
        quantized = QuantizedBayesianNetwork(
            network.posterior_parameters(), bit_length=8
        )
        with pytest.raises(ConfigurationError):
            quantized.predict(x, n_samples=0)

    def test_deterministic_given_seed_and_grng(self):
        network, x, _ = _trained_network(seed=8)

        def run():
            quantized = QuantizedBayesianNetwork(
                network.posterior_parameters(),
                bit_length=8,
                grng=ParallelRlfGrng(lanes=8, seed=5),
            )
            return quantized.predict_proba(x[:10], n_samples=3)

        assert np.allclose(run(), run())

    def test_bias_preserved_at_accumulator_precision(self):
        # A tiny bias far below the activation resolution must still move
        # the output — it is added before the requantize shift.
        posterior = [
            {
                "mu_weights": np.zeros((2, 1)),
                "sigma_weights": np.zeros((2, 1)),
                "mu_bias": np.array([0.06]),  # < act resolution (1/16)
                "sigma_bias": np.zeros(1),
            }
        ]
        quantized = QuantizedBayesianNetwork(posterior, bit_length=8, grng=NumpyGrng(0))
        out = quantized.forward_sample_codes(np.zeros((1, 2), dtype=np.int64))
        assert out[0, 0] == 1  # rounds up to one activation LSB
