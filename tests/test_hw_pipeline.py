"""Tests for the two-tier pipeline occupancy model (§5.5)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import schedule_network
from repro.hw.pipeline import (
    PIPELINE_DEPTH,
    simulate_layer_pipeline,
)

CFG = ArchitectureConfig.paper()


def _layer(index=0, sizes=(784, 200, 200, 10)):
    return schedule_network(CFG, sizes).layers[index]


class TestPipelineTiming:
    def test_depth_matches_schedule_fill(self):
        # The analytic schedule's fill constant is exactly the pipeline
        # depth; the simulator must agree.
        layer = _layer(0)
        report = simulate_layer_pipeline(CFG, layer)
        assert PIPELINE_DEPTH == layer.fill_cycles
        assert report.fill_overhead_cycles == PIPELINE_DEPTH

    def test_cycles_equals_ops_plus_depth(self):
        for index in range(3):
            layer = _layer(index)
            report = simulate_layer_pipeline(CFG, layer)
            assert report.cycles == layer.compute_cycles + PIPELINE_DEPTH

    def test_all_operations_retire(self):
        layer = _layer(1)
        report = simulate_layer_pipeline(CFG, layer)
        assert report.operations == layer.compute_cycles
        assert report.stage_busy_cycles["pe_bias_relu"] == layer.compute_cycles

    def test_occupancy_near_one_for_long_layers(self):
        report = simulate_layer_pipeline(CFG, _layer(0))  # 196 ops
        assert report.occupancy > 0.95

    def test_occupancy_lower_for_short_layers(self):
        long_report = simulate_layer_pipeline(CFG, _layer(0))
        short_report = simulate_layer_pipeline(CFG, _layer(2))  # 25 ops
        assert short_report.occupancy < long_report.occupancy


class TestStalls:
    def test_stalls_add_cycles(self):
        layer = _layer(0)
        clean = simulate_layer_pipeline(CFG, layer)
        stalled = simulate_layer_pipeline(CFG, layer, stall_every=10)
        assert stalled.cycles > clean.cycles
        assert stalled.stall_cycles > 0
        # One bubble per 10 issues: overhead ~ ops/10.
        assert stalled.cycles == pytest.approx(
            clean.cycles + layer.compute_cycles // 10, abs=2
        )

    def test_stall_free_default(self):
        report = simulate_layer_pipeline(CFG, _layer(1))
        assert report.stall_cycles == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_layer_pipeline(CFG, _layer(0), stall_every=-1)
