"""Tests for the two-tier pipeline occupancy model (§5.5)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import schedule_network
from repro.hw.pipeline import (
    PIPELINE_DEPTH,
    closed_form_layer_pipeline,
    simulate_layer_pipeline,
)

CFG = ArchitectureConfig.paper()


def _layer(index=0, sizes=(784, 200, 200, 10)):
    return schedule_network(CFG, sizes).layers[index]


class TestPipelineTiming:
    def test_depth_matches_schedule_fill(self):
        # The analytic schedule's fill constant is exactly the pipeline
        # depth; the simulator must agree.
        layer = _layer(0)
        report = simulate_layer_pipeline(CFG, layer)
        assert PIPELINE_DEPTH == layer.fill_cycles
        assert report.fill_overhead_cycles == PIPELINE_DEPTH

    def test_cycles_equals_ops_plus_depth(self):
        for index in range(3):
            layer = _layer(index)
            report = simulate_layer_pipeline(CFG, layer)
            assert report.cycles == layer.compute_cycles + PIPELINE_DEPTH

    def test_all_operations_retire(self):
        layer = _layer(1)
        report = simulate_layer_pipeline(CFG, layer)
        assert report.operations == layer.compute_cycles
        assert report.stage_busy_cycles["pe_bias_relu"] == layer.compute_cycles

    def test_occupancy_near_one_for_long_layers(self):
        report = simulate_layer_pipeline(CFG, _layer(0))  # 196 ops
        assert report.occupancy > 0.95

    def test_occupancy_lower_for_short_layers(self):
        long_report = simulate_layer_pipeline(CFG, _layer(0))
        short_report = simulate_layer_pipeline(CFG, _layer(2))  # 25 ops
        assert short_report.occupancy < long_report.occupancy


class TestStalls:
    def test_stalls_add_cycles(self):
        layer = _layer(0)
        clean = simulate_layer_pipeline(CFG, layer)
        stalled = simulate_layer_pipeline(CFG, layer, stall_every=10)
        assert stalled.cycles > clean.cycles
        assert stalled.stall_cycles > 0
        # One bubble per 10 issues: overhead ~ ops/10.
        assert stalled.cycles == pytest.approx(
            clean.cycles + layer.compute_cycles // 10, abs=2
        )

    def test_stall_free_default(self):
        report = simulate_layer_pipeline(CFG, _layer(1))
        assert report.stall_cycles == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_layer_pipeline(CFG, _layer(0), stall_every=-1)


SMALL_CFG = ArchitectureConfig(pe_sets=2, pes_per_set=4, pe_inputs=4)


class TestClosedForm:
    """The fill + stall algebra must equal the cycle loop exactly."""

    @pytest.mark.parametrize("stall_every", [0, 1, 2, 7, 64])
    def test_equals_loop_across_layers(self, stall_every):
        for config, sizes in [
            (CFG, (784, 200, 200, 10)),
            (SMALL_CFG, (784, 100, 10)),
            (SMALL_CFG, (130, 40, 12)),
        ]:
            for layer in schedule_network(config, sizes).layers:
                loop = simulate_layer_pipeline(config, layer, stall_every=stall_every)
                closed = closed_form_layer_pipeline(
                    config, layer, stall_every=stall_every
                )
                assert closed == loop

    def test_single_operation_layer(self):
        config = ArchitectureConfig(pe_sets=1, pes_per_set=4, pe_inputs=4)
        layer = schedule_network(config, (4, 4, 4)).layers[0]
        assert layer.compute_cycles == 1
        for stall_every in (0, 1, 5):
            assert closed_form_layer_pipeline(
                config, layer, stall_every=stall_every
            ) == simulate_layer_pipeline(config, layer, stall_every=stall_every)

    def test_stall_boundary_counts(self):
        # Exactly ops == stall_every issues -> no bubble ever inserted.
        layer = _layer(2)  # 25 operations
        report = closed_form_layer_pipeline(CFG, layer, stall_every=25)
        assert report.stall_cycles == 0
        report = closed_form_layer_pipeline(CFG, layer, stall_every=24)
        assert report.stall_cycles == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            closed_form_layer_pipeline(CFG, _layer(0), stall_every=-1)
