"""Process-mode serving: equivalence, crash isolation, determinism, leaks.

The tentpole promises of the process tier, end to end through the real
``spawn`` seam:

* ``worker_mode="process"`` is bit-for-bit the synchronous/threaded
  engine on identical seeds (float and quantized models alike);
* a SIGKILLed or wedged worker resolves every held ticket with a typed
  :class:`~repro.errors.WorkerCrashed`, the supervisor restarts the slot
  with a bumped incarnation, and no request ever hangs;
* two identical runs under the same :class:`FaultPlan` produce identical
  outputs, identical failure sets, and identical restart counts;
* no shared-memory segment survives ``stop()`` — including after
  abnormal worker death mid-batch.

Spawn startup costs ~1s per service on this box, so each test spins up
the fewest services that still pin its invariant.
"""

import pathlib

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianNetwork
from repro.errors import (
    ConfigurationError,
    ServingError,
    UnknownModelError,
    WorkerCrashed,
)
from repro.serving import (
    BnnService,
    FaultEvent,
    FaultPlan,
    ModelRegistry,
    ResilienceConfig,
    ServiceConfig,
)
from repro.serving import shm
from repro.serving.procpool import (
    _decode_error,
    _encode_error,
    entry_from_meta,
    export_entry_meta,
)

IN, OUT = 12, 4
_SHM_PREFIXES = ("req", "resp", "ctrl-", "model-", "psm_")


@pytest.fixture()
def network():
    return BayesianNetwork((IN, 8, OUT), seed=0, initial_sigma=0.04)


@pytest.fixture()
def images():
    return np.random.default_rng(7).random((16, IN))


def make_service(network, *, workers, worker_mode="process", **overrides):
    config = dict(
        workers=workers,
        worker_mode=worker_mode,
        max_batch=8,
        max_wait_ms=1.0,
        cache_capacity=0,
    )
    config.update(overrides)
    service = BnnService(ModelRegistry(), ServiceConfig(**config))
    service.register_network(
        "m", network, n_samples=5, seed=3, share_weight_stacks=True
    )
    return service


def os_shm_entries():
    base = pathlib.Path("/dev/shm")
    if not base.is_dir():  # pragma: no cover - non-Linux fallback
        return set()
    return {p.name for p in base.iterdir() if p.name.startswith(_SHM_PREFIXES)}


# ----------------------------------------------------------------------
# Transport codecs (no processes involved)
# ----------------------------------------------------------------------
class TestTransportCodecs:
    def test_error_codec_round_trips_typed_errors(self):
        wire = _encode_error(UnknownModelError("no model 'x'"))
        decoded = _decode_error(wire)
        assert isinstance(decoded, UnknownModelError)
        assert "no model 'x'" in str(decoded)

    def test_unknown_error_types_degrade_to_serving_error(self):
        decoded = _decode_error(b"TotallyMadeUpError: boom")
        assert type(decoded) is ServingError
        assert "boom" in str(decoded)

    def test_float_entry_meta_round_trip_is_bit_exact(self, network):
        registry = ModelRegistry()
        entry = registry.register_network("m", network, n_samples=5, seed=3)
        payload, segments = export_entry_meta(entry, model_id=1)
        try:
            import json

            rebuilt = entry_from_meta(json.loads(payload.decode("utf-8")))
            assert rebuilt.version == entry.version
            assert rebuilt.kind == "float"
            for ours, theirs in zip(network.layers, rebuilt.network.layers):
                for key in ("mu_weights", "rho_weights", "mu_bias", "rho_bias"):
                    assert np.array_equal(getattr(ours, key), getattr(theirs, key))
        finally:
            for segment in segments:
                segment.unlink()

    def test_quantized_entry_meta_round_trip_is_verbatim(self, network):
        registry = ModelRegistry()
        entry = registry.register_quantized(
            "hw", network.posterior_parameters(), bit_length=8, n_samples=4
        )
        payload, segments = export_entry_meta(entry, model_id=2)
        try:
            import json

            rebuilt = entry_from_meta(json.loads(payload.decode("utf-8")))
            assert rebuilt.kind == "quantized"
            assert rebuilt.bit_length == 8
            for ours, theirs in zip(entry.posterior, rebuilt.posterior):
                assert set(ours) == set(theirs)
                for key in ours:
                    assert np.array_equal(ours[key], theirs[key])
        finally:
            for segment in segments:
                segment.unlink()


# ----------------------------------------------------------------------
# Equivalence with the in-process engine
# ----------------------------------------------------------------------
class TestProcessEquivalence:
    def test_bit_for_bit_matches_sync_mode_across_batches(self, network, images):
        with make_service(network, workers=0, worker_mode="thread") as sync:
            ref_first = sync.predict_many("m", images[:8])
            ref_second = sync.predict_many("m", images[8:])
        with make_service(network, workers=1) as proc:
            first = proc.predict_many("m", images[:8])
            second = proc.predict_many("m", images[8:])
        assert np.array_equal(first, ref_first)
        assert np.array_equal(second, ref_second)

    def test_quantized_model_matches_sync_mode(self, network, images):
        posterior = network.posterior_parameters()

        def serve(workers, worker_mode):
            service = BnnService(
                ModelRegistry(),
                ServiceConfig(
                    workers=workers,
                    worker_mode=worker_mode,
                    max_batch=8,
                    cache_capacity=0,
                ),
            )
            service.register_quantized(
                "hw",
                posterior,
                bit_length=8,
                n_samples=4,
                seed=11,
                share_weight_stacks=True,
            )
            with service:
                return service.predict_many("hw", images[:8])

        assert np.array_equal(serve(1, "process"), serve(0, "thread"))

    def test_reregistration_propagates_to_process_workers(self, images):
        net_a = BayesianNetwork((IN, 8, OUT), seed=0, initial_sigma=0.04)
        net_b = BayesianNetwork((IN, 8, OUT), seed=9, initial_sigma=0.06)

        def serve(workers, worker_mode):
            service = make_service(net_a, workers=workers, worker_mode=worker_mode)
            with service:
                before = service.predict_many("m", images[:8])
                service.register_network(
                    "m", net_b, n_samples=5, seed=3, share_weight_stacks=True
                )
                after = service.predict_many("m", images[:8])
            return before, after

        proc_before, proc_after = serve(1, "process")
        sync_before, sync_after = serve(0, "thread")
        assert np.array_equal(proc_before, sync_before)
        assert np.array_equal(proc_after, sync_after)
        assert not np.array_equal(proc_before, proc_after)


# ----------------------------------------------------------------------
# Lifecycle: context manager, idempotent stop, config validation
# ----------------------------------------------------------------------
class TestLifecycle:
    @pytest.mark.parametrize(
        ("workers", "worker_mode"), [(2, "thread"), (1, "process")]
    )
    def test_context_manager_and_idempotent_stop(self, network, images, workers, worker_mode):
        before = os_shm_entries()
        with make_service(network, workers=workers, worker_mode=worker_mode) as service:
            assert service.predict_many("m", images[:4]).shape == (4, OUT)
        service.stop()
        service.stop()
        service.close()
        with pytest.raises(ConfigurationError, match="closed"):
            service.submit("m", images[0])
        assert shm.live_segments() == []
        assert os_shm_entries() - before == set()

    def test_worker_mode_is_validated(self):
        with pytest.raises(ConfigurationError, match="worker_mode"):
            ServiceConfig(worker_mode="fibers")
        with pytest.raises(ConfigurationError, match="workers"):
            ServiceConfig(worker_mode="process", workers=0)
        with pytest.raises(ConfigurationError, match="ring_slots"):
            ServiceConfig(worker_mode="process", workers=1, ring_slots=1)

    def test_stats_name_the_worker_mode(self, network, images):
        with make_service(network, workers=1) as service:
            service.predict_many("m", images[:8])
            snap = service.stats()
            assert snap["worker_mode"] == "process"
            assert snap["process_workers_live"] == 1
            assert snap["process_batches_done"] >= 1
            assert snap["process_rows_done"] == 8
            assert "process pool" in service.metrics.render()

    def test_undersized_ring_fails_tickets_typed_not_hung(self, network, images):
        # 64-byte slots cannot carry even the LOAD_MODEL metadata, so the
        # dispatch must surface ConfigurationError on the ticket — sizing
        # bugs are the operator's to fix, not a crash loop.
        with make_service(network, workers=1, ring_slot_bytes=64) as service:
            ticket = service.submit("m", images[0])
            service.flush()
            with pytest.raises(ConfigurationError, match="slot capacity"):
                ticket.result(timeout=30.0)


# ----------------------------------------------------------------------
# Chaos: crash isolation, failover, determinism, leak sweep
# ----------------------------------------------------------------------
def chaos_run(network, images, plan, *, workers=1, collect_stats=False):
    """One full process-mode run under ``plan``; every ticket resolved."""
    service = BnnService(
        ModelRegistry(),
        ServiceConfig(
            workers=workers,
            worker_mode="process",
            max_batch=4,
            max_wait_ms=1.0,
            cache_capacity=0,
            resilience=ResilienceConfig(batch_timeout_s=2.0, max_restarts=8),
        ),
        fault_plan=plan,
    )
    service.register_network(
        "m", network, n_samples=5, seed=3, share_weight_stacks=True
    )
    outcomes = []
    with service:
        tickets = [service.submit("m", row) for row in images]
        service.flush()
        for ticket in tickets:
            try:
                outcomes.append(ticket.result(timeout=60.0))
            except WorkerCrashed as error:
                outcomes.append(("crashed", type(error).__name__))
        restarts = service._pool.restarts
        incarnations = service._pool.incarnations()
        stats = service.stats() if collect_stats else None
    return outcomes, restarts, incarnations, stats


class TestChaos:
    def test_sigkill_failover_resolves_every_ticket(self, network, images):
        before = os_shm_entries()
        plan = FaultPlan(
            events=(
                FaultEvent(worker=0, at_batch=2, action="kill"),
                FaultEvent(worker=0, at_batch=4, action="exit", incarnation=1),
            )
        )
        outcomes, restarts, incarnations, stats = chaos_run(
            network, images, plan, collect_stats=True
        )
        crashed = [o for o in outcomes if isinstance(o, tuple)]
        served = [o for o in outcomes if not isinstance(o, tuple)]
        assert len(crashed) + len(served) == len(images)  # nothing hung
        assert len(crashed) == 8  # exactly the two killed batches
        assert restarts >= 2
        assert incarnations == [2]
        assert stats["requests_served"] + stats["requests_failed"] == len(images)
        assert stats["worker_restarts"] == restarts
        # Post-restart serving is still the deterministic engine.
        assert all(row.shape == (OUT,) for row in served)
        # Abnormal deaths mid-batch leaked nothing.
        assert shm.live_segments() == []
        assert os_shm_entries() - before == set()

    def test_stall_is_failed_over_by_the_supervisor(self, network, images):
        plan = FaultPlan(
            events=(FaultEvent(worker=0, at_batch=2, action="stall", seconds=30.0),)
        )
        outcomes, restarts, _, _ = chaos_run(network, images[:12], plan)
        crashed = [o for o in outcomes if isinstance(o, tuple)]
        assert len(crashed) == 4  # the stalled batch, and only it
        assert restarts == 1

    def test_identical_runs_are_bit_identical_including_failures(
        self, network, images
    ):
        plan = FaultPlan(
            events=(FaultEvent(worker=0, at_batch=2, action="kill"),)
        )
        first = chaos_run(network, images, plan)
        second = chaos_run(network, images, plan)
        for ours, theirs in zip(first[0], second[0]):
            if isinstance(ours, tuple):
                assert ours == theirs
            else:
                assert np.array_equal(ours, theirs)
        assert first[1] == second[1]  # restart counts
        assert first[2] == second[2]  # incarnations
