"""Prometheus text exposition, its parser (round-trip), and JSON export."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    parse_prometheus,
    registry_to_json,
    render_prometheus,
    write_metrics_json,
)


@pytest.fixture()
def populated():
    registry = MetricsRegistry()
    c = registry.counter("req_total", "Requests", labels=("outcome",))
    c.inc(3, outcome="ok")
    c.inc(outcome="err")
    registry.gauge("depth", "Queue depth").set(5)
    h = registry.histogram("lat_seconds", "Latency", buckets=(0.01, 0.1))
    h.observe(0.005)
    h.observe(0.05)
    h.observe(2.0)
    return registry


class TestRenderPrometheus:
    def test_help_type_and_samples(self, populated):
        text = render_prometheus(populated)
        assert "# HELP req_total Requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{outcome="ok"} 3' in text
        assert 'req_total{outcome="err"} 1' in text
        assert "# TYPE depth gauge" in text
        assert "depth 5" in text

    def test_histogram_exposition(self, populated):
        text = render_prometheus(populated)
        assert 'lat_seconds_bucket{le="0.01"} 1' in text
        assert 'lat_seconds_bucket{le="0.1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 2.055" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        c = registry.counter("esc_total", labels=("path",))
        c.inc(path='a"b\\c\nd')
        text = render_prometheus(registry)
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in text
        # ... and the parser undoes the escaping exactly.
        (sample,) = parse_prometheus(text)
        assert sample["labels"] == {"path": 'a"b\\c\nd'}


class TestParsePrometheus:
    def test_round_trip_every_sample(self, populated):
        text = render_prometheus(populated)
        samples = parse_prometheus(text)
        by_key = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in samples
        }
        assert by_key[("req_total", (("outcome", "ok"),))] == 3
        assert by_key[("depth", ())] == 5
        assert by_key[("lat_seconds_bucket", (("le", "+Inf"),))] == 3
        assert by_key[("lat_seconds_count", ())] == 3
        # Re-rendering after a parse loses nothing: sample count is stable.
        assert len(samples) == sum(
            1 for line in text.splitlines() if line and not line.startswith("#")
        )

    def test_inf_values(self):
        samples = parse_prometheus("up +Inf\ndown -Inf\n")
        assert samples[0]["value"] == math.inf
        assert samples[1]["value"] == -math.inf

    @pytest.mark.parametrize(
        "line",
        [
            "# BOGUS comment here",
            'metric{unclosed="1' + "\n",
            "metric{a=1} 2",
            "nameonly",
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises((ConfigurationError, ValueError, IndexError)):
            parse_prometheus(line)


class TestJsonExport:
    def test_registry_to_json_shape(self, populated):
        doc = registry_to_json(populated)
        assert doc["req_total"]["type"] == "counter"
        assert doc["req_total"]["labels"] == ["outcome"]
        series = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in doc["req_total"]["series"]
        }
        assert series[(("outcome", "ok"),)] == 3
        hist = doc["lat_seconds"]["series"][0]
        assert hist["count"] == 3
        assert hist["buckets"] == {"0.01": 1, "0.1": 2}

    def test_write_metrics_json(self, populated, tmp_path):
        path = tmp_path / "nested" / "metrics.json"
        write_metrics_json(populated, path, extra={"run": "t1"})
        body = json.loads(path.read_text())
        assert body["run"] == "t1"
        assert body["metrics"]["depth"]["series"][0]["value"] == 5
