"""Serving the fixed-point hardware model through the registry/service.

The new scenario: the serving layer fronts the accelerator's functional
model (:class:`~repro.bnn.quantized.QuantizedBayesianNetwork`) — batcher,
cache, metrics and load generators unchanged.  The load-bearing checks:

* a served quantized model is bit-for-bit the direct fixed-point model
  run with the worker's reconstructed stream;
* kind/versioning semantics (reload keeps the quantized kind, eviction
  retires versions) hold for quantized entries like float ones.
"""

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.bnn.serialization import save_posterior
from repro.errors import ConfigurationError, UnknownModelError
from repro.grng import make_grng
from repro.grng.stream import GrngStream
from repro.serving.registry import (
    ModelEntry,
    ModelRegistry,
    QuantizedServingPredictor,
    worker_stream_seed,
)
from repro.serving.service import BnnService, ServiceConfig


def _posterior(seed=0, sizes=(10, 8, 3)):
    return BayesianNetwork(sizes, seed=seed, initial_sigma=0.05).posterior_parameters()


X = np.random.default_rng(1).random((9, 10))


def _direct(posterior, entry, x, worker=0):
    """The fixed-point prediction the serving stack must reproduce."""
    seed = worker_stream_seed(entry.seed, entry.version, worker)
    network = QuantizedBayesianNetwork(
        posterior,
        bit_length=entry.bit_length,
        grng=GrngStream(make_grng(entry.grng_name, seed=seed)),
        seed=seed,
    )
    return network.predict_proba(x, n_samples=entry.n_samples)


class TestRegistryQuantized:
    def test_register_quantized_entry_shape(self):
        registry = ModelRegistry()
        entry = registry.register_quantized("hw", _posterior(), bit_length=8, grng="rlf")
        assert entry.kind == "quantized"
        assert entry.in_features == 10 and entry.out_features == 3
        assert entry.network is None
        assert registry.get("hw") is entry

    def test_build_predictor_returns_quantized_adapter(self):
        entry = ModelRegistry().register_quantized("hw", _posterior(), n_samples=4)
        predictor = entry.build_predictor(0)
        assert isinstance(predictor, QuantizedServingPredictor)
        probs = predictor.predict_proba_batched(X)
        assert probs.shape == (X.shape[0], 3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_quantized_entry_requires_posterior(self):
        with pytest.raises(ConfigurationError, match="posterior"):
            ModelEntry("bad", None, kind="quantized")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ModelEntry("bad", None, kind="analog")

    def test_file_round_trip_and_reload_keeps_kind(self, tmp_path):
        path = tmp_path / "posterior.npz"
        save_posterior(path, _posterior(seed=3))
        registry = ModelRegistry()
        entry = registry.register_quantized_file(
            "hw", path, bit_length=8, n_samples=5, grng="rlf", seed=2
        )
        assert entry.kind == "quantized" and entry.version == 1
        reloaded = registry.reload("hw")
        assert reloaded.kind == "quantized"
        assert reloaded.version == 2
        assert reloaded.bit_length == 8
        assert reloaded.grng_name == "rlf"

    def test_eviction_retires_quantized_versions(self):
        registry = ModelRegistry()
        first = registry.register_quantized("hw", _posterior())
        registry.evict("hw")
        with pytest.raises(UnknownModelError):
            registry.get("hw")
        again = registry.register_quantized("hw", _posterior())
        assert again.version == first.version + 1


class TestServiceQuantized:
    def _service(self, **config_overrides):
        defaults = dict(workers=0, cache_capacity=0, max_batch=16)
        defaults.update(config_overrides)
        return BnnService(config=ServiceConfig(**defaults))

    def test_served_equals_direct_bit_for_bit(self):
        posterior = _posterior(seed=4)
        with self._service() as service:
            entry = service.register_quantized(
                "hw", posterior, bit_length=8, n_samples=6, grng="rlf", seed=11
            )
            served = service.predict_many("hw", X)
        assert np.array_equal(served, _direct(posterior, entry, X))

    def test_float_grng_quantized_model_served(self):
        # A float generator (BNNWallace) behind the quantized datapath:
        # the capability probe routes it through the Q2.(B-3) path.
        posterior = _posterior(seed=5)
        with self._service() as service:
            entry = service.register_quantized(
                "hw", posterior, bit_length=8, n_samples=3, grng="bnnwallace", seed=1
            )
            served = service.predict_many("hw", X)
        assert np.array_equal(served, _direct(posterior, entry, X))

    def test_quantized_and_float_models_coexist(self):
        posterior = _posterior(seed=6)
        network = BayesianNetwork((10, 8, 3), seed=6, initial_sigma=0.05)
        with self._service() as service:
            service.register_network("sw", network, n_samples=3, grng="numpy")
            service.register_quantized("hw", posterior, n_samples=3, grng="rlf")
            sw = service.predict_many("sw", X)
            hw = service.predict_many("hw", X)
        assert sw.shape == hw.shape == (X.shape[0], 3)
        assert not np.array_equal(sw, hw)  # different datapaths

    def test_cache_and_version_invalidate_on_reregister(self):
        posterior = _posterior(seed=7)
        with self._service(cache_capacity=64) as service:
            service.register_quantized("hw", posterior, n_samples=2, grng="rlf")
            first = service.predict_proba("hw", X[0])
            cached = service.predict_proba("hw", X[0])
            assert np.array_equal(first, cached)  # cache hit: identical row
            entry = service.register_quantized("hw", posterior, n_samples=2, grng="rlf")
            assert entry.version == 2  # version bump invalidates old rows
            fresh = service.predict_proba("hw", X[0])
            assert fresh.shape == first.shape

    def test_shape_validation_uses_posterior_features(self):
        with self._service() as service:
            service.register_quantized("hw", _posterior())
            with pytest.raises(ConfigurationError, match="expects a flat"):
                service.submit("hw", np.zeros(4))

    def test_quantized_model_under_threaded_workers(self):
        posterior = _posterior(seed=8)
        with self._service(workers=2) as service:
            service.register_quantized("hw", posterior, n_samples=2, grng="rlf")
            probs = service.predict_many("hw", X)
        assert probs.shape == (X.shape[0], 3)
        assert np.allclose(probs.sum(axis=1), 1.0)
