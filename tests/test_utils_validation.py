"""Unit tests for repro.utils.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1e-9)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", bad)


class TestCheckInRange:
    def test_inclusive_ends(self):
        check_in_range("x", 0, 0, 1)
        check_in_range("x", 1, 0, 1)

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 1.01, 0, 1)


class TestCheckProbability:
    def test_accepts_interior(self):
        check_probability("p", 0.5)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_boundary_and_outside(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability("p", bad)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 4, 1024])
    def test_accepts(self, good):
        check_power_of_two("n", good)

    @pytest.mark.parametrize("bad", [0, 3, 6, -4])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_power_of_two("n", bad)
