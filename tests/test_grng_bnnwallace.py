"""Tests for the BNNWallace-GRNG and Wallace-NSS ablation (§4.2.2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grng.bnnwallace import BnnWallaceGrng, WallaceNssGrng
from repro.grng.quality import runs_test, stability_error


class TestBnnWallaceConstruction:
    def test_defaults_match_paper(self):
        grng = BnnWallaceGrng()
        assert grng.units == 8
        assert grng.pool_size == 256
        assert grng.total_pool_size == 2048

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BnnWallaceGrng(units=0)
        with pytest.raises(ConfigurationError):
            BnnWallaceGrng(pool_size=10)


class TestSharingAndShifting:
    def test_step_output_size(self):
        grng = BnnWallaceGrng(units=8, pool_size=64, seed=0)
        assert grng.step().shape == (32,)

    def test_writeback_shifted_by_one_number(self):
        grng = BnnWallaceGrng(units=4, pool_size=16, seed=0)
        slots = grng._slots()
        before = grng.pools.copy()
        generated = grng.step()
        # The flattened output stream, rotated by one number, is what lands
        # back in the pools — each unit keeps 3 of its own outputs and
        # receives 1 from its neighbour.
        expected = np.roll(generated, 1).reshape(4, 4)
        assert np.allclose(grng.pools[:, slots], expected)
        # Untouched slots unchanged.
        untouched = np.setdiff1d(np.arange(16), slots)
        assert np.allclose(grng.pools[:, untouched], before[:, untouched])

    def test_total_energy_preserved_by_cycle(self):
        # Each unit applies an orthogonal map and the shift only permutes
        # rows, so the total pool energy is invariant.
        grng = BnnWallaceGrng(units=8, pool_size=64, seed=1)
        energy_before = float((grng.pools**2).sum())
        for _ in range(200):
            grng.step()
        assert float((grng.pools**2).sum()) == pytest.approx(energy_before, rel=1e-9)

    def test_phase_advances_every_cycle(self):
        # The per-cycle phase is what decorrelates consecutive pool passes
        # (see the class docstring).
        grng = BnnWallaceGrng(units=2, pool_size=16, seed=2)
        for expected_phase in range(1, 6):
            grng.step()
            assert grng._phase == expected_phase

    def test_numbers_flow_through_all_units(self):
        # Tag unit 0's pool with huge values; after enough cycles every
        # unit's pool variance must be contaminated (values propagated).
        grng = BnnWallaceGrng(units=4, pool_size=16, seed=3)
        grng.pools[0, :] = 1000.0
        for _ in range(64):
            grng.step()
        for unit in range(4):
            assert np.abs(grng.pools[unit]).max() > 10.0


class TestBnnWallaceQuality:
    def test_moments(self):
        samples = BnnWallaceGrng(units=8, pool_size=256, seed=4).generate(50_000)
        result = stability_error(samples)
        assert result.mu_error < 0.05
        assert result.sigma_error < 0.05

    def test_passes_runs_test_typically(self):
        passes = 0
        for seed in range(5):
            samples = BnnWallaceGrng(units=8, pool_size=256, seed=seed).generate(20_000)
            if runs_test(samples).passed():
                passes += 1
        assert passes >= 4

    def test_generate_exact_count(self):
        grng = BnnWallaceGrng(units=8, pool_size=64, seed=5)
        assert grng.generate(77).shape == (77,)


class TestWallaceNss:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WallaceNssGrng(pool_size=6)

    def test_outputs_are_eventually_periodic(self):
        # A^4 = I, so each fixed slot group orbits with period 4: after
        # 4 full pool passes the stream repeats exactly.
        grng = WallaceNssGrng(pool_size=16, seed=0)
        stream = grng.generate(16 * 8)
        period = 16 * 4
        assert np.allclose(stream[:period], stream[period : 2 * period])

    def test_fails_runs_test_more_often_than_bnnwallace(self):
        # Fig. 15: Wallace-NSS fails randomness tests; the proposed design
        # passes.  Compare pass counts over several seeds.
        nss_passes = sum(
            runs_test(WallaceNssGrng(pool_size=256, seed=s).generate(50_000)).passed()
            for s in range(6)
        )
        good_passes = sum(
            runs_test(BnnWallaceGrng(units=8, pool_size=256, seed=s).generate(50_000)).passed()
            for s in range(6)
        )
        assert nss_passes < good_passes

    def test_moments_still_fine(self):
        # NSS fails on *randomness*, not on marginal moments: the orbit is
        # norm-preserving, so mu/sigma stay near (0, 1).
        samples = WallaceNssGrng(pool_size=256, seed=1).generate(20_000)
        result = stability_error(samples)
        assert result.mu_error < 0.1
        assert result.sigma_error < 0.1
