"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.bnn.optimizers import Adam, Sgd
from repro.errors import ConfigurationError


def _quadratic_descent(optimizer, steps=200):
    """Minimise ||x - 3||^2 from x=0; returns the final x."""
    x = np.zeros(4)
    params = [x]
    for _ in range(steps):
        grads = [2.0 * (x - 3.0)]
        optimizer.update(params, grads)
    return x


class TestSgd:
    def test_converges_on_quadratic(self):
        x = _quadratic_descent(Sgd(learning_rate=0.1))
        assert np.allclose(x, 3.0, atol=1e-3)

    def test_momentum_converges(self):
        x = _quadratic_descent(Sgd(learning_rate=0.05, momentum=0.9))
        assert np.allclose(x, 3.0, atol=1e-2)

    def test_in_place_update(self):
        x = np.ones(3)
        params = [x]
        Sgd(learning_rate=0.5).update(params, [np.ones(3)])
        assert np.allclose(x, 0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Sgd(learning_rate=0)
        with pytest.raises(ConfigurationError):
            Sgd(momentum=1.0)
        with pytest.raises(ConfigurationError):
            Sgd().update([np.zeros(2)], [])
        with pytest.raises(ConfigurationError):
            Sgd().update([np.zeros(2)], [np.zeros(3)])


class TestAdam:
    def test_converges_on_quadratic(self):
        x = _quadratic_descent(Adam(learning_rate=0.1), steps=500)
        assert np.allclose(x, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        # First Adam step should move by ~learning_rate regardless of
        # gradient magnitude.
        x = np.zeros(1)
        Adam(learning_rate=0.1).update([x], [np.array([1e-4])])
        assert abs(x[0] + 0.1) < 0.02

    def test_state_tracks_parameters(self):
        opt = Adam(learning_rate=0.01)
        a, b = np.zeros(2), np.zeros(3)
        opt.update([a, b], [np.ones(2), np.ones(3)])
        opt.update([a, b], [np.ones(2), np.ones(3)])
        assert (a != 0).all() and (b != 0).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Adam(learning_rate=-1)
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(epsilon=0)
