"""Property-based tests on the hardware models (hypothesis).

Invariants that must hold across the whole configuration space, not just
the paper's design point: schedule monotonicity, resource-model
monotonicity, and weight-generator output bounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.config import ArchitectureConfig
from repro.hw.controller import schedule_network
from repro.hw.resources import full_design_resources, grng_resources, system_power_mw

pe_inputs = st.sampled_from([4, 8, 16])
pe_sets = st.integers(min_value=1, max_value=12)
bit_lengths = st.sampled_from([6, 8, 12])


def _config(t, n, b, kind="rlf"):
    return ArchitectureConfig(
        pe_sets=t, pes_per_set=n, pe_inputs=n, bit_length=b,
        max_word_size=4096, grng_kind=kind,
    )


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(pe_sets, pe_inputs, st.integers(min_value=32, max_value=512))
    def test_cycles_positive_and_bounded(self, t, n, hidden):
        config = _config(t, n, 8)
        sizes = (784, hidden, 10)
        if not config.writeback_feasible(min(sizes[:-1])):
            return
        schedule = schedule_network(config, sizes)
        assert schedule.cycles_per_sample > 0
        # Lower bound: total MACs / array MACs.
        macs = sum(a * b for a, b in zip(sizes[:-1], sizes[1:]))
        assert schedule.cycles_per_sample >= macs / (config.total_pes * n)

    @settings(max_examples=30, deadline=None)
    @given(pe_inputs, st.integers(min_value=64, max_value=400))
    def test_more_pe_sets_never_more_compute(self, n, hidden):
        # Compute cycles are monotone in array size; *total* cycles can tick
        # up slightly because the drain constant grows with T, so the
        # monotonicity claim is on the compute portion.
        sizes = (784, hidden, 10)
        previous = None
        for t in (1, 2, 4, 8):
            config = _config(t, n, 8)
            if not config.writeback_feasible(min(sizes[:-1])):
                continue
            schedule = schedule_network(config, sizes)
            compute = sum(layer.compute_cycles for layer in schedule.layers)
            if previous is not None:
                assert compute <= previous
            previous = compute

    @settings(max_examples=30, deadline=None)
    @given(pe_sets, pe_inputs)
    def test_gaussian_demand_independent_of_array(self, t, n):
        config = _config(t, n, 8)
        sizes = (784, 100, 10)
        if not config.writeback_feasible(100):
            return
        schedule = schedule_network(config, sizes)
        expected = 784 * 100 + 100 + 100 * 10 + 10
        assert schedule.gaussian_samples_per_image == expected


class TestResourceProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(["rlf", "bnnwallace"]), st.integers(min_value=2, max_value=64))
    def test_grng_resources_monotone_in_lanes(self, kind, quarter_lanes):
        lanes = quarter_lanes * 4
        small = grng_resources(kind, lanes)
        large = grng_resources(kind, lanes * 2)
        assert large.alms >= small.alms
        assert large.registers >= small.registers
        assert large.memory_bits >= small.memory_bits
        assert large.power_mw >= small.power_mw

    @settings(max_examples=25, deadline=None)
    @given(pe_sets, pe_inputs, bit_lengths)
    def test_full_design_reports_positive(self, t, n, b):
        config = _config(t, n, b)
        report = full_design_resources(config, (784, 100, 10))
        assert report.alms > 0
        assert report.memory_bits > 0
        assert 0 < report.dsps <= 342
        assert system_power_mw(config) > 0

    @settings(max_examples=20, deadline=None)
    @given(pe_sets, pe_inputs)
    def test_rlf_design_always_more_efficient(self, t, n):
        # Table 5's conclusion must hold across the design space, not just
        # at the paper point.
        rlf = system_power_mw(_config(t, n, 8, "rlf"))
        wal = system_power_mw(_config(t, n, 8, "bnnwallace"))
        assert rlf < wal


class TestWeightGeneratorProperties:
    @settings(max_examples=20, deadline=None)
    @given(bit_lengths, st.integers(min_value=0, max_value=2**31))
    def test_outputs_always_in_weight_format(self, bits, seed):
        from repro.grng import NumpyGrng
        from repro.hw.weight_generator import WeightGenerator

        gen = WeightGenerator(NumpyGrng(seed), bit_length=bits)
        fmt = gen.weight_fmt
        rng = np.random.default_rng(seed)
        mu = rng.integers(fmt.min_int, fmt.max_int + 1, size=32)
        sigma = rng.integers(0, fmt.max_int + 1, size=32)
        out = gen.sample(mu, sigma)
        assert out.max() <= fmt.max_int
        assert out.min() >= fmt.min_int
