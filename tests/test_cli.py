"""Tests for the command-line interface."""

import pytest

import repro.cli as cli
from repro.cli import build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "rlf" in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_run_fast_experiment(self, capsys, tmp_path):
        assert main(["run", "table2", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table2.txt").exists()
        assert "Table 2" in capsys.readouterr().out

    def test_grng_quality(self, capsys):
        assert main(["grng", "bnnwallace", "--samples", "2000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "sigma err" in out and "runs test" in out

    def test_design_space(self, capsys):
        assert main(["design-space", "--top", "3", "--max-pe-sets", "10"]) == 0
        out = capsys.readouterr().out
        assert "img/s" in out

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class _FakeExperiment:
    """Stand-in experiment for run-all robustness tests."""

    def __init__(self, fail: bool) -> None:
        self.fail = fail

    def run(self):
        if self.fail:
            raise ValueError("synthetic experiment failure")
        return {}

    def render(self, _result) -> str:
        return "fake table\n"


class TestRunAllRobustness:
    @pytest.fixture()
    def fake_registry(self, monkeypatch):
        from repro.experiments import registry

        experiments = {
            "aaa-ok": _FakeExperiment(fail=False),
            "bbb-bad": _FakeExperiment(fail=True),
            "ccc-ok": _FakeExperiment(fail=False),
        }
        monkeypatch.setattr(cli, "EXPERIMENTS", experiments)
        monkeypatch.setattr(cli, "get_experiment", experiments.__getitem__)
        # run-all resolves through the runner, which reads the registry.
        monkeypatch.setattr(registry, "EXPERIMENTS", experiments)
        return experiments

    def test_continues_past_failure_and_exits_nonzero(self, fake_registry, capsys):
        assert main(["run-all"]) == 1
        out = capsys.readouterr().out
        # The experiment after the failing one still ran...
        assert out.index("### bbb-bad FAILED") < out.index("### ccc-ok")
        assert out.count("fake table") == 2
        # ...and the summary names the failure.
        assert "ran 3 experiments, 1 failed" in out
        assert "bbb-bad: ValueError: synthetic experiment failure" in out

    def test_all_green_exits_zero(self, fake_registry, capsys):
        fake_registry["bbb-bad"].fail = False
        assert main(["run-all"]) == 0
        assert "3 experiments, 0 failed" in capsys.readouterr().out

    def test_failure_still_writes_other_outputs(self, fake_registry, tmp_path):
        assert main(["run-all", "--out", str(tmp_path)]) == 1
        assert (tmp_path / "aaa-ok.txt").exists()
        assert (tmp_path / "ccc-ok.txt").exists()
        assert not (tmp_path / "bbb-bad.txt").exists()


class TestGrngSeedReproducibility:
    def test_seed_is_echoed(self, capsys):
        assert main(["grng", "numpy", "--samples", "500", "--seed", "42"]) == 0
        assert "seed      : 42" in capsys.readouterr().out

    def test_same_seed_reproduces_the_report(self, capsys):
        main(["grng", "numpy", "--samples", "500", "--seed", "7"])
        first = capsys.readouterr().out
        main(["grng", "numpy", "--samples", "500", "--seed", "7"])
        assert capsys.readouterr().out == first

    def test_different_seed_changes_the_metrics(self, capsys):
        main(["grng", "numpy", "--samples", "500", "--seed", "7"])
        first = capsys.readouterr().out
        main(["grng", "numpy", "--samples", "500", "--seed", "8"])
        assert capsys.readouterr().out != first


_QUICK_SERVING_ARGS = [
    "--epochs", "0",
    "--train-images", "1",
    "--images", "8",
    "--hidden", "8",
    "--n-samples", "3",
    "--max-batch", "8",
]


class TestServingVerbs:
    def test_serve_demo(self, capsys):
        assert main(
            ["serve-demo", "--requests", "16", "--workers", "0", *_QUICK_SERVING_ARGS]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "batch histogram" in out
        assert "serving 'digits'" in out

    def test_loadtest_closed(self, capsys):
        assert main(
            ["loadtest", "--pattern", "closed", "--requests", "16", "--workers", "0",
             *_QUICK_SERVING_ARGS]
        ) == 0
        out = capsys.readouterr().out
        assert "closed-loop" in out and "req/s" in out

    def test_loadtest_open(self, capsys):
        assert main(
            ["loadtest", "--pattern", "open", "--rate", "300", "--duration", "0.2",
             "--workers", "1", *_QUICK_SERVING_ARGS]
        ) == 0
        out = capsys.readouterr().out
        assert "open-loop" in out and "latency" in out


class TestObservabilityFlags:
    def test_serve_demo_writes_all_obs_artifacts(self, capsys, tmp_path):
        trace = tmp_path / "spans.jsonl"
        metrics_json = tmp_path / "metrics.json"
        metrics_prom = tmp_path / "metrics.prom"
        samples = tmp_path / "samples.jsonl"
        assert main(
            ["serve-demo", "--requests", "16", "--workers", "0",
             "--trace-out", str(trace),
             "--metrics-json", str(metrics_json),
             "--metrics-prom", str(metrics_prom),
             "--samples-out", str(samples),
             "--profile",
             *_QUICK_SERVING_ARGS]
        ) == 0
        out = capsys.readouterr().out
        assert trace.exists() and metrics_json.exists()
        assert metrics_prom.exists() and samples.exists()
        assert "kernel" in out  # the profiler table was rendered

        import json

        span = json.loads(trace.read_text().splitlines()[0])
        assert "phases" in span and span["latency_s"] > 0
        body = json.loads(metrics_json.read_text())
        assert "service_requests_total" in body["metrics"]

        from repro.obs import parse_prometheus

        parsed = parse_prometheus(metrics_prom.read_text())
        assert any(s["name"] == "service_requests_total" for s in parsed)

    def test_obs_report_renders_phase_table(self, capsys, tmp_path):
        trace = tmp_path / "spans.jsonl"
        assert main(
            ["serve-demo", "--requests", "16", "--workers", "0",
             "--trace-out", str(trace), *_QUICK_SERVING_ARGS]
        ) == 0
        capsys.readouterr()
        assert main(["obs-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "phase" in out and "p95" in out

    def test_profiling_disabled_after_run(self, capsys):
        from repro.obs import profile as profile_mod

        assert main(
            ["serve-demo", "--requests", "8", "--workers", "0", "--profile",
             *_QUICK_SERVING_ARGS]
        ) == 0
        assert profile_mod.ACTIVE is None
