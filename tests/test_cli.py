"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "rlf" in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_run_fast_experiment(self, capsys, tmp_path):
        assert main(["run", "table2", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table2.txt").exists()
        assert "Table 2" in capsys.readouterr().out

    def test_grng_quality(self, capsys):
        assert main(["grng", "bnnwallace", "--samples", "2000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "sigma err" in out and "runs test" in out

    def test_design_space(self, capsys):
        assert main(["design-space", "--top", "3", "--max-pe-sets", "10"]) == 0
        out = capsys.readouterr().out
        assert "img/s" in out

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
