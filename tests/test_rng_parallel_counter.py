"""Unit tests for repro.rng.parallel_counter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.rng.parallel_counter import ParallelCounter


class TestCostModel:
    def test_paper_127_input_pc(self):
        # §4.1.1: "a 127-input PC requires 120 full adders".
        assert ParallelCounter(127).full_adders == 120

    def test_output_bits(self):
        assert ParallelCounter(127).output_bits == 7
        assert ParallelCounter(255).output_bits == 8
        assert ParallelCounter(7).output_bits == 3

    def test_rlf_tap_counter_is_tiny(self):
        # The RLF only counts its 7 buffered bits.
        assert ParallelCounter(7).full_adders == 4
        assert ParallelCounter(7).full_adders < ParallelCounter(255).full_adders / 10

    def test_tree_depth_grows_logarithmically(self):
        assert ParallelCounter(255).tree_depth == 8
        assert ParallelCounter(8).tree_depth == 3

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            ParallelCounter(0)


class TestFunctionalCount:
    def test_counts(self):
        assert ParallelCounter(7).count([1, 0, 1, 1, 0, 0, 1]) == 4

    def test_wrong_width(self):
        with pytest.raises(ConfigurationError):
            ParallelCounter(4).count([1, 0, 1])

    def test_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelCounter(3).count([0, 2, 1])

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64))
    def test_matches_sum(self, bits):
        assert ParallelCounter(len(bits)).count(bits) == sum(bits)
