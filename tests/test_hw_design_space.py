"""Tests for the design-space explorer (§5.4 joint optimization)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.design_space import explore_design_space


class TestExploreDesignSpace:
    def test_returns_sorted_by_throughput(self):
        points = explore_design_space(max_pe_sets=25)
        assert len(points) > 0
        speeds = [p.images_per_second for p in points]
        assert speeds == sorted(speeds, reverse=True)

    def test_all_points_feasible(self):
        for point in explore_design_space(max_pe_sets=25):
            cfg = point.config
            assert cfg.writeback_feasible(200)
            assert cfg.ifmem_word_bits <= cfg.max_word_size
            assert cfg.wpmem_word_bits <= cfg.max_word_size

    def test_paper_point_is_near_optimal(self):
        # The paper's 16x8x8 should be at or near the top for the MNIST
        # network under the default constraints.
        points = explore_design_space(max_pe_sets=25)
        best = points[0].config
        paper_like = [
            p
            for p in points
            if p.config.pe_sets == 16 and p.config.pe_inputs == 8
        ]
        assert paper_like, "paper configuration not in feasible set"
        assert (
            paper_like[0].images_per_second
            >= 0.5 * points[0].images_per_second
        )
        assert best.total_pes >= 64  # big arrays win on throughput

    def test_device_fit_filter(self):
        unfit_allowed = explore_design_space(max_pe_sets=25, require_device_fit=False)
        fit_only = explore_design_space(max_pe_sets=25, require_device_fit=True)
        assert len(unfit_allowed) >= len(fit_only)

    def test_wallace_design_space_less_efficient(self):
        rlf = explore_design_space(max_pe_sets=25, grng_kind="rlf")
        wal = explore_design_space(max_pe_sets=25, grng_kind="bnnwallace")
        # Best energy efficiency: RLF designs dominate (Table 5 story).
        assert max(p.images_per_joule for p in rlf) > max(
            p.images_per_joule for p in wal
        )

    def test_bad_layer_sizes(self):
        with pytest.raises(ConfigurationError):
            explore_design_space(layer_sizes=(784,))

    def test_describe_format(self):
        point = explore_design_space(max_pe_sets=25)[0]
        text = point.describe()
        assert "img/s" in text and "img/J" in text
