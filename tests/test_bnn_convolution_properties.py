"""Property-based tests for the vectorized convolution kernels (hypothesis).

The strided-gather im2col, block-add col2im and mask-free pooling kernels
must be *bit-for-bit* equal to their per-position loop references over
random shapes, kernel sizes, strides and paddings — not merely close:
the training layer's equivalence story (and the benchmark gates) rests on
exact equality.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn.convolution import (
    MaxPool2dLayer,
    col2im,
    col2im_loop,
    conv_output_size,
    im2col,
    im2col_loop,
    maxpool_positions,
)


def conv_cases():
    """(batch, channels, H, W, kernel, stride, padding) that fit."""
    return st.tuples(
        st.integers(1, 3),  # batch
        st.integers(1, 3),  # channels
        st.integers(3, 12),  # height
        st.integers(3, 12),  # width
        st.integers(1, 4),  # kernel
        st.integers(1, 3),  # stride
        st.integers(0, 2),  # padding
    ).filter(
        lambda case: case[2] + 2 * case[6] >= case[4]
        and case[3] + 2 * case[6] >= case[4]
    )


class TestIm2ColProperties:
    @given(conv_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_im2col_bit_exact_vs_loop(self, case, seed):
        batch, channels, height, width, kernel, stride, padding = case
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((batch, channels, height, width))
        assert np.array_equal(
            im2col(x, kernel, stride, padding),
            im2col_loop(x, kernel, stride, padding),
        )

    @given(conv_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_col2im_bit_exact_vs_loop(self, case, seed):
        batch, channels, height, width, kernel, stride, padding = case
        rng = np.random.default_rng(seed)
        out_h = conv_output_size(height, kernel, stride, padding)
        out_w = conv_output_size(width, kernel, stride, padding)
        grads = rng.standard_normal(
            (batch, out_h * out_w, channels * kernel * kernel)
        )
        shape = (batch, channels, height, width)
        assert np.array_equal(
            col2im(grads, shape, kernel, stride, padding),
            col2im_loop(grads, shape, kernel, stride, padding),
        )

    @given(conv_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_adjoint_property(self, case, seed):
        # <im2col(x), g> == <x, col2im(g)>: the defining adjoint identity
        # that makes the conv backward pass correct for ANY geometry.
        batch, channels, height, width, kernel, stride, padding = case
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((batch, channels, height, width))
        patches = im2col(x, kernel, stride, padding)
        g = rng.standard_normal(patches.shape)
        lhs = float((patches * g).sum())
        rhs = float((x * col2im(g, x.shape, kernel, stride, padding)).sum())
        assert abs(lhs - rhs) <= 1e-9 * max(1.0, abs(lhs))


class TestPoolingProperties:
    @given(
        st.integers(1, 3),  # batch
        st.integers(1, 4),  # channels
        st.integers(1, 4),  # pooled height
        st.integers(1, 4),  # pooled width
        st.integers(2, 3),  # pool size
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_maxpool_positions_bit_exact(self, batch, channels, ph, pw, p, seed):
        height, width = ph * p, pw * p
        rng = np.random.default_rng(seed)
        channel_major = rng.standard_normal((batch, channels, height, width))
        # Position-major layout of the same activations, as produced by
        # the convolution GEMM: (batch, H * W, C).
        positions = np.ascontiguousarray(
            channel_major.transpose(0, 2, 3, 1).reshape(
                batch, height * width, channels
            )
        )
        assert np.array_equal(
            maxpool_positions(positions, height, width, p),
            MaxPool2dLayer(p).forward(channel_major),
        )

    @given(st.integers(1, 3), st.integers(1, 3), st.integers(2, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_stacked_pool_forward_matches_per_sample(self, samples, channels, p, seed):
        # The pool layer accepts leading sample axes; slicing the stacked
        # result must equal pooling each sample individually.
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((samples, 2, channels, 4 * p, 2 * p))
        stacked = MaxPool2dLayer(p).forward(x)
        for index in range(samples):
            assert np.array_equal(stacked[index], MaxPool2dLayer(p).forward(x[index]))
