"""Tests for the GRNG registry."""

import pytest

from repro.errors import ConfigurationError
from repro.grng import Grng, available_grngs, make_grng
from repro.grng.base import NumpyGrng


class TestFactory:
    def test_all_registered_names_construct(self):
        for name in available_grngs():
            grng = make_grng(name, seed=0)
            assert isinstance(grng, Grng)

    def test_all_generators_produce_requested_count(self):
        for name in available_grngs():
            samples = make_grng(name, seed=0).generate(64)
            assert samples.shape == (64,)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown GRNG"):
            make_grng("nope")

    def test_table1_rows_present(self):
        names = available_grngs()
        for required in ("rlf", "bnnwallace", "wallace-nss", "wallace-256", "wallace-1024", "wallace-4096"):
            assert required in names

    def test_seed_changes_stream(self):
        a = make_grng("bnnwallace", seed=0).generate(32)
        b = make_grng("bnnwallace", seed=1).generate(32)
        assert (a != b).any()

    def test_codes_unavailable_for_float_generators(self):
        with pytest.raises(ConfigurationError, match="no integer code datapath"):
            NumpyGrng(0).generate_codes(4)
