"""Tests for the Bayesian convolution extension (im2col, conv, pooling)."""

import numpy as np
import pytest

from repro.bnn import Adam
from repro.bnn.conv_network import BayesianConvNetwork
from repro.bnn.convolution import (
    BayesianConv2dLayer,
    MaxPool2dLayer,
    col2im,
    conv_output_size,
    im2col,
)
from repro.bnn.losses import cross_entropy_loss
from repro.bnn.priors import GaussianPrior
from repro.errors import ConfigurationError


class TestIm2Col:
    def test_output_size_formula(self):
        assert conv_output_size(28, 3, 1, 1) == 28
        assert conv_output_size(28, 3, 1, 0) == 26
        assert conv_output_size(28, 2, 2, 0) == 14

    def test_output_size_invalid(self):
        with pytest.raises(ConfigurationError):
            conv_output_size(2, 5, 1, 0)

    def test_patch_contents(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        patches = im2col(x, kernel=2, stride=2, padding=0)
        assert patches.shape == (1, 4, 4)
        assert patches[0, 0].tolist() == [0, 1, 4, 5]
        assert patches[0, 3].tolist() == [10, 11, 14, 15]

    def test_padding(self):
        x = np.ones((1, 1, 2, 2))
        patches = im2col(x, kernel=3, stride=1, padding=1)
        assert patches.shape == (1, 4, 9)
        # Corner patch sees 4 ones (the image) and 5 zeros (padding).
        assert patches[0, 0].sum() == 4

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), g> == <x, col2im(g)> for random g: the defining
        # adjoint property, which makes the conv backward pass correct.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 6, 6))
        g = rng.standard_normal((2, 16, 27))  # kernel 3, stride 1, pad 0 -> 4x4
        lhs = float((im2col(x, 3, 1, 0) * g).sum())
        rhs = float((x * col2im(g, x.shape, 3, 1, 0)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestBayesianConv2d:
    def test_output_shape(self):
        conv = BayesianConv2dLayer(3, 8, kernel_size=3, padding=1, seed=0)
        out = conv.forward(np.zeros((2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)
        assert conv.output_shape((3, 10, 10)) == (8, 10, 10)

    def test_mean_forward_matches_manual_convolution(self):
        conv = BayesianConv2dLayer(1, 1, kernel_size=3, seed=1)
        x = np.random.default_rng(2).standard_normal((1, 1, 5, 5))
        out = conv.forward(x, sample=False)
        kernel = conv.mu_weights.reshape(1, 3, 3)
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x[0, 0, i : i + 3, j : j + 3] * kernel[0]).sum()
        assert np.allclose(out[0, 0], expected + conv.mu_bias[0])

    def test_gradient_check_mu(self):
        rng = np.random.default_rng(3)
        conv = BayesianConv2dLayer(2, 3, kernel_size=3, seed=4, initial_sigma=0.05)
        x = rng.standard_normal((2, 2, 6, 6))
        labels = np.array([0, 1])
        prior = GaussianPrior(1.0)
        kl_scale = 0.01

        def loss_fn():
            out = conv.forward(x, sample=False)
            flat = out.reshape(2, -1)[:, :3]
            loss, _ = cross_entropy_loss(flat, labels)
            return loss + kl_scale * float(
                prior.kl_divergence(conv.mu_weights, conv.sigma_weights())
                + prior.kl_divergence(conv.mu_bias, conv.sigma_bias())
            )

        out = conv.forward(x, sample=False)
        flat = out.reshape(2, -1)
        _, grad_flat = cross_entropy_loss(flat[:, :3], labels)
        grad_full = np.zeros_like(flat)
        grad_full[:, :3] = grad_flat
        conv.backward(grad_full.reshape(out.shape), kl_scale, prior)
        eps = 1e-6
        for index in [(0, 0), (5, 2), (17, 1)]:
            conv.mu_weights[index] += eps
            up = loss_fn()
            conv.mu_weights[index] -= 2 * eps
            down = loss_fn()
            conv.mu_weights[index] += eps
            numeric = (up - down) / (2 * eps)
            assert conv.grad_mu_weights[index] == pytest.approx(numeric, abs=1e-4)

    def test_input_gradient_numerical(self):
        rng = np.random.default_rng(5)
        conv = BayesianConv2dLayer(1, 2, kernel_size=3, padding=1, seed=6)
        x = rng.standard_normal((1, 1, 4, 4))
        labels = np.array([1])

        def loss_at(x_val):
            out = conv.forward(x_val, sample=False)
            loss, _ = cross_entropy_loss(out.reshape(1, -1)[:, :2], labels)
            return loss

        out = conv.forward(x, sample=False)
        flat = out.reshape(1, -1)
        _, grad_flat = cross_entropy_loss(flat[:, :2], labels)
        grad_full = np.zeros_like(flat)
        grad_full[:, :2] = grad_flat
        grad_x = conv.backward(grad_full.reshape(out.shape), 0.0, GaussianPrior(1.0))
        eps = 1e-6
        bumped = x.copy()
        bumped[0, 0, 2, 1] += eps
        up = loss_at(bumped)
        bumped[0, 0, 2, 1] -= 2 * eps
        down = loss_at(bumped)
        assert grad_x[0, 0, 2, 1] == pytest.approx((up - down) / (2 * eps), abs=1e-5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BayesianConv2dLayer(0, 1, 3)
        with pytest.raises(ConfigurationError):
            BayesianConv2dLayer(1, 1, 3, padding=-1)
        conv = BayesianConv2dLayer(2, 1, 3)
        with pytest.raises(ConfigurationError):
            conv.forward(np.zeros((1, 3, 5, 5)))
        with pytest.raises(ConfigurationError):
            conv.backward(np.zeros((1, 1, 3, 3)), 0.0, GaussianPrior(1.0))

    def test_weight_count(self):
        conv = BayesianConv2dLayer(2, 4, kernel_size=3)
        assert conv.weight_count() == 2 * 4 * 9 + 4


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2dLayer(2).forward(x)
        assert out[0, 0].tolist() == [[5, 7], [13, 15]]

    def test_backward_routes_to_max(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool = MaxPool2dLayer(2)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4.0
        assert grad[0, 0, 1, 1] == 1.0  # position of 5
        assert grad[0, 0, 0, 0] == 0.0

    def test_tie_splitting(self):
        x = np.ones((1, 1, 2, 2))
        pool = MaxPool2dLayer(2)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 1, 1)))
        assert grad.sum() == pytest.approx(1.0)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            MaxPool2dLayer(2).forward(np.zeros((1, 1, 5, 5)))


class TestBayesianConvNetwork:
    def test_learns_tiny_image_task(self):
        # Two classes distinguished by which half of the image is bright —
        # exactly what one conv stage can learn quickly.
        rng = np.random.default_rng(7)
        n = 80
        labels = rng.integers(0, 2, n)
        x = rng.normal(0, 0.1, (n, 1, 8, 8))
        for i in range(n):
            if labels[i]:
                x[i, 0, :, 4:] += 1.0
            else:
                x[i, 0, :, :4] += 1.0
        network = BayesianConvNetwork(
            (1, 8, 8), conv_channels=(4,), n_classes=2, seed=0, initial_sigma=0.02
        )
        optimizer = Adam(5e-3)
        for _ in range(40):
            network.train_step(x, labels, optimizer, kl_scale=1.0 / n)
        acc = (network.predict(x, n_samples=10) == labels).mean()
        assert acc > 0.9

    def test_weight_count(self):
        network = BayesianConvNetwork((1, 8, 8), conv_channels=(4,), n_classes=2)
        expected = (1 * 4 * 9 + 4) + (4 * 4 * 4 * 2 + 2)
        assert network.weight_count() == expected

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BayesianConvNetwork((1, 8), conv_channels=(4,))
        with pytest.raises(ConfigurationError):
            BayesianConvNetwork((1, 8, 8), conv_channels=())
        with pytest.raises(ConfigurationError):
            # 7x7 not poolable by 2 after padding-preserving conv.
            BayesianConvNetwork((1, 7, 7), conv_channels=(4,))

    def test_predict_proba_normalised(self):
        network = BayesianConvNetwork((1, 8, 8), conv_channels=(2,), n_classes=3)
        probs = network.predict_proba(np.zeros((2, 1, 8, 8)), n_samples=3)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestConvScheduling:
    def test_conv_layer_schedule(self):
        from repro.hw.config import ArchitectureConfig
        from repro.hw.controller import schedule_conv_layer

        cfg = ArchitectureConfig.paper()
        schedule = schedule_conv_layer(
            cfg, input_shape=(1, 28, 28), out_channels=8, kernel_size=3, padding=1
        )
        # 28x28x8 = 6272 neurons of patch size 9.
        assert schedule.in_features == 9
        assert schedule.out_features == 6272
        assert schedule.iterations == 2  # ceil(9/8)
        assert schedule.groups == 49     # ceil(6272/128)
        assert schedule.compute_cycles == 98

    def test_conv_schedule_validation(self):
        from repro.errors import SchedulingError
        from repro.hw.config import ArchitectureConfig
        from repro.hw.controller import schedule_conv_layer

        with pytest.raises(SchedulingError):
            schedule_conv_layer(
                ArchitectureConfig.paper(), (0, 8, 8), out_channels=4, kernel_size=3
            )
