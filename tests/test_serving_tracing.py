"""End-to-end request tracing through the serving tier, plus the
stack-cache metrics satellite and the concurrent ServiceMetrics hammer."""

import threading

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianNetwork
from repro.errors import ConfigurationError
from repro.obs import parse_prometheus, render_prometheus
from repro.obs.trace import SERVING_PHASES
from repro.serving import BnnService, ServiceConfig
from repro.serving.metrics import ServiceMetrics

IN, OUT = 10, 3


@pytest.fixture()
def network():
    return BayesianNetwork((IN, 6, OUT), seed=0, initial_sigma=0.04)


@pytest.fixture()
def images():
    return np.random.default_rng(5).random((16, IN))


def traced_service(network, **overrides) -> BnnService:
    config = dict(
        workers=0, max_batch=8, cache_capacity=0, queue_capacity=64,
        trace_capacity=1024,
    )
    config.update(overrides)
    service = BnnService(config=ServiceConfig(**config))
    # n_samples is deliberately high: inference must dominate each span's
    # wall clock so the coverage assertions are robust to scheduler noise
    # on loaded CI machines (the fixed gaps between phases are a few µs).
    service.register_network("m", network, n_samples=48, grng="bnnwallace", seed=3)
    return service


class TestTracerWiring:
    def test_disabled_by_default(self, network, images):
        with traced_service(network, trace_capacity=0) as service:
            assert service.tracer is None
            service.predict_many("m", images[:4])  # still serves fine

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(trace_capacity=-1)

    def test_every_request_produces_a_span(self, network, images):
        with traced_service(network) as service:
            service.predict_many("m", images)
            spans = service.tracer.spans()
        assert len(spans) == len(images)
        assert service_models(spans) == {"m"}
        assert all(s.error is None for s in spans)


def service_models(spans):
    return {s.model for s in spans}


class TestSpanInvariants:
    """The ISSUE's span contract: phases nest, and their sum ≤ wall time."""

    def _spans(self, network, images, **overrides):
        with traced_service(network, **overrides) as service:
            service.predict_many("m", images)
            service.predict_many("m", images)
            return service.tracer.spans()

    @pytest.mark.parametrize("overrides", [{}, {"workers": 2}])
    def test_sum_of_phases_bounded_by_wall(self, network, images, overrides):
        spans = self._spans(network, images, **overrides)
        assert spans
        for span in spans:
            assert span.end is not None
            assert span.latency_s > 0
            assert sum(span.phases.values()) <= span.latency_s + 1e-6

    @pytest.mark.parametrize("overrides", [{}, {"workers": 2}])
    def test_phase_names_are_canonical(self, network, images, overrides):
        for span in self._spans(network, images, **overrides):
            assert set(span.phases) <= set(SERVING_PHASES)
            assert all(v >= 0 for v in span.phases.values())

    def test_miss_spans_carry_batch_metadata_and_coverage(self, network, images):
        spans = self._spans(network, images)
        misses = [s for s in spans if not s.cache_hit]
        assert misses
        for span in misses:
            assert span.batch_size >= 1
            assert span.worker is not None
            assert {"queue_wait", "inference", "respond"} <= set(span.phases)
            # The bench gate enforces >= 95%; the unit test allows slack
            # for loaded CI machines but still requires real coverage.
            assert span.accounted_fraction() >= 0.80

    def test_cache_hit_spans_are_marked_and_covered(self, network, images):
        with traced_service(network, cache_capacity=32) as service:
            service.predict_many("m", images[:8])
            service.predict_many("m", images[:8])  # identical rows: all hits
            spans = service.tracer.spans()
        hits = [s for s in spans if s.cache_hit]
        assert len(hits) == 8
        for span in hits:
            assert "cache_lookup" in span.phases
            # A hit's whole lifetime is the lookup; coverage is ~100%.
            assert span.accounted_fraction() >= 0.80

    def test_threaded_spans_complete_for_all_requests(self, network, images):
        with traced_service(network, workers=2) as service:
            results = service.predict_many("m", images)
            assert results.shape == (len(images), OUT)
            assert service.tracer.finished == len(images)


def shared_stack_service(network) -> BnnService:
    """The stack cache is only exercised by share-weight-stacks models."""
    service = BnnService(
        config=ServiceConfig(workers=0, max_batch=8, cache_capacity=0)
    )
    service.register_network(
        "m", network, n_samples=4, grng="bnnwallace", seed=3,
        share_weight_stacks=True,
    )
    return service


class TestStackCacheMetricsSatellite:
    def test_snapshot_and_render_include_stack_cache(self, network, images):
        with shared_stack_service(network) as service:
            service.predict_many("m", images)
            snap = service.metrics.snapshot()
            rendered = service.metrics.render()
            stack = service.stack_cache
            assert snap["stack_cache_hits"] == stack.hits
            assert snap["stack_cache_misses"] == stack.misses
            assert snap["stack_cache_waits"] == stack.waits
            assert snap["stack_cache_evictions"] == stack.evictions
            assert snap["stack_cache_misses"] >= 1  # first batch builds
            assert "stack cache     :" in rendered

    def test_stack_cache_reaches_the_prometheus_exposition(self, network, images):
        with shared_stack_service(network) as service:
            service.predict_many("m", images)
            service.metrics.snapshot()  # mirrors live values into the registry
            text = render_prometheus(service.metrics.registry)
        samples = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in parse_prometheus(text)
        }
        assert samples[("service_stack_cache_total", (("event", "miss"),))] >= 1
        assert ("service_stack_cache_entries", ()) in samples

    def test_unattached_metrics_report_zeros(self):
        metrics = ServiceMetrics(latency_window=8)
        snap = metrics.snapshot()
        assert snap["stack_cache_hits"] == 0
        assert "stack cache" not in metrics.render()


class TestServiceMetricsConcurrentHammer:
    def test_counters_conserved_across_threads(self):
        metrics = ServiceMetrics(latency_window=64)
        threads_n, iters = 8, 300
        barrier = threading.Barrier(threads_n)

        def work(tid: int) -> None:
            barrier.wait()
            for i in range(iters):
                metrics.record_latency(0.001 * (tid + 1))
                metrics.record_batch(4)
                metrics.record_cache(hit=i % 2 == 0)
                metrics.record_queue_depth(tid)
                if i % 3 == 0:
                    metrics.record_failure()
                if i % 5 == 0:
                    metrics.record_overload()

        workers = [
            threading.Thread(target=work, args=(t,)) for t in range(threads_n)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        total = threads_n * iters
        snap = metrics.snapshot()
        assert snap["requests_served"] == total
        assert snap["requests_failed"] == threads_n * len(range(0, iters, 3))
        assert snap["overloads"] == threads_n * len(range(0, iters, 5))
        assert snap["batches"] == total
        assert snap["mean_batch_size"] == 4.0
        assert snap["cache_hits"] == total // 2
        assert snap["cache_misses"] == total // 2
        assert snap["max_queue_depth"] == threads_n - 1
        # The latency histogram must have seen every observation too.
        hist = metrics.registry.get("service_request_latency_seconds")
        assert hist.snapshot()["count"] == total
