"""Tests for the FNN, trainer, metrics and MC inference."""

import numpy as np
import pytest

from repro.bnn import (
    Adam,
    BayesianNetwork,
    FeedForwardNetwork,
    MonteCarloPredictor,
    Trainer,
    accuracy,
    negative_log_likelihood,
)
from repro.bnn.metrics import confusion_matrix, expected_calibration_error
from repro.errors import ConfigurationError, TrainingError
from repro.grng import NumpyGrng, ParallelRlfGrng


def _toy_task(seed=0, n=100, features=6, classes=2):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, n)
    x = rng.normal(0, 0.4, (n, features)) + labels[:, None] * 1.3
    return x, labels


class TestFeedForwardNetwork:
    def test_learns_separable_task(self):
        x, y = _toy_task()
        fnn = FeedForwardNetwork((6, 8, 2), seed=0)
        Trainer(fnn, Adam(5e-3), batch_size=20, epochs=20, seed=0).fit(x, y)
        assert accuracy(fnn.predict(x), y) > 0.9

    def test_dropout_only_in_training(self):
        fnn = FeedForwardNetwork((6, 8, 2), dropout=0.5, seed=1)
        x = np.random.default_rng(0).standard_normal((4, 6))
        a = fnn.forward(x, training=False)
        b = fnn.forward(x, training=False)
        assert np.allclose(a, b)

    def test_predict_proba_normalised(self):
        fnn = FeedForwardNetwork((6, 4, 3), seed=2)
        probs = fnn.predict_proba(np.zeros((3, 6)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_layer_sizes_validation(self):
        with pytest.raises(ConfigurationError):
            FeedForwardNetwork((4,))


class TestTrainer:
    def test_history_lengths(self):
        x, y = _toy_task(seed=1)
        fnn = FeedForwardNetwork((6, 4, 2), seed=3)
        history = Trainer(fnn, Adam(1e-3), batch_size=32, epochs=5, seed=0).fit(
            x, y, x, y
        )
        assert history.epochs == 5
        assert len(history.test_accuracy) == 5
        assert history.final_test_accuracy() == history.test_accuracy[-1]

    def test_bayesian_records_kl(self):
        x, y = _toy_task(seed=2)
        bnn = BayesianNetwork((6, 4, 2), seed=4)
        history = Trainer(bnn, Adam(1e-3), batch_size=32, epochs=3, seed=0).fit(x, y)
        assert all(np.isfinite(history.kl))
        assert history.kl[0] != 0.0

    def test_no_test_set_no_test_accuracy(self):
        x, y = _toy_task(seed=3)
        fnn = FeedForwardNetwork((6, 4, 2), seed=5)
        history = Trainer(fnn, Adam(1e-3), epochs=2).fit(x, y)
        assert history.test_accuracy == []

    def test_validation(self):
        fnn = FeedForwardNetwork((6, 4, 2))
        with pytest.raises(ConfigurationError):
            Trainer(fnn, batch_size=0)
        with pytest.raises(ConfigurationError):
            Trainer(fnn, epochs=0)
        with pytest.raises(ConfigurationError):
            Trainer(fnn).fit(np.zeros((0, 6)), np.zeros(0, dtype=int))
        with pytest.raises(ConfigurationError):
            Trainer(fnn).fit(np.zeros((3, 6)), np.zeros(2, dtype=int))

    def test_final_test_accuracy_requires_epochs(self):
        from repro.bnn.trainer import TrainingHistory

        with pytest.raises(TrainingError):
            TrainingHistory().final_test_accuracy()


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ConfigurationError):
            accuracy(np.array([0]), np.array([0, 1]))
        with pytest.raises(ConfigurationError):
            accuracy(np.array([]), np.array([]))

    def test_nll(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        labels = np.array([0, 1])
        expected = -(np.log(0.9) + np.log(0.8)) / 2
        assert negative_log_likelihood(probs, labels) == pytest.approx(expected)

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), 2)
        assert matrix.tolist() == [[1, 1], [0, 1]]

    def test_ece_perfectly_calibrated(self):
        # Confidence 1.0 and always correct -> ECE 0.
        probs = np.array([[1.0, 0.0]] * 10)
        labels = np.zeros(10, dtype=int)
        assert expected_calibration_error(probs, labels) == pytest.approx(0.0)

    def test_ece_overconfident(self):
        # Confidence 1.0 but 50% correct -> ECE 0.5.
        probs = np.array([[1.0, 0.0]] * 10)
        labels = np.array([0, 1] * 5)
        assert expected_calibration_error(probs, labels) == pytest.approx(0.5)

    def test_ece_validation(self):
        with pytest.raises(ConfigurationError):
            expected_calibration_error(np.zeros((2, 2)), np.zeros(2, dtype=int), bins=0)


class TestMonteCarloPredictor:
    def test_internal_stream_matches_network_predict_distribution(self):
        x, y = _toy_task(seed=4)
        bnn = BayesianNetwork((6, 6, 2), seed=6, initial_sigma=0.02)
        Trainer(bnn, Adam(5e-3), batch_size=20, epochs=15, seed=0).fit(x, y)
        predictor = MonteCarloPredictor(bnn, grng=None, n_samples=10)
        assert accuracy(predictor.predict(x), y) > 0.85

    def test_plugged_hardware_grng(self):
        x, y = _toy_task(seed=5)
        bnn = BayesianNetwork((6, 6, 2), seed=7, initial_sigma=0.02)
        Trainer(bnn, Adam(5e-3), batch_size=20, epochs=15, seed=0).fit(x, y)
        for grng in (ParallelRlfGrng(lanes=8, seed=0), NumpyGrng(0)):
            predictor = MonteCarloPredictor(bnn, grng=grng, n_samples=10)
            assert accuracy(predictor.predict(x), y) > 0.85

    def test_eps_per_pass(self):
        bnn = BayesianNetwork((6, 6, 2))
        predictor = MonteCarloPredictor(bnn, n_samples=2)
        assert predictor.eps_per_pass == bnn.weight_count()

    def test_predictive_entropy_higher_off_manifold(self):
        x, y = _toy_task(seed=6)
        bnn = BayesianNetwork((6, 6, 2), seed=8, initial_sigma=0.05)
        Trainer(bnn, Adam(5e-3), batch_size=20, epochs=15, seed=0).fit(x, y)
        predictor = MonteCarloPredictor(bnn, n_samples=20)
        on_manifold = predictor.predictive_entropy(x[:20]).mean()
        off_manifold = predictor.predictive_entropy(
            np.random.default_rng(9).standard_normal((20, 6)) * 0.5 + 0.65
        ).mean()
        assert off_manifold > on_manifold - 0.2  # uncertainty does not collapse

    def test_n_samples_validation(self):
        with pytest.raises(ConfigurationError):
            MonteCarloPredictor(BayesianNetwork((4, 2)), n_samples=0)


class TestTrainerDivergence:
    class _DivergingModel:
        """Train step goes non-finite immediately; predict must not run."""

        def __init__(self):
            self.predict_calls = 0

        def train_step(self, xb, yb, optimizer):
            return float("nan")

        def predict(self, x):
            self.predict_calls += 1
            return np.zeros(x.shape[0], dtype=int)

    def test_divergence_detected_before_evaluation(self):
        # The non-finite loss must abort the epoch BEFORE paying the full
        # train/test accuracy evaluation on garbage parameters.
        x, y = _toy_task(seed=4)
        model = self._DivergingModel()
        with pytest.raises(TrainingError, match="diverged at epoch 1"):
            Trainer(model, Adam(1e-3), epochs=3).fit(x, y, x, y)
        assert model.predict_calls == 0

    def test_diverged_loss_recorded_in_history_error(self):
        x, y = _toy_task(seed=5)
        with pytest.raises(TrainingError, match="loss=nan"):
            Trainer(self._DivergingModel(), Adam(1e-3), epochs=1).fit(x, y)

    def test_final_test_accuracy_messages(self):
        from repro.bnn.trainer import TrainingHistory

        # Epochs ran, but no test set was supplied: the error must say so
        # instead of claiming no epochs were recorded.
        x, y = _toy_task(seed=6)
        fnn = FeedForwardNetwork((6, 4, 2), seed=8)
        history = Trainer(fnn, Adam(1e-3), epochs=2).fit(x, y)
        with pytest.raises(TrainingError, match="without a test set"):
            history.final_test_accuracy()
        with pytest.raises(TrainingError, match="no epochs recorded"):
            TrainingHistory().final_test_accuracy()
