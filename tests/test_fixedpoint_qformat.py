"""Unit tests for repro.fixedpoint.qformat."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat


class TestConstruction:
    def test_total_bits(self):
        assert QFormat(2, 5).total_bits == 8

    def test_scale(self):
        assert QFormat(2, 5).scale == 32

    def test_rejects_negative_bits(self):
        with pytest.raises(ConfigurationError):
            QFormat(-1, 5)
        with pytest.raises(ConfigurationError):
            QFormat(2, -1)

    def test_rejects_sign_only(self):
        with pytest.raises(ConfigurationError):
            QFormat(0, 0)

    def test_for_bit_length_matches_paper_8bit(self):
        fmt = QFormat.for_bit_length(8)
        assert fmt.total_bits == 8
        assert fmt.integer_bits == 2

    def test_for_bit_length_too_small(self):
        with pytest.raises(ConfigurationError):
            QFormat.for_bit_length(3)


class TestRanges:
    def test_8bit_range(self):
        fmt = QFormat(2, 5)
        assert fmt.max_int == 127
        assert fmt.min_int == -128
        assert fmt.max_value == pytest.approx(127 / 32)
        assert fmt.min_value == pytest.approx(-4.0)

    def test_resolution(self):
        assert QFormat(2, 5).resolution == pytest.approx(1 / 32)

    def test_contains(self):
        fmt = QFormat(2, 5)
        assert fmt.contains(0.0)
        assert fmt.contains(fmt.max_value)
        assert not fmt.contains(fmt.max_value + 0.1)


class TestQuantize:
    def test_exact_values(self):
        fmt = QFormat(2, 5)
        assert fmt.quantize(1.5) == 48
        assert fmt.dequantize(48) == 1.5

    def test_rounds_half_away_from_zero(self):
        fmt = QFormat(2, 5)
        # 0.5 ulp = 1/64 -> rounds away from zero.
        assert fmt.quantize(1 / 64) == 1
        assert fmt.quantize(-1 / 64) == -1

    def test_saturates(self):
        fmt = QFormat(2, 5)
        assert fmt.quantize(100.0) == fmt.max_int
        assert fmt.quantize(-100.0) == fmt.min_int

    def test_array_in_array_out(self):
        fmt = QFormat(2, 5)
        codes = fmt.quantize(np.array([0.0, 1.0, -1.0]))
        assert codes.tolist() == [0, 32, -32]
        assert isinstance(fmt.quantize(0.25), int)

    def test_roundtrip_error_bounded_by_half_ulp(self):
        fmt = QFormat(2, 5)
        values = np.linspace(-3.9, 3.9, 1001)
        err = np.abs(fmt.roundtrip(values) - values)
        assert err.max() <= fmt.resolution / 2 + 1e-12

    @given(st.floats(min_value=-3.9, max_value=3.9))
    def test_roundtrip_property(self, value):
        fmt = QFormat(2, 5)
        assert abs(fmt.roundtrip(value) - value) <= fmt.resolution / 2 + 1e-12

    @given(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=12),
    )
    def test_quantize_is_monotone(self, int_bits, frac_bits):
        fmt = QFormat(int_bits, frac_bits)
        values = np.linspace(fmt.min_value * 1.5, fmt.max_value * 1.5, 101)
        codes = fmt.quantize(values)
        assert (np.diff(codes) >= 0).all()
