"""Tests for the weight priors (closed-form and mixture)."""

import numpy as np
import pytest
from scipy import stats

from repro.bnn.priors import GaussianPrior, ScaleMixturePrior
from repro.errors import ConfigurationError


class TestGaussianPrior:
    def test_kl_zero_at_prior(self):
        prior = GaussianPrior(sigma=0.7)
        mu = np.zeros(10)
        sigma_q = np.full(10, 0.7)
        assert prior.kl_divergence(mu, sigma_q) == pytest.approx(0.0, abs=1e-12)

    def test_kl_positive_elsewhere(self):
        prior = GaussianPrior(sigma=1.0)
        assert prior.kl_divergence(np.array([1.0]), np.array([0.5])) > 0
        assert prior.kl_divergence(np.array([0.0]), np.array([2.0])) > 0

    def test_kl_matches_monte_carlo(self):
        prior = GaussianPrior(sigma=1.0)
        mu, sigma_q = np.array([0.8]), np.array([0.4])
        exact = prior.kl_divergence(mu, sigma_q)
        rng = np.random.default_rng(0)
        w = mu + sigma_q * rng.standard_normal(200_000)
        log_q = stats.norm.logpdf(w, mu, sigma_q)
        log_p = stats.norm.logpdf(w, 0.0, 1.0)
        assert exact == pytest.approx((log_q - log_p).mean(), abs=0.01)

    def test_kl_grad_matches_numerical(self):
        prior = GaussianPrior(sigma=0.9)
        mu, sigma_q = np.array([0.5]), np.array([0.3])
        grad_mu, grad_sigma = prior.kl_grad(mu, sigma_q)
        eps = 1e-6
        num_mu = (
            prior.kl_divergence(mu + eps, sigma_q)
            - prior.kl_divergence(mu - eps, sigma_q)
        ) / (2 * eps)
        num_sigma = (
            prior.kl_divergence(mu, sigma_q + eps)
            - prior.kl_divergence(mu, sigma_q - eps)
        ) / (2 * eps)
        assert grad_mu[0] == pytest.approx(num_mu, abs=1e-5)
        assert grad_sigma[0] == pytest.approx(num_sigma, abs=1e-5)

    def test_log_prob_matches_scipy(self):
        prior = GaussianPrior(sigma=2.0)
        w = np.array([-1.0, 0.5, 3.0])
        assert prior.log_prob(w) == pytest.approx(
            stats.norm.logpdf(w, 0, 2.0).sum()
        )

    def test_grad_log_prob(self):
        prior = GaussianPrior(sigma=2.0)
        w = np.array([1.0])
        assert prior.grad_log_prob(w)[0] == pytest.approx(-0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianPrior(sigma=0)


class TestScaleMixturePrior:
    def test_log_prob_matches_direct_mixture(self):
        prior = ScaleMixturePrior(pi=0.5, sigma1=1.0, sigma2=0.1)
        w = np.array([-0.5, 0.0, 1.5])
        direct = np.log(
            0.5 * stats.norm.pdf(w, 0, 1.0) + 0.5 * stats.norm.pdf(w, 0, 0.1)
        ).sum()
        assert prior.log_prob(w) == pytest.approx(direct)

    def test_grad_log_prob_matches_numerical(self):
        prior = ScaleMixturePrior(pi=0.3, sigma1=1.0, sigma2=0.05)
        w = np.array([0.02, 0.4, -1.1])
        grad = prior.grad_log_prob(w)
        eps = 1e-7
        for i in range(3):
            bumped = w.copy()
            bumped[i] += eps
            up = prior.log_prob(bumped)
            bumped[i] -= 2 * eps
            down = prior.log_prob(bumped)
            assert grad[i] == pytest.approx((up - down) / (2 * eps), rel=1e-3)

    def test_spike_pulls_small_weights_harder(self):
        # Near zero, the narrow component dominates the shrinkage force.
        prior = ScaleMixturePrior(pi=0.5, sigma1=1.0, sigma2=0.01)
        near = abs(prior.grad_log_prob(np.array([0.005]))[0])
        far = abs(prior.grad_log_prob(np.array([2.0]))[0])
        assert near > far

    def test_not_closed_form(self):
        assert not ScaleMixturePrior(0.5, 1.0, 0.1).closed_form
        assert GaussianPrior(1.0).closed_form

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScaleMixturePrior(pi=0.0)
        with pytest.raises(ConfigurationError):
            ScaleMixturePrior(sigma1=0)
        with pytest.raises(ConfigurationError):
            ScaleMixturePrior(sigma2=-1)
