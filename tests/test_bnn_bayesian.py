"""Tests for Bayes-by-Backprop layers and networks.

Includes numerical gradient checks of the full ELBO objective — the
correctness core of the training stack.
"""

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianDenseLayer, BayesianNetwork
from repro.bnn.losses import cross_entropy_loss
from repro.bnn.priors import GaussianPrior, ScaleMixturePrior
from repro.errors import ConfigurationError


class TestBayesianDenseLayer:
    def test_sigma_parameterisation(self):
        layer = BayesianDenseLayer(4, 3, initial_sigma=0.07)
        assert np.allclose(layer.sigma_weights(), 0.07)
        assert np.allclose(layer.sigma_bias(), 0.07)

    def test_forward_with_zero_eps_uses_means(self):
        layer = BayesianDenseLayer(3, 2, seed=0)
        x = np.array([[1.0, 2.0, 3.0]])
        out = layer.forward(x, sample=False)
        assert np.allclose(out, x @ layer.mu_weights + layer.mu_bias)

    def test_external_eps_controls_sample(self):
        layer = BayesianDenseLayer(3, 2, seed=1)
        eps_w = np.ones_like(layer.mu_weights)
        eps_b = np.ones_like(layer.mu_bias)
        w, b = layer.sample_weights(eps_w, eps_b)
        assert np.allclose(w, layer.mu_weights + layer.sigma_weights())
        assert np.allclose(b, layer.mu_bias + layer.sigma_bias())

    def test_eps_shape_validation(self):
        layer = BayesianDenseLayer(3, 2, seed=2)
        with pytest.raises(ConfigurationError):
            layer.sample_weights(np.zeros((2, 2)), np.zeros(2))

    def test_weight_count(self):
        assert BayesianDenseLayer(3, 2).weight_count() == 3 * 2 + 2

    def test_kl_closed_form_zero_at_prior(self):
        prior = GaussianPrior(sigma=0.05)
        layer = BayesianDenseLayer(4, 3, seed=3, initial_sigma=0.05)
        layer.mu_weights[:] = 0.0
        layer.mu_bias[:] = 0.0
        assert layer.kl_divergence(prior) == pytest.approx(0.0, abs=1e-9)

    def test_sampled_kl_requires_forward(self):
        layer = BayesianDenseLayer(3, 2, seed=4)
        with pytest.raises(ConfigurationError):
            layer.kl_divergence(ScaleMixturePrior())


def _elbo_loss(network, x, labels, kl_scale):
    """Deterministic ELBO at eps == 0 for numerical gradient checks."""
    logits = network.forward(x, sample=False)
    nll, _ = cross_entropy_loss(logits, labels)
    return nll + kl_scale * network.kl_divergence()


class TestGradientCheck:
    """Backprop must match numerical gradients of the ELBO (eps frozen at 0)."""

    @pytest.fixture()
    def setup(self):
        rng = np.random.default_rng(0)
        network = BayesianNetwork((5, 4, 3), prior=GaussianPrior(0.8), seed=5)
        x = rng.standard_normal((6, 5))
        labels = np.array([0, 1, 2, 0, 1, 2])
        return network, x, labels

    def test_mu_gradients(self, setup):
        network, x, labels = setup
        kl_scale = 0.01

        class _NullOpt:
            def update(self, params, grads):
                self.grads = [g.copy() for g in grads]

        opt = _NullOpt()
        # Force deterministic forward in train_step by zeroing the eps rng
        # draw: run with sample=False semantics via monkeypatched epsilons.
        for layer in network.layers:
            layer._eps_rng = _ZeroRng()
        network.train_step(x, labels, opt, kl_scale)
        eps = 1e-6
        layer = network.layers[0]
        for index in [(0, 0), (2, 1), (4, 2)]:
            layer.mu_weights[index] += eps
            up = _elbo_loss(network, x, labels, kl_scale)
            layer.mu_weights[index] -= 2 * eps
            down = _elbo_loss(network, x, labels, kl_scale)
            layer.mu_weights[index] += eps
            numeric = (up - down) / (2 * eps)
            assert opt.grads[0][index] == pytest.approx(numeric, abs=1e-4)

    def test_rho_gradients_kl_part(self, setup):
        # With eps == 0 the data term does not touch rho, so the rho
        # gradient must equal the closed-form KL gradient.
        network, x, labels = setup
        kl_scale = 0.1

        class _NullOpt:
            def update(self, params, grads):
                self.grads = [g.copy() for g in grads]

        opt = _NullOpt()
        for layer in network.layers:
            layer._eps_rng = _ZeroRng()
        network.train_step(x, labels, opt, kl_scale)
        layer = network.layers[0]
        eps = 1e-6
        index = (1, 1)
        layer.rho_weights[index] += eps
        up = _elbo_loss(network, x, labels, kl_scale)
        layer.rho_weights[index] -= 2 * eps
        down = _elbo_loss(network, x, labels, kl_scale)
        layer.rho_weights[index] += eps
        numeric = (up - down) / (2 * eps)
        assert opt.grads[1][index] == pytest.approx(numeric, abs=1e-4)


class _ZeroRng:
    """Stub epsilon stream that always returns zeros (deterministic pass)."""

    def standard_normal(self, shape):
        return np.zeros(shape)


class TestBayesianNetwork:
    def test_training_reduces_loss(self):
        rng = np.random.default_rng(1)
        n = 80
        labels = rng.integers(0, 2, n)
        x = rng.normal(0, 0.4, (n, 6)) + labels[:, None]
        network = BayesianNetwork((6, 8, 2), seed=6, initial_sigma=0.03)
        from repro.bnn import Adam

        opt = Adam(5e-3)
        first_nll, _ = network.train_step(x, labels, opt, kl_scale=1.0 / n)
        for _ in range(60):
            last_nll, _ = network.train_step(x, labels, opt, kl_scale=1.0 / n)
        assert last_nll < first_nll

    def test_learns_separable_task(self):
        rng = np.random.default_rng(2)
        n = 120
        labels = rng.integers(0, 2, n)
        x = rng.normal(0, 0.3, (n, 8)) + labels[:, None] * 1.5
        network = BayesianNetwork((8, 8, 2), seed=7, initial_sigma=0.02)
        from repro.bnn import Adam, Trainer

        Trainer(network, Adam(5e-3), batch_size=20, epochs=25, seed=0).fit(x, labels)
        assert (network.predict(x, n_samples=10) == labels).mean() > 0.9

    def test_predict_proba_normalised(self):
        network = BayesianNetwork((4, 5, 3), seed=8)
        probs = network.predict_proba(np.zeros((2, 4)), n_samples=4)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_posterior_parameters_export(self):
        network = BayesianNetwork((4, 5, 3), seed=9, initial_sigma=0.04)
        posterior = network.posterior_parameters()
        assert len(posterior) == 2
        assert posterior[0]["mu_weights"].shape == (4, 5)
        assert np.allclose(posterior[0]["sigma_weights"], 0.04)
        # Exported copies must be decoupled from the live network.
        posterior[0]["mu_weights"][:] = 99.0
        assert not np.allclose(network.layers[0].mu_weights, 99.0)

    def test_weight_count(self):
        network = BayesianNetwork((4, 5, 3))
        assert network.weight_count() == (4 * 5 + 5) + (5 * 3 + 3)

    def test_kl_scale_validation(self):
        network = BayesianNetwork((3, 2))
        from repro.bnn import Adam

        with pytest.raises(ConfigurationError):
            network.train_step(np.zeros((1, 3)), np.array([0]), Adam(), -1.0)

    def test_mixture_prior_training_runs(self):
        rng = np.random.default_rng(3)
        n = 40
        labels = rng.integers(0, 2, n)
        x = rng.normal(0, 0.3, (n, 5)) + labels[:, None]
        network = BayesianNetwork(
            (5, 6, 2), prior=ScaleMixturePrior(0.5, 1.0, 0.0025), seed=10
        )
        from repro.bnn import Adam

        opt = Adam(3e-3)
        for _ in range(30):
            nll, kl = network.train_step(x, labels, opt, kl_scale=1.0 / n)
        assert np.isfinite(nll) and np.isfinite(kl)

    def test_layer_sizes_validation(self):
        with pytest.raises(ConfigurationError):
            BayesianNetwork((4,))
