"""Batched-vs-loop equivalence tests for the Monte-Carlo inference stack.

The batched path must be a pure reformulation: under a fixed seed it has
to reproduce the reference per-sample loop bit for bit — same epsilons,
same matmuls, same accumulation — for the internal per-layer streams, for
a plugged software GRNG, and (behind a :class:`~repro.grng.stream.GrngStream`)
for every registered generator.
"""

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.inference import (
    MonteCarloPredictor,
    split_epsilon_block,
    stacked_forward,
)
from repro.bnn.regression import BayesianRegressor
from repro.errors import ConfigurationError
from repro.grng import BnnWallaceGrng, GrngStream, NumpyGrng
from repro.grng.factory import available_grngs, make_grng
from repro.hw.weight_generator import WeightGenerator


def _net(seed=3):
    return BayesianNetwork((6, 9, 4), seed=seed, initial_sigma=0.05)


X = np.random.default_rng(0).random((23, 6))


class TestBatchedEquivalence:
    def test_internal_streams_bit_for_bit(self):
        batched = MonteCarloPredictor(_net(), grng=None, n_samples=13)
        loop = MonteCarloPredictor(_net(), grng=None, n_samples=13)
        assert np.array_equal(
            batched.predict_proba_batched(X), loop.predict_proba_loop(X)
        )

    def test_numpy_grng_bit_for_bit(self):
        batched = MonteCarloPredictor(_net(), grng=NumpyGrng(7), n_samples=13)
        loop = MonteCarloPredictor(_net(), grng=NumpyGrng(7), n_samples=13)
        assert np.array_equal(
            batched.predict_proba_batched(X), loop.predict_proba_loop(X)
        )

    @pytest.mark.parametrize("name", available_grngs())
    def test_every_generator_bit_for_bit_behind_stream(self, name):
        # GrngStream makes the epsilon stream call-pattern invariant, so
        # loop and batched consume identical values for ANY generator.
        batched = MonteCarloPredictor(
            _net(), grng=GrngStream(make_grng(name, 5), block_size=4096), n_samples=9
        )
        loop = MonteCarloPredictor(
            _net(), grng=GrngStream(make_grng(name, 5), block_size=4096), n_samples=9
        )
        assert np.array_equal(
            batched.predict_proba_batched(X), loop.predict_proba_loop(X)
        )

    def test_default_path_is_batched(self):
        predictor = MonteCarloPredictor(_net(), grng=NumpyGrng(1), n_samples=5)
        reference = MonteCarloPredictor(_net(), grng=NumpyGrng(1), n_samples=5)
        assert np.array_equal(
            predictor.predict_proba(X), reference.predict_proba_batched(X)
        )

    def test_batched_false_selects_loop(self):
        predictor = MonteCarloPredictor(
            _net(), grng=NumpyGrng(1), n_samples=5, batched=False
        )
        reference = MonteCarloPredictor(_net(), grng=NumpyGrng(1), n_samples=5)
        assert np.array_equal(
            predictor.predict_proba(X), reference.predict_proba_loop(X)
        )

    def test_predict_and_entropy_ride_the_batched_path(self):
        predictor = MonteCarloPredictor(_net(), grng=NumpyGrng(2), n_samples=8)
        probs = predictor.predict_proba(X)
        assert predictor.predict(X).shape == (X.shape[0],)
        entropy = MonteCarloPredictor(
            _net(), grng=NumpyGrng(2), n_samples=8
        ).predictive_entropy(X)
        expected = -(probs * np.log(np.clip(probs, 1e-300, None))).sum(axis=1)
        assert np.array_equal(entropy, expected)

    def test_probabilities_normalised(self):
        probs = MonteCarloPredictor(_net(), grng=NumpyGrng(3), n_samples=6).predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_batched_path_validates_input_shape(self):
        # The batched default must reject malformed input like the loop
        # path does, not broadcast it into silently wrong probabilities.
        predictor = MonteCarloPredictor(_net(), n_samples=2)
        with pytest.raises(ConfigurationError, match="expected input shape"):
            predictor.predict_proba(np.zeros(X.shape[1]))  # 1-D input
        with pytest.raises(ConfigurationError, match="expected input shape"):
            predictor.predict_proba(np.zeros((3, X.shape[1] + 1)))


class TestEpsilonBlockHelpers:
    def test_split_epsilon_block_shapes(self):
        net = _net()
        block = np.arange(3 * net.weight_count(), dtype=np.float64).reshape(3, -1)
        parts = split_epsilon_block(net.layers, block)
        assert len(parts) == len(net.layers)
        for layer, (eps_w, eps_b) in zip(net.layers, parts):
            assert eps_w.shape == (3,) + layer.mu_weights.shape
            assert eps_b.shape == (3,) + layer.mu_bias.shape

    def test_split_epsilon_block_rejects_wrong_width(self):
        net = _net()
        with pytest.raises(ConfigurationError):
            split_epsilon_block(net.layers, np.zeros((3, net.weight_count() + 1)))
        with pytest.raises(ConfigurationError):
            split_epsilon_block(net.layers, np.zeros((3, net.weight_count() - 1)))

    def test_stacked_forward_zero_eps_matches_mean_forward(self):
        net = _net()
        eps = [
            (np.zeros((2,) + l.mu_weights.shape), np.zeros((2,) + l.mu_bias.shape))
            for l in net.layers
        ]
        stacked = stacked_forward(net.layers, X, eps)
        mean_logits = net.forward(X, sample=False)
        assert np.allclose(stacked[0], mean_logits)
        assert np.allclose(stacked[1], mean_logits)


class TestRegressorBatched:
    def test_batched_matches_loop_bit_for_bit(self):
        x = np.random.default_rng(1).random((17, 2))
        mean_a, std_a = BayesianRegressor((2, 8, 1), seed=4).predict(x, n_samples=21)
        mean_b, std_b = BayesianRegressor((2, 8, 1), seed=4).predict_loop(
            x, n_samples=21
        )
        assert np.array_equal(mean_a, mean_b)
        assert np.array_equal(std_a, std_b)

    def test_grng_seam(self):
        x = np.random.default_rng(2).random((9, 2))
        mean, std = BayesianRegressor((2, 8, 1), seed=4).predict(
            x, n_samples=5, grng=GrngStream(BnnWallaceGrng(seed=2))
        )
        assert mean.shape == (9, 1) and std.shape == (9, 1)
        assert (std >= 0.1 - 1e-12).all()  # noise floor = noise_sigma

    def test_loop_path_rejects_grng(self):
        with pytest.raises(ConfigurationError):
            BayesianRegressor((2, 4, 1)).predict(
                np.zeros((2, 2)), n_samples=2, grng=NumpyGrng(0), batched=False
            )


class TestWeightGeneratorBlock:
    def test_first_row_matches_single_sample(self):
        # With a streamed source the block consumes the same stream slices
        # as sequential sample() calls, so row 0 must agree exactly.
        mu = np.arange(-10, 10, dtype=np.int64)
        sigma = np.full(20, 12, dtype=np.int64)
        block_gen = WeightGenerator(
            GrngStream(BnnWallaceGrng(seed=6), block_size=64), bit_length=8
        )
        single_gen = WeightGenerator(
            GrngStream(BnnWallaceGrng(seed=6), block_size=64), bit_length=8
        )
        block = block_gen.sample_block(mu, sigma, 3)
        assert block.shape == (3, 20)
        assert np.array_equal(block[0], single_gen.sample(mu, sigma))

    def test_sequential_samples_match_block_rows(self):
        mu = np.zeros(16, dtype=np.int64)
        sigma = np.full(16, 20, dtype=np.int64)
        block_gen = WeightGenerator(GrngStream(NumpyGrng(8)), bit_length=8)
        seq_gen = WeightGenerator(GrngStream(NumpyGrng(8)), bit_length=8)
        block = block_gen.sample_block(mu, sigma, 4)
        rows = np.stack([seq_gen.sample(mu, sigma) for _ in range(4)])
        assert np.array_equal(block, rows)

    def test_counter_and_validation(self):
        gen = WeightGenerator(NumpyGrng(0), bit_length=8)
        gen.sample_block(np.zeros((3, 2), dtype=np.int64), np.zeros((3, 2), dtype=np.int64), 5)
        assert gen.samples_generated == 30
        with pytest.raises(ConfigurationError):
            gen.sample_block(np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int64), 0)
