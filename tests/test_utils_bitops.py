"""Unit tests for repro.utils.bitops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.bitops import (
    bit_length_for,
    bits_to_int,
    int_to_bits,
    popcount,
    rotate_left,
    rotate_right,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_known_values(self):
        assert popcount(0b1011) == 3
        assert popcount(0xFF) == 8
        assert popcount(1 << 200) == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            popcount(-1)

    @given(st.integers(min_value=0, max_value=2**128))
    def test_matches_bin_count(self, value):
        assert popcount(value) == bin(value).count("1")


class TestIntBitsRoundtrip:
    def test_lsb_first(self):
        assert int_to_bits(0b110, 4).tolist() == [0, 1, 1, 0]

    def test_bits_to_int(self):
        assert bits_to_int(np.array([0, 1, 1, 0])) == 0b110

    def test_width_too_small(self):
        with pytest.raises(ConfigurationError):
            int_to_bits(16, 4)

    def test_negative_value(self):
        with pytest.raises(ConfigurationError):
            int_to_bits(-1, 4)

    def test_zero_width(self):
        with pytest.raises(ConfigurationError):
            int_to_bits(0, 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 64)) == value


class TestRotate:
    def test_rotate_left_basic(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010

    def test_rotate_left_wraps(self):
        assert rotate_left(0b1000, 1, 4) == 0b0001

    def test_rotate_right_inverse(self):
        assert rotate_right(rotate_left(0b1011, 3, 8), 3, 8) == 0b1011

    def test_full_rotation_identity(self):
        assert rotate_left(0b1011, 8, 8) == 0b1011

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=64),
    )
    def test_popcount_invariant(self, value, shift):
        assert popcount(rotate_left(value, shift, 8)) == popcount(value)


class TestBitLengthFor:
    def test_known(self):
        assert bit_length_for(255) == 8
        assert bit_length_for(256) == 9
        assert bit_length_for(1) == 1

    def test_nonpositive(self):
        with pytest.raises(ConfigurationError):
            bit_length_for(0)
