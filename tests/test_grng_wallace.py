"""Tests for the software Wallace GRNG and the Hadamard transform (§4.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat
from repro.grng.wallace import (
    HADAMARD_4,
    SoftwareWallaceGrng,
    hadamard_transform,
    hadamard_transform_codes,
)


class TestHadamardMatrix:
    def test_scaled_matrix_is_orthogonal(self):
        a = HADAMARD_4 / 2.0
        assert np.allclose(a @ a.T, np.eye(4))

    def test_transform_matches_matrix_product(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(4)
        assert np.allclose(hadamard_transform(x), (HADAMARD_4 / 2.0) @ x)

    def test_eq13_form(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        t = x.sum() / 2.0
        expected = [t - x[0], t - x[1], x[2] - t, x[3] - t]
        assert np.allclose(hadamard_transform(x), expected)

    def test_norm_preserved(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((100, 4))
        y = hadamard_transform(x)
        assert np.allclose((y**2).sum(axis=1), (x**2).sum(axis=1))

    def test_batch_shape(self):
        x = np.zeros((5, 7, 4))
        assert hadamard_transform(x).shape == (5, 7, 4)

    def test_rejects_non_quadruple(self):
        with pytest.raises(ConfigurationError):
            hadamard_transform(np.zeros(5))

    @given(st.lists(st.floats(-100, 100), min_size=4, max_size=4))
    def test_energy_conservation_property(self, values):
        x = np.array(values)
        y = hadamard_transform(x)
        assert np.isclose((y**2).sum(), (x**2).sum(), rtol=1e-9, atol=1e-6)


class TestHadamardCodes:
    def test_integer_transform_close_to_float(self):
        fmt = QFormat(3, 12)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((50, 4))
        codes = fmt.quantize(x)
        got = hadamard_transform_codes(codes, fmt)
        want = fmt.quantize(hadamard_transform(fmt.dequantize(codes)))
        # Floor-shift truncation may differ from rounding by 1 ulp.
        assert np.abs(got - want).max() <= 1

    def test_rejects_non_quadruple(self):
        with pytest.raises(ConfigurationError):
            hadamard_transform_codes(np.zeros(3, dtype=np.int64), QFormat(3, 12))

    def test_saturates(self):
        fmt = QFormat(2, 5)
        x = np.array([fmt.max_int] * 4)
        out = hadamard_transform_codes(x, fmt)
        assert out.max() <= fmt.max_int and out.min() >= fmt.min_int


class TestSoftwareWallace:
    def test_pool_size_validation(self):
        with pytest.raises(ConfigurationError):
            SoftwareWallaceGrng(pool_size=10)
        with pytest.raises(ConfigurationError):
            SoftwareWallaceGrng(pool_size=4)

    def test_transform_passes_validation(self):
        with pytest.raises(ConfigurationError):
            SoftwareWallaceGrng(transform_passes=0)

    def test_pool_norm_invariant_under_refresh(self):
        # The orthogonal transform freezes the pool's second moment: the
        # stability error is inherited from the initial pool draw.
        grng = SoftwareWallaceGrng(pool_size=256, seed=0)
        norm_before = float((grng.pool**2).sum())
        for _ in range(10):
            grng.refresh()
        assert float((grng.pool**2).sum()) == pytest.approx(norm_before, rel=1e-9)

    def test_generate_count(self):
        grng = SoftwareWallaceGrng(pool_size=64, seed=1)
        assert grng.generate(100).shape == (100,)
        assert grng.generate(0).shape == (0,)

    def test_moments_reasonable(self):
        samples = SoftwareWallaceGrng(pool_size=4096, seed=2).generate(50_000)
        assert abs(samples.mean()) < 0.05
        assert abs(samples.std() - 1.0) < 0.05

    def test_deterministic_given_seed(self):
        a = SoftwareWallaceGrng(pool_size=64, seed=3).generate(50)
        b = SoftwareWallaceGrng(pool_size=64, seed=3).generate(50)
        assert (a == b).all()

    def test_stability_improves_with_pool_size_on_average(self):
        # Table 1 shape: sigma error decreases with pool size.  Average over
        # seeds since a single draw is noisy.
        def mean_sigma_error(pool_size):
            errors = []
            for seed in range(10):
                samples = SoftwareWallaceGrng(pool_size=pool_size, seed=seed).generate(4096)
                errors.append(abs(samples.std() - 1.0))
            return np.mean(errors)

        assert mean_sigma_error(64) > mean_sigma_error(4096)
