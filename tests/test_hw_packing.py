"""Tests for memory word packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.packing import pack_word, unpack_word


class TestPacking:
    def test_roundtrip_basic(self):
        codes = np.array([1, -2, 127, -128])
        word = pack_word(codes, 8)
        assert (unpack_word(word, 8, 4) == codes).all()

    def test_field_layout_lsb_first(self):
        word = pack_word(np.array([1, 2]), 8)
        assert word == 1 | (2 << 8)

    def test_negative_two_complement(self):
        word = pack_word(np.array([-1]), 8)
        assert word == 0xFF

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_word(np.array([128]), 8)
        with pytest.raises(ConfigurationError):
            pack_word(np.array([-129]), 8)

    def test_unpack_validation(self):
        with pytest.raises(ConfigurationError):
            unpack_word(-1, 8, 2)
        with pytest.raises(ConfigurationError):
            unpack_word(0, 1, 2)
        with pytest.raises(ConfigurationError):
            unpack_word(0, 8, 0)

    @given(
        st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=16)
    )
    def test_roundtrip_property(self, values):
        codes = np.array(values)
        assert (unpack_word(pack_word(codes, 8), 8, len(values)) == codes).all()

    @given(st.integers(min_value=2, max_value=16))
    def test_roundtrip_any_width(self, bits):
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        codes = np.array([low, high, 0])
        assert (unpack_word(pack_word(codes, bits), bits, 3) == codes).all()
