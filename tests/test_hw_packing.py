"""Tests for memory word packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.packing import pack_word, pack_words, unpack_word, unpack_words


class TestPacking:
    def test_roundtrip_basic(self):
        codes = np.array([1, -2, 127, -128])
        word = pack_word(codes, 8)
        assert (unpack_word(word, 8, 4) == codes).all()

    def test_field_layout_lsb_first(self):
        word = pack_word(np.array([1, 2]), 8)
        assert word == 1 | (2 << 8)

    def test_negative_two_complement(self):
        word = pack_word(np.array([-1]), 8)
        assert word == 0xFF

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_word(np.array([128]), 8)
        with pytest.raises(ConfigurationError):
            pack_word(np.array([-129]), 8)

    def test_unpack_validation(self):
        with pytest.raises(ConfigurationError):
            unpack_word(-1, 8, 2)
        with pytest.raises(ConfigurationError):
            unpack_word(0, 1, 2)
        with pytest.raises(ConfigurationError):
            unpack_word(0, 8, 0)

    @given(
        st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=16)
    )
    def test_roundtrip_property(self, values):
        codes = np.array(values)
        assert (unpack_word(pack_word(codes, 8), 8, len(values)) == codes).all()

    @given(st.integers(min_value=2, max_value=16))
    def test_roundtrip_any_width(self, bits):
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        codes = np.array([low, high, 0])
        assert (unpack_word(pack_word(codes, bits), bits, 3) == codes).all()


class TestVectorisedPacking:
    """pack_words/unpack_words must match the scalar functions exactly."""

    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_pack_words_matches_pack_word(self, bits, n_words, count, seed):
        rng = np.random.default_rng(seed)
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        codes = rng.integers(low, high + 1, size=(n_words, count))
        words = pack_words(codes, bits)
        assert words.dtype == object
        for index in range(n_words):
            assert words[index] == pack_word(codes[index], bits)

    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_unpack_words_matches_unpack_word(self, bits, n_words, count, seed):
        rng = np.random.default_rng(seed)
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        codes = rng.integers(low, high + 1, size=(n_words, count))
        words = pack_words(codes, bits)
        unpacked = unpack_words(words, bits, count)
        assert unpacked.shape == (n_words, count)
        for index in range(n_words):
            assert (unpacked[index] == unpack_word(int(words[index]), bits, count)).all()
        assert (unpacked == codes).all()

    def test_wide_words_beyond_64_bits(self):
        # A paper-design WPMem word: 64 8-bit fields = 512 bits.
        rng = np.random.default_rng(0)
        codes = rng.integers(-128, 128, size=(5, 64))
        words = pack_words(codes, 8)
        for index in range(5):
            assert words[index] == pack_word(codes[index], 8)
        assert (unpack_words(words, 8, 64) == codes).all()

    def test_empty_word_array(self):
        assert pack_words(np.empty((0, 4), dtype=np.int64), 8).shape == (0,)
        assert unpack_words(np.empty(0, dtype=object), 8, 4).shape == (0, 4)

    def test_extra_high_bits_ignored(self):
        # unpack_word ignores bits past the last field; the vector form must too.
        word = pack_word(np.array([3, -2]), 8) | (1 << 63)
        want = unpack_word(word, 8, 2)
        got = unpack_words(np.array([word], dtype=object), 8, 2)
        assert (got[0] == want).all()

    def test_pack_words_validation(self):
        with pytest.raises(ConfigurationError):
            pack_words(np.array([1, 2]), 8)  # 1-D rejected
        with pytest.raises(ConfigurationError):
            pack_words(np.array([[1]]), 1)
        with pytest.raises(ConfigurationError):
            pack_words(np.array([[128]]), 8)
        with pytest.raises(ConfigurationError):
            pack_words(np.empty((2, 0), dtype=np.int64), 8)
        with pytest.raises(ConfigurationError):
            pack_words(np.array([[1]]), 63)  # beyond the int64 field bound

    def test_unpack_words_validation(self):
        with pytest.raises(ConfigurationError):
            unpack_words(np.array([-1], dtype=object), 8, 2)
        with pytest.raises(ConfigurationError):
            unpack_words(np.array([3.7], dtype=object), 8, 2)  # floats rejected
        with pytest.raises(ConfigurationError):
            unpack_words(np.array([0], dtype=object), 1, 2)
        with pytest.raises(ConfigurationError):
            unpack_words(np.array([0], dtype=object), 8, 0)
        with pytest.raises(ConfigurationError):
            unpack_words(np.array([[0]], dtype=object), 8, 2)  # 2-D rejected
