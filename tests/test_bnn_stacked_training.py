"""Tests for the vectorized training layer: stacked eq.(6) evaluation,
patch-cached conv training, and the Trainer driving conv BNNs.

The contract throughout is *bit-for-bit* equality with the kept
per-sample / per-position references — the same recipe the inference and
hardware layers follow.
"""

import numpy as np
import pytest

from repro.bnn import Adam, Trainer
from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.conv_network import BayesianConvNetwork
from repro.errors import ConfigurationError, TrainingError


def _twin_dense(seed=3, sizes=(20, 12, 4)):
    return BayesianNetwork(sizes, seed=seed), BayesianNetwork(sizes, seed=seed)


def _twin_conv(seed=5):
    make = lambda: BayesianConvNetwork(  # noqa: E731
        (1, 12, 12), conv_channels=(4, 3), n_classes=5, seed=seed
    )
    return make(), make()


class TestStackedPredictProba:
    def test_dense_stacked_equals_loop(self):
        fast, reference = _twin_dense()
        x = np.random.default_rng(0).random((17, 20))
        assert np.array_equal(
            fast.predict_proba(x, n_samples=7),
            reference.predict_proba_loop(x, n_samples=7),
        )

    def test_dense_stream_state_preserved(self):
        # After one stacked call the layers' epsilon streams must sit at
        # the same position as after the loop, so subsequent calls agree.
        fast, reference = _twin_dense()
        x = np.random.default_rng(1).random((9, 20))
        fast.predict_proba(x, n_samples=3)
        reference.predict_proba_loop(x, n_samples=3)
        assert np.array_equal(
            fast.predict_proba(x, n_samples=2),
            reference.predict_proba_loop(x, n_samples=2),
        )

    def test_conv_stacked_equals_loop(self):
        fast, reference = _twin_conv()
        x = np.random.default_rng(2).random((8, 1, 12, 12))
        assert np.array_equal(
            fast.predict_proba(x, n_samples=6),
            reference.predict_proba_loop(x, n_samples=6),
        )

    def test_conv_stream_state_preserved(self):
        fast, reference = _twin_conv()
        x = np.random.default_rng(3).random((4, 1, 12, 12))
        fast.predict_proba(x, n_samples=2)
        reference.predict_proba_loop(x, n_samples=2)
        assert np.array_equal(
            fast.predict_proba(x, n_samples=2),
            reference.predict_proba_loop(x, n_samples=2),
        )

    def test_conv_input_validation(self):
        network, _ = _twin_conv()
        with pytest.raises(ConfigurationError):
            network.predict_proba(np.zeros((2, 1, 10, 10)), n_samples=2)
        with pytest.raises(ConfigurationError):
            network.predict_proba(np.zeros((2, 1, 12, 12)), n_samples=0)


class TestPatchCachedTraining:
    def test_precomputed_patches_train_identically(self):
        rng = np.random.default_rng(4)
        x = rng.random((24, 1, 8, 8))
        labels = rng.integers(0, 2, 24)
        cached, plain = (
            BayesianConvNetwork((1, 8, 8), conv_channels=(4,), n_classes=2, seed=0)
            for _ in range(2)
        )
        optimizers = (Adam(1e-3), Adam(1e-3))
        patches = cached.precompute_patches(x)
        for start in range(0, 24, 8):
            stop = start + 8
            result_cached = cached.train_step(
                x[start:stop], labels[start:stop], optimizers[0], 1 / 24,
                patches=patches[start:stop],
            )
            result_plain = plain.train_step(
                x[start:stop], labels[start:stop], optimizers[1], 1 / 24
            )
            assert result_cached == result_plain
        for left, right in zip(
            [*cached.conv_layers, cached.head], [*plain.conv_layers, plain.head]
        ):
            assert np.array_equal(left.mu_weights, right.mu_weights)
            assert np.array_equal(left.rho_weights, right.rho_weights)

    def test_first_layer_skips_input_gradient(self):
        network = BayesianConvNetwork((1, 8, 8), conv_channels=(4,), n_classes=2, seed=0)
        x = np.random.default_rng(5).random((4, 1, 8, 8))
        network.forward(x, sample=True)
        grad = np.ones((4, 4, 8, 8))
        assert (
            network.conv_layers[0].backward(
                grad, 0.0, network.prior, need_input_grad=False
            )
            is None
        )

    def test_train_step_returns_nll_and_kl(self):
        # The reported KL is the pre-update posterior's: a twin network
        # run to the same point (forward advances the same eps streams)
        # must report the identical value.
        network = BayesianConvNetwork((1, 8, 8), conv_channels=(4,), n_classes=2, seed=0)
        twin = BayesianConvNetwork((1, 8, 8), conv_channels=(4,), n_classes=2, seed=0)
        x = np.random.default_rng(6).random((6, 1, 8, 8))
        labels = np.array([0, 1, 0, 1, 0, 1])
        nll, kl = network.train_step(x, labels, Adam(1e-3), kl_scale=0.1)
        assert np.isfinite(nll) and np.isfinite(kl)
        twin.forward(x, sample=True)
        assert kl == twin.kl_divergence()


class TestTrainerWithConvNetworks:
    def test_trainer_fits_conv_bnn(self):
        rng = np.random.default_rng(7)
        n = 40
        labels = rng.integers(0, 2, n)
        x = rng.normal(0, 0.1, (n, 1, 8, 8))
        x[labels == 1, 0, :, 4:] += 1.0
        x[labels == 0, 0, :, :4] += 1.0
        network = BayesianConvNetwork(
            (1, 8, 8), conv_channels=(4,), n_classes=2, seed=0, initial_sigma=0.02
        )
        history = Trainer(network, Adam(5e-3), batch_size=8, epochs=3, seed=0).fit(
            x, labels, x, labels, eval_samples=4
        )
        assert history.epochs == 3
        assert len(history.test_accuracy) == 3
        assert all(np.isfinite(v) for v in history.kl)

    def test_trainer_validates_eval_samples_before_training(self):
        # The bad value must surface immediately, not after an epoch of
        # training has already been burned inside predict().
        network = BayesianNetwork((6, 4, 2), seed=0)
        trainer = Trainer(network, epochs=50)
        with pytest.raises(ConfigurationError, match="eval_samples"):
            trainer.fit(np.zeros((10, 6)), np.zeros(10, dtype=int), eval_samples=0)


class TestRegressorDivergenceCheck:
    # Driving the loss to infinity necessarily trips numpy's inf/nan
    # arithmetic warnings on the way down; they are the point, not a bug.
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_non_finite_loss_raises(self):
        from repro.bnn.regression import BayesianRegressor

        x = np.linspace(0, 1, 16)[:, None]
        targets = np.full((16, 1), np.inf)
        regressor = BayesianRegressor((1, 4, 1), seed=0)
        with pytest.raises(TrainingError, match="diverged"):
            regressor.fit(x, targets, Adam(1e-3), epochs=3)

    def test_healthy_run_unaffected(self):
        from repro.bnn.regression import BayesianRegressor

        rng = np.random.default_rng(8)
        x = rng.random((32, 1))
        targets = 2.0 * x + rng.normal(0, 0.05, (32, 1))
        history = BayesianRegressor((1, 8, 1), seed=0).fit(
            x, targets, Adam(1e-3), epochs=2
        )
        assert len(history) == 2
        assert all(np.isfinite(v) for v in history)
