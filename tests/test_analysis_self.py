"""reprolint over this repository's own live tree.

The committed tree must stay clean: zero non-baselined findings, and the
committed baseline must stay *minimal* — every entry still matches a real
finding (no stale grandfather entries) and carries a written reason.
This is the smoke test the acceptance criteria ask for; CI additionally
runs ``python -m repro.cli lint`` as its own job.
"""

from __future__ import annotations

from repro.analysis import Baseline, default_root, default_rules, lint_project


def _baseline():
    path = default_root() / "analysis-baseline.json"
    return Baseline.load(path) if path.exists() else Baseline()


def test_live_tree_has_no_new_findings():
    report = lint_project(default_root(), baseline=_baseline())
    rendered = report.render()
    assert report.clean, f"reprolint found new violations:\n{rendered}"


def test_committed_baseline_is_minimal():
    report = lint_project(default_root(), baseline=_baseline())
    assert report.stale_baseline == [], (
        "baseline entries no longer match any finding — remove them: "
        f"{report.stale_baseline}"
    )


def test_committed_baseline_entries_have_reasons():
    for fingerprint, reason in _baseline().entries.items():
        assert reason.strip(), f"baseline entry {fingerprint} has no reason"


def test_every_default_rule_fires_on_the_tree_or_its_fixtures():
    """Guard against vacuous rules: each rule id must appear somewhere in
    the combined (pre-baseline, pre-suppression) result set of the live
    tree.  RL001 fires on the baselined NumpyGrng seam; the others must
    keep finding their subjects (kernel pairs, grng overrides, raises,
    lock-guarded attributes) — if a rule silently stops matching anything
    it analyses, this fails before the rule rots.
    """
    report = lint_project(default_root())
    rule_ids = {rule.id for rule in default_rules()}
    # Rules prove non-vacuity differently: RL001's finding is baselined
    # (still visible pre-baseline here since no baseline was passed);
    # the rest prove it by analysing real subjects without findings, so
    # assert on their *inputs* instead via the engine's collected data.
    seen = {finding.rule for finding in report.new + report.suppressed}
    assert "RL001" in seen  # the baselined NumpyGrng fallback
    assert rule_ids == {
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL005",
        "RL006",
        "RL007",
    }
