"""Integration tests for the assembled accelerator.

The load-bearing checks:

* the detailed word-level datapath (PE sets + packed dual-port memories)
  computes bit-identical activations to the vectorised functional model;
* the accelerator's functional output matches
  :class:`~repro.bnn.quantized.QuantizedBayesianNetwork` exactly (same
  GRNG, same formats);
* cycle/energy accounting is consistent with the schedule.
"""

import numpy as np
import pytest

from repro.bnn import BayesianNetwork
from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.errors import ConfigurationError
from repro.fixedpoint import requantize
from repro.grng import BnnWallaceGrng, GrngStream, ParallelRlfGrng
from repro.hw.accelerator import (
    DetailedDatapathSimulator,
    VibnnAccelerator,
    default_grng,
)
from repro.hw.config import ArchitectureConfig

SMALL_CFG = ArchitectureConfig(pe_sets=2, pes_per_set=4, pe_inputs=4, bit_length=8)


def _tiny_posterior(seed=0, sizes=(12, 9, 4)):
    network = BayesianNetwork(sizes, seed=seed, initial_sigma=0.05)
    return network.posterior_parameters(), sizes


def _vectorised_layer(x_codes, w, b_acc, cfg, *, apply_relu):
    """Reference math shared with QuantizedBayesianNetwork.forward_sample_codes."""
    acc_frac = cfg.weight_format.frac_bits + cfg.activation_format.frac_bits
    wide = x_codes.astype(np.int64) @ w.astype(np.int64) + b_acc
    acc = requantize(wide, acc_frac, cfg.activation_format)
    return np.maximum(acc, 0) if apply_relu else acc


class TestDetailedDatapath:
    def test_layer_matches_vectorised_reference(self):
        rng = np.random.default_rng(0)
        w_fmt = SMALL_CFG.weight_format
        a_fmt = SMALL_CFG.activation_format
        acc_frac = w_fmt.frac_bits + a_fmt.frac_bits
        for in_f, out_f in [(4, 4), (10, 9), (16, 8), (7, 17)]:
            w = w_fmt.quantize(rng.uniform(-0.9, 0.9, (in_f, out_f)))
            b = np.round(rng.uniform(-0.5, 0.5, out_f) * (1 << acc_frac)).astype(np.int64)
            x = a_fmt.quantize(rng.uniform(0, 1, in_f))
            sim = DetailedDatapathSimulator(SMALL_CFG)
            got = sim.run_layer(x, w, b, apply_relu=True)
            want = _vectorised_layer(x[None, :], w, b, SMALL_CFG, apply_relu=True)[0]
            assert (got == want).all(), (in_f, out_f)

    def test_network_matches_functional_model(self):
        posterior, sizes = _tiny_posterior()
        grng = ParallelRlfGrng(lanes=8, seed=1)
        functional = QuantizedBayesianNetwork(posterior, bit_length=8, grng=grng, seed=1)
        x = np.random.default_rng(2).uniform(0, 1, (1, sizes[0]))
        x_codes = functional.act_fmt.quantize(x)
        # Sample the weights once through the functional model's updater...
        sampled = [functional._sample_layer_weights(layer) for layer in functional.layers]
        # ...and run them through BOTH datapaths.
        sim = DetailedDatapathSimulator(SMALL_CFG)
        detailed = sim.run_network(x_codes[0], sampled)
        hidden = x_codes
        for index, (w, b) in enumerate(sampled):
            hidden = _vectorised_layer(
                hidden, w, b, SMALL_CFG, apply_relu=(index < len(sampled) - 1)
            )
        assert (detailed == hidden[0]).all()

    def test_port_budgets_respected(self):
        # Runs without MemoryPortConflictError across several layer shapes.
        rng = np.random.default_rng(3)
        w_fmt = SMALL_CFG.weight_format
        a_fmt = SMALL_CFG.activation_format
        sim = DetailedDatapathSimulator(SMALL_CFG)
        for _ in range(3):
            w = w_fmt.quantize(rng.uniform(-0.9, 0.9, (12, 10)))
            b = np.zeros(10, dtype=np.int64)
            x = a_fmt.quantize(rng.uniform(0, 1, 12))
            sim.run_layer(x, w, b, apply_relu=True)
        assert sim.cycles > 0


class TestBatchedDetailedDatapath:
    def _random_layer(self, rng, passes, batch, in_f, out_f, *, shared):
        w_fmt = SMALL_CFG.weight_format
        a_fmt = SMALL_CFG.activation_format
        acc_frac = w_fmt.frac_bits + a_fmt.frac_bits
        weights = w_fmt.quantize(rng.uniform(-0.9, 0.9, (passes, in_f, out_f)))
        biases = np.round(
            rng.uniform(-0.5, 0.5, (passes, out_f)) * (1 << acc_frac)
        ).astype(np.int64)
        shape = (batch, in_f) if shared else (passes, batch, in_f)
        features = a_fmt.quantize(rng.uniform(0, 1, shape))
        return features, weights, biases

    @pytest.mark.parametrize("shared", [True, False])
    @pytest.mark.parametrize("in_f,out_f", [(4, 4), (10, 9), (16, 8), (7, 17)])
    def test_layer_batch_matches_per_run_loop(self, shared, in_f, out_f):
        rng = np.random.default_rng(5)
        passes, batch = 3, 4
        features, weights, biases = self._random_layer(
            rng, passes, batch, in_f, out_f, shared=shared
        )
        sim_batch = DetailedDatapathSimulator(SMALL_CFG)
        got = sim_batch.run_layer_batch(features, weights, biases, apply_relu=True)
        assert got.shape == (passes, batch, out_f)
        sim_loop = DetailedDatapathSimulator(SMALL_CFG)
        for p in range(passes):
            for b in range(batch):
                row = features[b] if shared else features[p, b]
                want = sim_loop.run_layer(
                    row, weights[p], biases[p], apply_relu=True
                )
                assert (got[p, b] == want).all(), (p, b)
        # Aggregate cycle accounting identical to the per-run loop.
        assert sim_batch.cycles == sim_loop.cycles

    def test_network_batch_matches_loop_and_functional(self):
        posterior, sizes = _tiny_posterior()
        x = np.random.default_rng(6).uniform(0, 1, (5, sizes[0]))
        for kind, make in [
            ("rlf", lambda: GrngStream(ParallelRlfGrng(lanes=8, seed=2))),
            ("bnnwallace", lambda: GrngStream(BnnWallaceGrng(units=4, pool_size=64, seed=2))),
        ]:
            nets = [
                QuantizedBayesianNetwork(posterior, bit_length=8, grng=make(), seed=2)
                for _ in range(3)
            ]
            x_codes = nets[0].act_fmt.quantize(x)
            n_samples = 3
            sim_batch = DetailedDatapathSimulator(SMALL_CFG)
            batched = sim_batch.run_network_batch(nets[0], x_codes, n_samples)
            sampled = nets[1].sample_weight_stacks(n_samples)
            sim_loop = DetailedDatapathSimulator(SMALL_CFG)
            for p in range(n_samples):
                per_pass = [(w[p], b[p]) for w, b in sampled]
                for image in range(x_codes.shape[0]):
                    want = sim_loop.run_network(x_codes[image], per_pass)
                    assert (batched[p, image] == want).all(), (kind, p, image)
            assert sim_batch.cycles == sim_loop.cycles, kind
            functional = nets[2].forward_stacked_codes(x_codes, n_samples)
            assert (batched == functional).all(), kind

    def test_validation(self):
        sim = DetailedDatapathSimulator(SMALL_CFG)
        with pytest.raises(ConfigurationError):
            sim.run_layer_batch(
                np.zeros((2, 4)), np.zeros((3, 4)), np.zeros((3, 2)), apply_relu=True
            )  # 2-D weights
        with pytest.raises(ConfigurationError):
            sim.run_layer_batch(
                np.zeros((2, 5)),
                np.zeros((3, 4, 2)),
                np.zeros((3, 2)),
                apply_relu=True,
            )  # feature width mismatch
        with pytest.raises(ConfigurationError):
            sim.run_layer_batch(
                np.zeros((2, 2, 4)),
                np.zeros((3, 4, 2)),
                np.zeros((3, 2)),
                apply_relu=True,
            )  # pass-count mismatch
        with pytest.raises(ConfigurationError):
            sim.run_layer_batch(
                np.zeros((2, 4)),
                np.zeros((3, 4, 2)),
                np.zeros((3, 3)),
                apply_relu=True,
            )  # bias mismatch
        posterior, sizes = _tiny_posterior()
        network = QuantizedBayesianNetwork(posterior, bit_length=4)
        with pytest.raises(ConfigurationError):
            sim.run_network_batch(network, np.zeros((2, sizes[0]), dtype=np.int64), 2)
        network8 = QuantizedBayesianNetwork(posterior, bit_length=8)
        with pytest.raises(ConfigurationError):
            sim.run_network_batch(network8, np.zeros(sizes[0], dtype=np.int64), 2)


class TestVibnnAccelerator:
    def test_matches_quantized_network_exactly(self):
        posterior, sizes = _tiny_posterior(seed=4)
        accelerator = VibnnAccelerator(SMALL_CFG, posterior, seed=7)
        reference = QuantizedBayesianNetwork(
            posterior,
            bit_length=SMALL_CFG.bit_length,
            grng=default_grng(SMALL_CFG, seed=7),
            seed=7,
        )
        x = np.random.default_rng(5).uniform(0, 1, (6, sizes[0]))
        got = accelerator.infer(x, n_samples=3)
        want = reference.predict_proba(x, n_samples=3)
        assert np.allclose(got.probabilities, want)

    def test_inference_result_accounting(self):
        posterior, sizes = _tiny_posterior(seed=6)
        accelerator = VibnnAccelerator(SMALL_CFG, posterior, seed=0)
        x = np.random.default_rng(6).uniform(0, 1, (4, sizes[0]))
        result = accelerator.infer(x, n_samples=2)
        assert result.n_images == 4
        assert result.cycles == accelerator.schedule.cycles_per_image(2) * 4
        assert result.images_per_second == pytest.approx(4 / result.seconds)
        assert result.images_per_joule == pytest.approx(4 / result.joules)

    def test_throughput_matches_schedule(self):
        posterior, _ = _tiny_posterior(seed=8)
        accelerator = VibnnAccelerator(SMALL_CFG, posterior, seed=0)
        assert accelerator.images_per_second() == pytest.approx(
            accelerator.schedule.images_per_second()
        )

    def test_wallace_grng_design(self):
        cfg = ArchitectureConfig(
            pe_sets=2, pes_per_set=4, pe_inputs=4, bit_length=8, grng_kind="bnnwallace"
        )
        assert isinstance(default_grng(cfg, 0), BnnWallaceGrng)
        posterior, sizes = _tiny_posterior(seed=9)
        accelerator = VibnnAccelerator(cfg, posterior, seed=0)
        x = np.random.default_rng(7).uniform(0, 1, (2, sizes[0]))
        result = accelerator.infer(x)
        assert result.predictions.shape == (2,)

    def test_accuracy_close_to_float_model(self):
        # End-to-end sanity: the 8-bit accelerator should classify (almost)
        # as well as the float software BNN on an easy separable task.
        rng = np.random.default_rng(10)
        n = 120
        labels = rng.integers(0, 2, n)
        x = rng.normal(0, 0.3, (n, 12)) + labels[:, None] * 1.5
        network = BayesianNetwork((12, 8, 2), seed=11, initial_sigma=0.02)
        from repro.bnn import Adam, Trainer

        Trainer(network, Adam(5e-3), batch_size=16, epochs=30, seed=0).fit(x, labels)
        float_acc = (network.predict(x, n_samples=10) == labels).mean()
        accelerator = VibnnAccelerator(SMALL_CFG, network.posterior_parameters(), seed=0)
        hw_acc = (accelerator.infer(x, n_samples=10).predictions == labels).mean()
        assert float_acc > 0.9
        assert hw_acc > float_acc - 0.06

    def test_resource_report(self):
        posterior, _ = _tiny_posterior(seed=13)
        accelerator = VibnnAccelerator(SMALL_CFG, posterior, seed=0)
        report = accelerator.resource_report()
        assert report.alms > 0 and report.memory_bits > 0

    def test_input_validation(self):
        posterior, _ = _tiny_posterior(seed=12)
        accelerator = VibnnAccelerator(SMALL_CFG, posterior, seed=0)
        with pytest.raises(ConfigurationError):
            accelerator.infer(np.zeros(12))  # 1-D rejected
