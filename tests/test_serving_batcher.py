"""Tests for the micro-batching scheduler and prediction tickets."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServiceOverloaded, ServingError
from repro.serving.batcher import MicroBatcher, PredictionTicket


def _submit(batcher, model="m", value=0.0):
    ticket = PredictionTicket(model)
    batcher.submit(np.full(3, value), ticket)
    return ticket


class TestPredictionTicket:
    def test_resolves_with_result(self):
        ticket = PredictionTicket("m")
        assert not ticket.done()
        ticket.set_result(np.array([0.25, 0.75]))
        assert ticket.done()
        assert np.array_equal(ticket.result(), [0.25, 0.75])
        assert ticket.latency() >= 0.0

    def test_propagates_exception(self):
        ticket = PredictionTicket("m")
        ticket.set_exception(ConfigurationError("boom"))
        with pytest.raises(ConfigurationError, match="boom"):
            ticket.result()

    def test_result_times_out(self):
        ticket = PredictionTicket("m")
        with pytest.raises(ServingError, match="timed out"):
            ticket.result(timeout=0.01)

    def test_latency_requires_completion(self):
        with pytest.raises(ServingError):
            PredictionTicket("m").latency()


class TestMicroBatcherConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_wait_ms=-1.0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_batch=8, capacity=4)


class TestMicroBatcher:
    def test_empty_tick_is_noop(self):
        batcher = MicroBatcher(max_batch=4, capacity=8)
        assert batcher.drain_tick() is None
        assert batcher.pending() == 0

    def test_drain_preserves_submission_order(self):
        batcher = MicroBatcher(max_batch=4, capacity=8)
        for value in range(3):
            _submit(batcher, value=float(value))
        batch = batcher.drain_tick()
        assert len(batch) == 3 and batch.model == "m"
        assert [row[0] for row in batch.rows] == [0.0, 1.0, 2.0]
        assert np.array_equal(batch.stack()[:, 0], [0.0, 1.0, 2.0])
        assert batcher.pending() == 0

    def test_max_batch_splits_queue(self):
        batcher = MicroBatcher(max_batch=2, capacity=8)
        tickets = [_submit(batcher, value=float(v)) for v in range(5)]
        assert len(batcher.drain_tick()) == 2
        assert len(batcher.drain_tick()) == 2
        last = batcher.drain_tick()
        assert len(last) == 1 and last.tickets[0] is tickets[-1]

    def test_single_model_per_batch(self):
        batcher = MicroBatcher(max_batch=4, capacity=8)
        _submit(batcher, model="a", value=1.0)
        _submit(batcher, model="b", value=2.0)
        _submit(batcher, model="a", value=3.0)
        batch = batcher.drain_tick()
        assert batch.model == "a" and len(batch) == 2
        assert [row[0] for row in batch.rows] == [1.0, 3.0]
        remaining = batcher.drain_tick()
        assert remaining.model == "b" and len(remaining) == 1

    def test_queue_full_backpressure(self):
        batcher = MicroBatcher(max_batch=2, capacity=2)
        _submit(batcher)
        _submit(batcher)
        with pytest.raises(ServiceOverloaded, match="queue full"):
            _submit(batcher)
        # Draining frees capacity again.
        batcher.drain_tick()
        _submit(batcher)

    def test_submit_reports_depth(self):
        batcher = MicroBatcher(max_batch=4, capacity=8)
        ticket = PredictionTicket("m")
        assert batcher.submit(np.zeros(3), ticket) == 1
        assert batcher.submit(np.zeros(3), PredictionTicket("m")) == 2

    def test_next_batch_times_out_empty(self):
        batcher = MicroBatcher(max_batch=4, capacity=8)
        assert batcher.next_batch(timeout=0.01) is None

    def test_next_batch_returns_immediately_when_full(self):
        batcher = MicroBatcher(max_batch=2, max_wait_ms=10_000.0, capacity=8)
        _submit(batcher)
        _submit(batcher)
        batch = batcher.next_batch(timeout=0.1)
        assert len(batch) == 2

    def test_next_batch_dispatches_partial_after_max_wait(self):
        batcher = MicroBatcher(max_batch=64, max_wait_ms=5.0, capacity=128)
        _submit(batcher)
        batch = batcher.next_batch(timeout=0.1)
        assert batch is not None and len(batch) == 1

    def test_next_batch_waits_for_fill(self):
        batcher = MicroBatcher(max_batch=2, max_wait_ms=500.0, capacity=8)
        _submit(batcher)
        filler = threading.Timer(0.02, lambda: _submit(batcher))
        filler.start()
        try:
            batch = batcher.next_batch(timeout=0.5)
        finally:
            filler.join()
        assert len(batch) == 2

    def test_closed_batcher_rejects_submit_but_drains(self):
        batcher = MicroBatcher(max_batch=4, capacity=8)
        _submit(batcher)
        batcher.close()
        assert batcher.closed
        with pytest.raises(ServingError, match="closed"):
            _submit(batcher)
        assert len(batcher.drain_tick()) == 1
