"""Tests for the serving model registry and posterior reconstruction."""

import numpy as np
import pytest

from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.serialization import save_posterior
from repro.errors import ConfigurationError, UnknownModelError
from repro.serving.registry import (
    ModelRegistry,
    network_from_posterior,
    worker_stream_seed,
)


@pytest.fixture()
def network():
    return BayesianNetwork((6, 5, 3), seed=0, initial_sigma=0.04)


@pytest.fixture()
def posterior(network):
    return network.posterior_parameters()


class TestNetworkFromPosterior:
    def test_roundtrips_mu_and_sigma(self, network, posterior):
        rebuilt = network_from_posterior(posterior)
        assert rebuilt.layer_sizes == network.layer_sizes
        for rebuilt_layer, original in zip(rebuilt.layers, posterior):
            assert np.array_equal(rebuilt_layer.mu_weights, original["mu_weights"])
            assert np.array_equal(rebuilt_layer.mu_bias, original["mu_bias"])
            assert np.allclose(rebuilt_layer.sigma_weights(), original["sigma_weights"])
            assert np.allclose(rebuilt_layer.sigma_bias(), original["sigma_bias"])

    def test_empty_posterior_rejected(self):
        with pytest.raises(ConfigurationError):
            network_from_posterior([])


class TestWorkerStreamSeed:
    def test_decorrelates_workers_versions_and_seeds(self):
        seeds = {
            worker_stream_seed(0, 1, 0),
            worker_stream_seed(0, 1, 1),
            worker_stream_seed(0, 2, 0),
            worker_stream_seed(1, 1, 0),
        }
        assert len(seeds) == 4

    def test_deterministic(self):
        assert worker_stream_seed(7, 3, 2) == worker_stream_seed(7, 3, 2)


class TestModelRegistry:
    def test_register_and_get(self, network):
        registry = ModelRegistry()
        entry = registry.register_network("digits", network, n_samples=4)
        assert registry.get("digits") is entry
        assert entry.version == 1
        assert entry.in_features == 6 and entry.out_features == 3
        assert registry.names() == ["digits"]

    def test_unknown_model(self):
        registry = ModelRegistry()
        with pytest.raises(UnknownModelError, match="not registered"):
            registry.get("nope")
        with pytest.raises(UnknownModelError):
            registry.evict("nope")

    def test_build_predictor_serves(self, network):
        registry = ModelRegistry()
        entry = registry.register_network("digits", network, n_samples=3)
        predictor = entry.build_predictor(0)
        probs = predictor.predict_proba_batched(np.zeros((2, 6)))
        assert probs.shape == (2, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_register_file_and_reload(self, tmp_path, network, posterior):
        path = tmp_path / "model.npz"
        save_posterior(path, posterior)
        registry = ModelRegistry()
        entry = registry.register_file("digits", path, n_samples=4, seed=9)
        assert entry.version == 1 and entry.source_path == str(path)

        # A new posterior lands in the same file; reload must pick it up
        # and bump the version.
        retrained = BayesianNetwork((6, 5, 3), seed=5).posterior_parameters()
        save_posterior(path, retrained)
        reloaded = registry.reload("digits")
        assert reloaded.version == 2
        assert reloaded.n_samples == 4 and reloaded.seed == 9
        assert np.array_equal(
            reloaded.network.layers[0].mu_weights, retrained[0]["mu_weights"]
        )

    def test_reload_requires_file_backing(self, network):
        registry = ModelRegistry()
        registry.register_network("digits", network)
        with pytest.raises(ConfigurationError, match="file-backed"):
            registry.reload("digits")

    def test_reregistering_continues_versions(self, network):
        registry = ModelRegistry()
        registry.register_network("digits", network)
        entry = registry.register_network("digits", network)
        assert entry.version == 2

    def test_version_survives_evict_and_reregister(self, network):
        """(name, version) must never identify two different posteriors."""
        registry = ModelRegistry()
        registry.register_network("digits", network)
        registry.evict("digits")
        entry = registry.register_network("digits", network)
        assert entry.version == 2

    def test_version_survives_lru_eviction(self, network):
        registry = ModelRegistry(max_models=1)
        registry.register_network("a", network)
        registry.register_network("b", network)  # LRU-evicts a
        entry = registry.register_network("a", network)
        assert entry.version == 2

    def test_evict(self, network):
        registry = ModelRegistry()
        registry.register_network("digits", network)
        registry.evict("digits")
        assert len(registry) == 0
        with pytest.raises(UnknownModelError):
            registry.get("digits")

    def test_lru_eviction_at_capacity(self, network):
        registry = ModelRegistry(max_models=2)
        registry.register_network("a", network)
        registry.register_network("b", network)
        registry.get("a")  # refresh a; b becomes least recently used
        registry.register_network("c", network)
        assert sorted(registry.names()) == ["a", "c"]
        with pytest.raises(UnknownModelError):
            registry.get("b")
