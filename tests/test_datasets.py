"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.bnn import Adam, FeedForwardNetwork, Trainer, accuracy
from repro.datasets import (
    DISEASE_DATASETS,
    DigitImageGenerator,
    TabularSpec,
    load_digits_split,
    load_tabular_split,
    make_tabular,
)
from repro.datasets.digits import DIGIT_STROKES, IMAGE_SIZE, N_CLASSES
from repro.errors import DatasetError


class TestDigitGenerator:
    def test_render_shape_and_range(self):
        gen = DigitImageGenerator(seed=0)
        for digit in range(10):
            image = gen.render(digit)
            assert image.shape == (IMAGE_SIZE, IMAGE_SIZE)
            assert image.min() >= 0.0 and image.max() <= 1.0

    def test_all_digits_have_strokes(self):
        assert sorted(DIGIT_STROKES) == list(range(10))

    def test_generate_shapes(self):
        images, labels = DigitImageGenerator(seed=1).generate(50)
        assert images.shape == (50, 784)
        assert labels.shape == (50,)
        assert set(np.unique(labels)).issubset(set(range(N_CLASSES)))

    def test_deterministic_given_seed(self):
        a, la = DigitImageGenerator(seed=2).generate(10)
        b, lb = DigitImageGenerator(seed=2).generate(10)
        assert (a == b).all() and (la == lb).all()

    def test_samples_of_same_class_differ(self):
        gen = DigitImageGenerator(seed=3)
        assert not np.allclose(gen.render(5), gen.render(5))

    def test_zero_deformation_is_stable_geometry(self):
        gen = DigitImageGenerator(seed=4, noise=0.0, deformation=0.0)
        assert np.allclose(gen.render(7), gen.render(7))

    def test_validation(self):
        with pytest.raises(DatasetError):
            DigitImageGenerator(noise=-0.1)
        with pytest.raises(DatasetError):
            DigitImageGenerator(deformation=-1)
        with pytest.raises(DatasetError):
            DigitImageGenerator().render(10)
        with pytest.raises(DatasetError):
            DigitImageGenerator().generate(0)

    def test_task_is_learnable(self):
        # A small MLP must beat chance comfortably: the dataset carries
        # real class structure, which every accuracy experiment relies on.
        x_tr, y_tr, x_te, y_te = load_digits_split(400, 150, seed=5)
        fnn = FeedForwardNetwork((784, 32, 10), seed=0)
        Trainer(fnn, Adam(2e-3), batch_size=32, epochs=10, seed=0).fit(x_tr, y_tr)
        assert accuracy(fnn.predict(x_te), y_te) > 0.6

    def test_split_streams_independent(self):
        x_tr, _, x_te, _ = load_digits_split(20, 20, seed=6)
        assert not np.allclose(x_tr, x_te)


class TestTabular:
    def test_registry_covers_table7(self):
        for name in (
            "parkinson-original",
            "parkinson-modified",
            "retinopathy",
            "thoracic",
            "tox21-nr-ahr",
            "tox21-sr-are",
            "tox21-sr-atad5",
            "tox21-sr-mmp",
            "tox21-sr-p53",
        ):
            assert name in DISEASE_DATASETS

    def test_shapes_match_spec(self):
        for name, spec in DISEASE_DATASETS.items():
            if spec.n_features > 100:
                continue  # TOX21 checked separately, once, for speed
            x_tr, y_tr, x_te, y_te = load_tabular_split(name, seed=0)
            assert x_tr.shape == (spec.n_train, spec.n_features)
            assert x_te.shape == (spec.n_test, spec.n_features)

    def test_tox21_shape(self):
        spec = DISEASE_DATASETS["tox21-nr-ahr"]
        x_tr, y_tr, _, _ = load_tabular_split("tox21-nr-ahr", seed=0)
        assert x_tr.shape == (spec.n_train, 801)

    def test_imbalance_respected(self):
        spec = DISEASE_DATASETS["thoracic"]
        _, labels = make_tabular(spec, seed=1, count=5000)
        majority = (labels == 0).mean()
        assert 0.75 < majority < 0.93  # priors (0.85, 0.15) + label noise

    def test_columns_standardised(self):
        features, _ = make_tabular(DISEASE_DATASETS["retinopathy"], seed=2)
        assert np.allclose(features.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(features.std(axis=0), 1.0, atol=1e-6)

    def test_learnable(self):
        x_tr, y_tr, x_te, y_te = load_tabular_split("parkinson-original", seed=0)
        fnn = FeedForwardNetwork((26, 16, 2), seed=0)
        Trainer(fnn, Adam(2e-3), batch_size=32, epochs=15, seed=0).fit(x_tr, y_tr)
        assert accuracy(fnn.predict(x_te), y_te) > 0.7

    def test_deterministic(self):
        a, la = make_tabular(DISEASE_DATASETS["thoracic"], seed=3)
        b, lb = make_tabular(DISEASE_DATASETS["thoracic"], seed=3)
        assert (a == b).all() and (la == lb).all()

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_tabular_split("nope")

    def test_spec_validation(self):
        with pytest.raises(DatasetError):
            TabularSpec("bad", 0, 1, 2, 10, 10)
        with pytest.raises(DatasetError):
            TabularSpec("bad", 4, 8, 2, 10, 10)
        with pytest.raises(DatasetError):
            TabularSpec("bad", 4, 2, 1, 10, 10)
        with pytest.raises(DatasetError):
            TabularSpec("bad", 4, 2, 2, 10, 10, label_noise=0.7)
        with pytest.raises(DatasetError):
            TabularSpec("bad", 4, 2, 2, 10, 10, class_priors=(0.5, 0.4))
        with pytest.raises(DatasetError):
            TabularSpec("bad", 4, 2, 2, 10, 10, class_priors=(0.5, 0.3, 0.2))
