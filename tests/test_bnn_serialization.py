"""Tests for posterior save/load and the WPMem memory image."""

import json

import numpy as np
import pytest

from repro.bnn import BayesianNetwork
from repro.bnn.serialization import (
    FORMAT_VERSION,
    export_memory_image,
    load_memory_image,
    load_posterior,
    save_memory_image,
    save_posterior,
)
from repro.errors import ConfigurationError


def _rewrite_version(path, version):
    """Rewrite the metadata version of a saved ``.npz`` in place."""
    with np.load(path) as data:
        arrays = dict(data)
    meta = json.loads(bytes(arrays["metadata"].tobytes()).decode())
    meta["version"] = version
    arrays["metadata"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    ).copy()
    np.savez(path, **arrays)


@pytest.fixture()
def posterior():
    return BayesianNetwork((6, 5, 3), seed=0, initial_sigma=0.04).posterior_parameters()


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, posterior):
        path = tmp_path / "model.npz"
        save_posterior(path, posterior)
        loaded = load_posterior(path)
        assert len(loaded) == len(posterior)
        for saved, original in zip(loaded, posterior):
            for key in ("mu_weights", "sigma_weights", "mu_bias", "sigma_bias"):
                assert np.allclose(saved[key], original[key])

    def test_loaded_posterior_runs_inference(self, tmp_path, posterior):
        from repro.bnn.quantized import QuantizedBayesianNetwork

        path = tmp_path / "model.npz"
        save_posterior(path, posterior)
        network = QuantizedBayesianNetwork(load_posterior(path), bit_length=8, seed=0)
        probs = network.predict_proba(np.zeros((2, 6)), n_samples=3)
        assert probs.shape == (2, 3)

    def test_empty_posterior_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_posterior(tmp_path / "x.npz", [])

    def test_missing_key_rejected(self, tmp_path, posterior):
        del posterior[0]["mu_bias"]
        with pytest.raises(ConfigurationError, match="mu_bias"):
            save_posterior(tmp_path / "x.npz", posterior)

    def test_not_a_posterior_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ConfigurationError, match="metadata"):
            load_posterior(path)

    def test_validation_catches_shape_chain_break(self, tmp_path, posterior):
        posterior[1]["mu_weights"] = np.zeros((99, 3))
        posterior[1]["sigma_weights"] = np.zeros((99, 3))
        path = tmp_path / "bad.npz"
        save_posterior(path, posterior)
        with pytest.raises(ConfigurationError, match="chain"):
            load_posterior(path)

    def test_negative_sigma_rejected(self, tmp_path, posterior):
        posterior[0]["sigma_weights"] = posterior[0]["sigma_weights"] * -1
        path = tmp_path / "bad.npz"
        save_posterior(path, posterior)
        with pytest.raises(ConfigurationError, match="negative sigma"):
            load_posterior(path)


class TestFormatVersioning:
    def test_newer_version_rejected_with_upgrade_hint(self, tmp_path, posterior):
        path = tmp_path / "future.npz"
        save_posterior(path, posterior)
        _rewrite_version(path, FORMAT_VERSION + 1)
        with pytest.raises(ConfigurationError, match="newer than this library"):
            load_posterior(path)
        with pytest.raises(ConfigurationError, match="upgrade"):
            load_posterior(path)

    def test_older_version_rejected(self, tmp_path, posterior):
        path = tmp_path / "ancient.npz"
        save_posterior(path, posterior)
        _rewrite_version(path, 0)
        with pytest.raises(ConfigurationError, match="unsupported format version"):
            load_posterior(path)

    def test_malformed_version_rejected(self, tmp_path, posterior):
        path = tmp_path / "mangled.npz"
        save_posterior(path, posterior)
        _rewrite_version(path, "two")
        with pytest.raises(ConfigurationError, match="malformed format version"):
            load_posterior(path)


class TestMemoryImage:
    def test_image_arrays(self, posterior):
        image = export_memory_image(posterior, bit_length=8)
        assert image["layer0_mu_codes"].shape == (6, 5)
        assert image["layer0_mu_codes"].dtype == np.int16
        assert set(k.split("_", 1)[1] for k in image) == {
            "mu_codes",
            "sigma_codes",
            "mu_bias_codes",
            "sigma_bias_codes",
        }

    def test_codes_within_8bit_range(self, posterior):
        image = export_memory_image(posterior, bit_length=8)
        for array in image.values():
            assert array.max() <= 127 and array.min() >= -128

    def test_quantization_matches_weight_format(self, posterior):
        from repro.bnn.quantized import weight_format

        image = export_memory_image(posterior, bit_length=8)
        fmt = weight_format(8)
        expected = fmt.quantize(posterior[0]["mu_weights"])
        assert (image["layer0_mu_codes"] == expected).all()

    def test_quantized_image_roundtrip(self, tmp_path, posterior):
        """The shipped-to-FPGA integer codes survive a save/load bit for bit."""
        image = export_memory_image(posterior, bit_length=8)
        path = tmp_path / "image.npz"
        save_memory_image(path, image, bit_length=8)
        loaded, bit_length = load_memory_image(path)
        assert bit_length == 8
        assert set(loaded) == set(image)
        for name in image:
            assert loaded[name].dtype == np.int16
            assert (loaded[name] == image[name]).all()

    def test_posterior_file_is_not_a_memory_image(self, tmp_path, posterior):
        path = tmp_path / "model.npz"
        save_posterior(path, posterior)
        with pytest.raises(ConfigurationError, match="kind"):
            load_memory_image(path)

    def test_memory_image_is_not_a_posterior(self, tmp_path, posterior):
        path = tmp_path / "image.npz"
        save_memory_image(path, export_memory_image(posterior), bit_length=8)
        with pytest.raises(ConfigurationError, match="not a posterior file"):
            load_posterior(path)

    def test_legacy_posterior_without_kind_still_loads(self, tmp_path, posterior):
        """Version-1 files written before the 'kind' field must keep loading."""
        path = tmp_path / "legacy.npz"
        save_posterior(path, posterior)
        with np.load(path) as data:
            arrays = dict(data)
        meta = json.loads(bytes(arrays["metadata"].tobytes()).decode())
        del meta["kind"]
        arrays["metadata"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ).copy()
        np.savez(path, **arrays)
        assert len(load_posterior(path)) == len(posterior)

    def test_newer_image_version_rejected(self, tmp_path, posterior):
        path = tmp_path / "future-image.npz"
        save_memory_image(path, export_memory_image(posterior), bit_length=8)
        _rewrite_version(path, FORMAT_VERSION + 1)
        with pytest.raises(ConfigurationError, match="newer than this library"):
            load_memory_image(path)

    def test_empty_image_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="empty"):
            save_memory_image(tmp_path / "x.npz", {}, bit_length=8)

    def test_reserved_name_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="reserved"):
            save_memory_image(
                tmp_path / "x.npz", {"metadata": np.zeros(2, np.int16)}, bit_length=8
            )
