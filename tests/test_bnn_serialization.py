"""Tests for posterior save/load and the WPMem memory image."""

import numpy as np
import pytest

from repro.bnn import BayesianNetwork
from repro.bnn.serialization import (
    export_memory_image,
    load_posterior,
    save_posterior,
)
from repro.errors import ConfigurationError


@pytest.fixture()
def posterior():
    return BayesianNetwork((6, 5, 3), seed=0, initial_sigma=0.04).posterior_parameters()


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, posterior):
        path = tmp_path / "model.npz"
        save_posterior(path, posterior)
        loaded = load_posterior(path)
        assert len(loaded) == len(posterior)
        for saved, original in zip(loaded, posterior):
            for key in ("mu_weights", "sigma_weights", "mu_bias", "sigma_bias"):
                assert np.allclose(saved[key], original[key])

    def test_loaded_posterior_runs_inference(self, tmp_path, posterior):
        from repro.bnn.quantized import QuantizedBayesianNetwork

        path = tmp_path / "model.npz"
        save_posterior(path, posterior)
        network = QuantizedBayesianNetwork(load_posterior(path), bit_length=8, seed=0)
        probs = network.predict_proba(np.zeros((2, 6)), n_samples=3)
        assert probs.shape == (2, 3)

    def test_empty_posterior_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_posterior(tmp_path / "x.npz", [])

    def test_missing_key_rejected(self, tmp_path, posterior):
        del posterior[0]["mu_bias"]
        with pytest.raises(ConfigurationError, match="mu_bias"):
            save_posterior(tmp_path / "x.npz", posterior)

    def test_not_a_posterior_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ConfigurationError, match="metadata"):
            load_posterior(path)

    def test_validation_catches_shape_chain_break(self, tmp_path, posterior):
        posterior[1]["mu_weights"] = np.zeros((99, 3))
        posterior[1]["sigma_weights"] = np.zeros((99, 3))
        path = tmp_path / "bad.npz"
        save_posterior(path, posterior)
        with pytest.raises(ConfigurationError, match="chain"):
            load_posterior(path)

    def test_negative_sigma_rejected(self, tmp_path, posterior):
        posterior[0]["sigma_weights"] = posterior[0]["sigma_weights"] * -1
        path = tmp_path / "bad.npz"
        save_posterior(path, posterior)
        with pytest.raises(ConfigurationError, match="negative sigma"):
            load_posterior(path)


class TestMemoryImage:
    def test_image_arrays(self, posterior):
        image = export_memory_image(posterior, bit_length=8)
        assert image["layer0_mu_codes"].shape == (6, 5)
        assert image["layer0_mu_codes"].dtype == np.int16
        assert set(k.split("_", 1)[1] for k in image) == {
            "mu_codes",
            "sigma_codes",
            "mu_bias_codes",
            "sigma_bias_codes",
        }

    def test_codes_within_8bit_range(self, posterior):
        image = export_memory_image(posterior, bit_length=8)
        for array in image.values():
            assert array.max() <= 127 and array.min() >= -128

    def test_quantization_matches_weight_format(self, posterior):
        from repro.bnn.quantized import weight_format

        image = export_memory_image(posterior, bit_length=8)
        fmt = weight_format(8)
        expected = fmt.quantize(posterior[0]["mu_weights"])
        assert (image["layer0_mu_codes"] == expected).all()
