"""Bench-result recorder schema and the regression comparator."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import BenchRecorder, compare_result_dicts, load_result
from repro.obs.bench import SCHEMA_VERSION


def make_result(**metrics) -> dict:
    """A schema-1 document with the given ``name=(value, direction, ...)``."""
    doc = {"schema": SCHEMA_VERSION, "bench": "b", "metrics": {}}
    for name, spec in metrics.items():
        entry = {"value": spec[0], "direction": spec[1], "comparable": False}
        if len(spec) > 2:
            entry["comparable"] = spec[2]
        if len(spec) > 3:
            entry["tolerance"] = spec[3]
        doc["metrics"][name] = entry
    return doc


class TestRecorder:
    def test_document_shape_and_write(self, tmp_path):
        recorder = BenchRecorder("bench_x", mode="quick", config={"n": 4})
        recorder.record("speedup", 7.5, unit="x")
        recorder.record(
            "bit_exact", 1.0, unit="bool", comparable=True, tolerance=0.0
        )
        path = recorder.write(tmp_path / "results")
        assert path.name == "bench_x.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["bench"] == "bench_x"
        assert doc["mode"] == "quick"
        assert doc["config"] == {"n": 4}
        assert set(doc["machine"]) == {"platform", "python", "numpy", "cpus"}
        assert doc["metrics"]["speedup"] == {
            "value": 7.5, "unit": "x", "direction": "higher", "comparable": False,
        }
        assert doc["metrics"]["bit_exact"]["comparable"] is True

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            BenchRecorder("")
        recorder = BenchRecorder("b")
        with pytest.raises(ConfigurationError):
            recorder.record("m", 1.0, direction="sideways")

    def test_comparable_metric_requires_a_unit(self):
        recorder = BenchRecorder("b")
        with pytest.raises(ConfigurationError, match="must declare a unit"):
            recorder.record("bit_exact", 1.0, comparable=True)
        # Non-comparable (machine-local timing) metrics may stay unitless.
        recorder.record("wallclock", 1.0)
        # And the same value is fine once the unit is stated.
        recorder.record("bit_exact", 1.0, unit="bool", comparable=True)

    def test_load_result_round_trip_and_schema_check(self, tmp_path):
        recorder = BenchRecorder("b")
        recorder.record("m", 2.0)
        path = recorder.write(tmp_path)
        assert load_result(path)["metrics"]["m"]["value"] == 2.0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99, "bench": "b", "metrics": {}}))
        with pytest.raises(ConfigurationError):
            load_result(bad)
        malformed = tmp_path / "malformed.json"
        malformed.write_text(json.dumps({"schema": SCHEMA_VERSION}))
        with pytest.raises(ConfigurationError):
            load_result(malformed)

    def test_load_result_rejects_underdeclared_comparable_metrics(self, tmp_path):
        def doc(entry):
            return {"schema": SCHEMA_VERSION, "bench": "b", "metrics": {"m": entry}}

        missing_unit = tmp_path / "no_unit.json"
        missing_unit.write_text(
            json.dumps(doc({"value": 1.0, "direction": "higher", "comparable": True}))
        )
        with pytest.raises(ConfigurationError, match="lacks a unit"):
            load_result(missing_unit)

        bad_direction = tmp_path / "bad_dir.json"
        bad_direction.write_text(
            json.dumps(doc({"value": 1.0, "unit": "bool", "comparable": True}))
        )
        with pytest.raises(ConfigurationError, match="direction"):
            load_result(bad_direction)

        no_value = tmp_path / "no_value.json"
        no_value.write_text(json.dumps(doc({"unit": "x"})))
        with pytest.raises(ConfigurationError, match="no value"):
            load_result(no_value)

        # Non-comparable entries keep the old, looser contract.
        loose = tmp_path / "loose.json"
        loose.write_text(json.dumps(doc({"value": 1.0})))
        assert load_result(loose)["metrics"]["m"]["value"] == 1.0


class TestComparator:
    def test_equal_results_pass(self):
        base = make_result(rps=(100.0, "higher"))
        assert compare_result_dicts(dict(base), base) == []

    def test_higher_direction_flags_drops_beyond_threshold(self):
        base = make_result(rps=(100.0, "higher"))
        ok = make_result(rps=(91.0, "higher"))
        bad = make_result(rps=(89.0, "higher"))
        assert compare_result_dicts(ok, base, threshold=0.10) == []
        problems = compare_result_dicts(bad, base, threshold=0.10)
        assert len(problems) == 1 and "rps" in problems[0]

    def test_higher_direction_never_flags_improvement(self):
        base = make_result(rps=(100.0, "higher"))
        assert compare_result_dicts(make_result(rps=(500.0, "higher")), base) == []

    def test_lower_direction_flags_rises(self):
        base = make_result(latency=(0.010, "lower"))
        ok = make_result(latency=(0.0105, "lower"))
        bad = make_result(latency=(0.020, "lower"))
        assert compare_result_dicts(ok, base, threshold=0.10) == []
        assert len(compare_result_dicts(bad, base, threshold=0.10)) == 1

    def test_tolerance_widens_the_slack(self):
        # |base| = 0 makes the relative threshold useless; tolerance rules.
        base = make_result(delta=(0.0, "lower", True, 0.004))
        ok = make_result(delta=(0.003, "lower", True, 0.004))
        bad = make_result(delta=(0.005, "lower", True, 0.004))
        assert compare_result_dicts(ok, base) == []
        assert len(compare_result_dicts(bad, base)) == 1

    def test_missing_metric_is_a_regression(self):
        base = make_result(gate=(1.0, "higher", True))
        problems = compare_result_dicts({"metrics": {}}, base)
        assert len(problems) == 1 and "missing" in problems[0]

    def test_new_only_metrics_are_not_regressions(self):
        base = make_result(a=(1.0, "higher"))
        new = make_result(a=(1.0, "higher"), b=(0.0, "higher"))
        assert compare_result_dicts(new, base) == []

    def test_smoke_mode_checks_only_comparable_metrics(self):
        base = make_result(
            timing=(100.0, "higher", False),
            bit_exact=(1.0, "higher", True),
        )
        new = make_result(
            timing=(1.0, "higher", False),  # huge drop, but machine-dependent
            bit_exact=(1.0, "higher", True),
        )
        assert compare_result_dicts(new, base, comparable_only=True) == []
        # Full mode still sees the timing drop.
        assert len(compare_result_dicts(new, base)) == 1
        # And a comparable regression fails even in smoke mode.
        new["metrics"]["bit_exact"]["value"] = 0.0
        problems = compare_result_dicts(new, base, comparable_only=True)
        assert len(problems) == 1 and "bit_exact" in problems[0]


class TestCompareResultsCli:
    def test_directory_walk_and_exit_codes(self, tmp_path, capsys):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "compare_results",
            pathlib.Path(__file__).parent.parent
            / "benchmarks"
            / "compare_results.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        baseline_dir = tmp_path / "baseline"
        results_dir = tmp_path / "results"
        recorder = BenchRecorder("bench_a")
        recorder.record("gate", 1.0, unit="bool", comparable=True)
        recorder.write(baseline_dir)
        recorder.write(results_dir)

        assert mod.main(
            ["--baseline", str(baseline_dir), "--results", str(results_dir),
             "--smoke"]
        ) == 0
        assert "ok   bench_a" in capsys.readouterr().out

        regressed = BenchRecorder("bench_a")
        regressed.record("gate", 0.0, unit="bool", comparable=True)
        regressed.write(results_dir)
        assert mod.main(
            ["--baseline", str(baseline_dir), "--results", str(results_dir),
             "--smoke"]
        ) == 1
        assert "FAIL bench_a" in capsys.readouterr().out

        (results_dir / "bench_a.json").unlink()
        assert mod.main(
            ["--baseline", str(baseline_dir), "--results", str(results_dir)]
        ) == 1
        assert "no matching result" in capsys.readouterr().out

        assert mod.main(
            ["--baseline", str(tmp_path / "empty"), "--results", str(results_dir)]
        ) == 2
