"""Tests for loss functions, including numerical gradient checks."""

import numpy as np
import pytest

from repro.bnn.losses import cross_entropy_loss, mean_squared_error
from repro.errors import ConfigurationError


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = cross_entropy_loss(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((3, 10))
        loss, _ = cross_entropy_loss(logits, np.array([0, 5, 9]))
        assert loss == pytest.approx(np.log(10))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((4, 5))
        labels = np.array([0, 1, 2, 3])
        _, grad = cross_entropy_loss(logits, labels)
        eps = 1e-6
        for i in range(4):
            for j in range(5):
                bumped = logits.copy()
                bumped[i, j] += eps
                up, _ = cross_entropy_loss(bumped, labels)
                bumped[i, j] -= 2 * eps
                down, _ = cross_entropy_loss(bumped, labels)
                numeric = (up - down) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cross_entropy_loss(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ConfigurationError):
            cross_entropy_loss(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ConfigurationError):
            cross_entropy_loss(np.zeros((2, 3)), np.array([0, 3]))


class TestMse:
    def test_zero_for_exact(self):
        x = np.arange(6, dtype=float).reshape(2, 3)
        loss, grad = mean_squared_error(x, x)
        assert loss == 0.0
        assert (grad == 0).all()

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        preds = rng.standard_normal((3, 2))
        targets = rng.standard_normal((3, 2))
        _, grad = mean_squared_error(preds, targets)
        eps = 1e-6
        bumped = preds.copy()
        bumped[1, 1] += eps
        up, _ = mean_squared_error(bumped, targets)
        bumped[1, 1] -= 2 * eps
        down, _ = mean_squared_error(bumped, targets)
        assert grad[1, 1] == pytest.approx((up - down) / (2 * eps), abs=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            mean_squared_error(np.zeros((2, 2)), np.zeros((2, 3)))
