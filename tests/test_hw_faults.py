"""Tests for fault injection into the hardware GRNG models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grng.quality import stability_error
from repro.hw.faults import (
    FaultyBnnWallaceGrng,
    FaultyRlfGrng,
    StuckAtFault,
    random_seu_faults,
)


class TestFaultyRlf:
    def test_no_faults_matches_clean(self):
        clean = FaultyRlfGrng([], lanes=16, seed=0).generate_codes(160)
        from repro.grng.rlf import ParallelRlfGrng

        reference = ParallelRlfGrng(lanes=16, seed=0).generate_codes(160)
        assert (clean == reference).all()

    def test_location_validation(self):
        with pytest.raises(ConfigurationError):
            FaultyRlfGrng([StuckAtFault(255, 1)], lanes=16)
        with pytest.raises(ConfigurationError):
            FaultyRlfGrng([StuckAtFault(0, 0.5)], lanes=16)

    def test_many_stuck_ones_bias_mean_up(self):
        faults = [StuckAtFault(location, 1) for location in range(40)]
        samples = FaultyRlfGrng(faults, lanes=16, seed=1).generate(20_000)
        # 40 of 255 bits pinned to 1: mean popcount rises by ~ (40 - 20)/8.
        assert samples.mean() > 1.0

    def test_quality_suite_detects_faults(self):
        faults = [StuckAtFault(location, 1) for location in range(30)]
        faulty = stability_error(FaultyRlfGrng(faults, lanes=16, seed=2).generate(20_000))
        clean = stability_error(FaultyRlfGrng([], lanes=16, seed=2).generate(20_000))
        assert faulty.mu_error > clean.mu_error + 0.5

    def test_incremental_count_stays_consistent_under_faults(self):
        # The injector fixes up the incremental counts; the codes must
        # still equal the true popcounts.
        faults = random_seu_faults(10, depth=255, seed=3)
        grng = FaultyRlfGrng(faults, lanes=8, seed=3)
        grng.generate_codes(80)
        assert (grng._grng.counts == grng._grng.state.sum(axis=0)).all()

    @pytest.mark.parametrize("n_faults", [0, 1, 4])
    def test_windowed_matches_per_cycle_reference(self, n_faults):
        faults = random_seu_faults(n_faults, depth=255, seed=11)
        windowed = FaultyRlfGrng(faults, lanes=16, seed=4)
        loop = FaultyRlfGrng(faults, lanes=16, seed=4)
        # Several draw sizes, including sub-lane and multi-window ones, so
        # cross-call state carry-over is covered too.
        for count in (160, 7, 2000, 1):
            assert (
                windowed.generate_codes(count) == loop.generate_codes_loop(count)
            ).all()
        assert (windowed._grng.state == loop._grng.state).all()
        assert (windowed._grng.counts == loop._grng.counts).all()
        assert windowed._grng.head == loop._grng.head
        assert windowed._grng.cycle == loop._grng.cycle


class TestFaultyWallace:
    def test_location_validation(self):
        with pytest.raises(ConfigurationError):
            FaultyBnnWallaceGrng([StuckAtFault(256, 0.0)], pool_size=256)

    def test_large_stuck_value_inflates_variance(self):
        faults = [StuckAtFault(0, 25.0)]
        samples = FaultyBnnWallaceGrng(faults, units=4, pool_size=64, seed=0).generate(20_000)
        assert samples.std() > 1.5

    def test_zero_faults_match_clean(self):
        from repro.grng.bnnwallace import BnnWallaceGrng

        faulty = FaultyBnnWallaceGrng([], units=4, pool_size=64, seed=1).generate(256)
        clean = BnnWallaceGrng(units=4, pool_size=64, seed=1).generate(256)
        assert np.allclose(faulty, clean)

    def test_non_finite_pin_values_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                FaultyBnnWallaceGrng([StuckAtFault(0, bad)], pool_size=64)

    @pytest.mark.parametrize("n_faults", [0, 1, 4])
    def test_windowed_matches_per_cycle_reference(self, n_faults):
        faults = random_seu_faults(n_faults, depth=64, seed=13, binary=False)
        windowed = FaultyBnnWallaceGrng(faults, units=4, pool_size=64, seed=5)
        loop = FaultyBnnWallaceGrng(faults, units=4, pool_size=64, seed=5)
        for count in (256, 9, 3000, 1):
            assert np.array_equal(
                windowed.generate(count), loop.generate_loop(count)
            )
        assert np.array_equal(windowed._grng.pools, loop._grng.pools)
        assert windowed._grng._addr == loop._grng._addr
        assert windowed._grng._phase == loop._grng._phase


class TestRandomSeuFaults:
    def test_counts_and_bounds(self):
        faults = random_seu_faults(20, depth=255, seed=0)
        assert len(faults) == 20
        assert all(0 <= f.location < 255 for f in faults)
        assert all(f.value in (0.0, 1.0) for f in faults)

    def test_unique_locations(self):
        faults = random_seu_faults(50, depth=64, seed=1)
        locations = [f.location for f in faults]
        assert len(set(locations)) == len(locations)

    def test_analog_faults(self):
        faults = random_seu_faults(5, depth=64, seed=2, binary=False)
        assert any(f.value not in (0.0, 1.0) for f in faults)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_seu_faults(-1, depth=10)
        with pytest.raises(ConfigurationError):
            random_seu_faults(1, depth=0)

    def test_count_beyond_depth_rejected(self):
        # Locations are distinct; a request for more faults than rows
        # must raise instead of silently capping the fault load.
        with pytest.raises(ConfigurationError):
            random_seu_faults(11, depth=10)
        assert len(random_seu_faults(10, depth=10)) == 10
