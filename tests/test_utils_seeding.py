"""Unit tests for repro.utils.seeding."""

from repro.utils.seeding import derive_seed, spawn_generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_distinguish(self):
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_distinguishes(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_nonnegative_64bit(self):
        seed = derive_seed(123, "lane", 7)
        assert 0 <= seed < 2**64


class TestSpawnGenerator:
    def test_reproducible_stream(self):
        a = spawn_generator(5, "s").standard_normal(10)
        b = spawn_generator(5, "s").standard_normal(10)
        assert (a == b).all()

    def test_different_labels_different_streams(self):
        a = spawn_generator(5, "s1").standard_normal(10)
        b = spawn_generator(5, "s2").standard_normal(10)
        assert (a != b).any()
