"""Tests for the block-sampling seam: base block API, BlockGrng, GrngStream."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grng import BlockGrng, GrngStream, NumpyGrng, ParallelRlfGrng
from repro.grng.factory import available_grngs, make_grng


class TestBlockContract:
    """generate_block/fill/count contract for every registered generator."""

    @pytest.mark.parametrize("name", available_grngs())
    def test_generate_block_is_reshaped_stream(self, name):
        # The block is one contiguous slice of the output stream: a fresh
        # identically seeded generator's flat generate() must agree.  For
        # generators with a native vectorised block path (rlf, bnnwallace)
        # this pins the vectorised path to the sequential one.
        block = make_grng(name, seed=11).generate_block((6, 35))
        flat = make_grng(name, seed=11).generate(6 * 35)
        assert block.shape == (6, 35)
        assert np.array_equal(block, flat.reshape(6, 35))

    @pytest.mark.parametrize("name", available_grngs())
    def test_fill_matches_generate_block(self, name):
        out = np.empty((3, 17))
        make_grng(name, seed=7).fill(out)
        expected = make_grng(name, seed=7).generate_block((3, 17))
        assert np.array_equal(out, expected)

    @pytest.mark.parametrize("name", available_grngs())
    def test_zero_count_returns_empty(self, name):
        grng = make_grng(name, seed=0)
        assert grng.generate(0).shape == (0,)
        assert grng.generate_block((0, 5)).shape == (0, 5)
        grng.fill(np.empty(0))  # no-op, must not raise

    @pytest.mark.parametrize("name", available_grngs())
    def test_negative_and_non_integer_counts_rejected(self, name):
        grng = make_grng(name, seed=0)
        with pytest.raises(ConfigurationError):
            grng.generate(-1)
        with pytest.raises(ConfigurationError):
            grng.generate(2.5)

    def test_zero_count_then_stream_continues(self):
        # A zero request must not disturb generator state.
        a = NumpyGrng(3)
        a.generate(0)
        b = NumpyGrng(3)
        assert np.array_equal(a.generate(10), b.generate(10))

    def test_int_shape_promotes(self):
        assert NumpyGrng(0).generate_block(12).shape == (12,)

    def test_negative_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            NumpyGrng(0).generate_block((3, -1))

    def test_fill_non_contiguous(self):
        out = np.empty((4, 10))[:, ::2]  # non-contiguous view
        NumpyGrng(5).fill(out)
        expected = NumpyGrng(5).generate(out.size).reshape(out.shape)
        assert np.array_equal(out, expected)

    def test_fill_rejects_non_float_dtype(self):
        # An integer target would silently truncate every sample to
        # {-1, 0, 1} while consuming generator state.
        with pytest.raises(ConfigurationError, match="floating"):
            NumpyGrng(0).fill(np.empty(8, dtype=np.int64))
        with pytest.raises(ConfigurationError, match="floating"):
            GrngStream(NumpyGrng(0)).fill(np.empty(8, dtype=np.int64))

    def test_fill_rejects_readonly_target(self):
        out = np.empty(8)
        out.flags.writeable = False
        with pytest.raises(ConfigurationError, match="writable"):
            NumpyGrng(0).fill(out)

    def test_string_shape_rejected(self):
        # "12" must not be iterated into shape (1, 2).
        with pytest.raises(ConfigurationError, match="block shape"):
            NumpyGrng(0).generate_block("12")

    def test_non_integer_shape_dims_rejected(self):
        with pytest.raises(ConfigurationError, match="integers"):
            NumpyGrng(0).generate_block((3, 2.5))
        with pytest.raises(ConfigurationError, match="integers"):
            NumpyGrng(0).generate_block(("3", "4"))

    def test_fill_rejects_non_ndarray(self):
        # Writing into a converted copy of a list would silently drop the
        # samples while consuming generator state.
        with pytest.raises(ConfigurationError, match="ndarray"):
            NumpyGrng(0).fill([0.0] * 8)
        with pytest.raises(ConfigurationError, match="ndarray"):
            GrngStream(NumpyGrng(0)).fill([0.0] * 8)


class _FillOnly(BlockGrng):
    """Minimal block-native generator for the BlockGrng contract test."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def fill(self, out):
        out[...] = self._rng.standard_normal(out.size).reshape(out.shape)


class TestBlockGrng:
    def test_generate_derives_from_fill(self):
        assert np.array_equal(
            _FillOnly(2).generate(40),
            np.random.default_rng(2).standard_normal(40),
        )

    def test_generate_block_derives_from_fill(self):
        block = _FillOnly(4).generate_block((5, 8))
        assert block.shape == (5, 8)
        assert np.array_equal(
            block, np.random.default_rng(4).standard_normal(40).reshape(5, 8)
        )


class TestGrngStream:
    def test_call_pattern_invariance(self):
        # The defining property: output depends only on seed + block_size,
        # never on how requests are chopped.
        for name in ("bnnwallace", "box-muller", "wallace-256", "numpy"):
            chopped = GrngStream(make_grng(name, seed=9), block_size=512)
            whole = GrngStream(make_grng(name, seed=9), block_size=512)
            parts = [chopped.generate(n) for n in (7, 500, 1, 0, 892, 100)]
            assert np.array_equal(np.concatenate(parts), whole.generate(1500))

    def test_stream_equals_source_blocks(self):
        stream = GrngStream(NumpyGrng(1), block_size=128)
        source = NumpyGrng(1)
        assert np.array_equal(stream.generate(300), source.generate(384)[:300])

    def test_generate_codes_buffered(self):
        stream = GrngStream(ParallelRlfGrng(lanes=8, seed=2), block_size=64)
        source = ParallelRlfGrng(lanes=8, seed=2)
        got = np.concatenate([stream.generate_codes(n) for n in (5, 60, 63)])
        assert np.array_equal(got, source.generate_codes(128))

    def test_float_and_code_buffers_independent(self):
        stream = GrngStream(ParallelRlfGrng(lanes=8, seed=3), block_size=32)
        floats = stream.generate(10)
        codes = stream.generate_codes(10)
        assert floats.dtype == np.float64 and codes.dtype == np.int64
        assert stream.refills == 2

    def test_refills_amortised(self):
        stream = GrngStream(NumpyGrng(0), block_size=1000)
        for _ in range(100):
            stream.generate(10)
        assert stream.refills == 1
        assert stream.buffered == 0

    def test_codes_unavailable_when_source_has_none(self):
        stream = GrngStream(NumpyGrng(0))
        with pytest.raises(ConfigurationError, match="no integer code datapath"):
            stream.generate_codes(4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GrngStream(NumpyGrng(0), block_size=0)
        with pytest.raises(ConfigurationError):
            GrngStream("not a grng")
        with pytest.raises(ConfigurationError, match="refusing to stack"):
            GrngStream(GrngStream(NumpyGrng(0)))

    def test_factory_stream_block(self):
        stream = make_grng("bnnwallace", seed=1, stream_block=256)
        assert isinstance(stream, GrngStream)
        assert stream.block_size == 256
        assert stream.generate(10).shape == (10,)


#: Registered generators exposing the integer code datapath.
CODE_GRNGS = ["rlf", "rlf-single", "rlf-single-step", "binomial-lfsr"]


class TestCodeBlockSeam:
    """generate_codes_block/fill_codes contract (the integer-block seam)."""

    @pytest.mark.parametrize("name", CODE_GRNGS)
    def test_generate_codes_block_is_reshaped_stream(self, name):
        block = make_grng(name, seed=11).generate_codes_block((6, 35))
        flat = make_grng(name, seed=11).generate_codes(6 * 35)
        assert block.shape == (6, 35)
        assert block.dtype == np.int64
        assert np.array_equal(block, flat.reshape(6, 35))

    @pytest.mark.parametrize("name", CODE_GRNGS)
    def test_fill_codes_matches_generate_codes_block(self, name):
        out = np.empty((3, 17), dtype=np.int64)
        make_grng(name, seed=7).fill_codes(out)
        expected = make_grng(name, seed=7).generate_codes_block((3, 17))
        assert np.array_equal(out, expected)

    def test_fill_codes_non_contiguous_target(self):
        backing = np.zeros((4, 10), dtype=np.int64)
        view = backing[:, ::2]  # non-contiguous
        GrngStream(ParallelRlfGrng(lanes=8, seed=3)).fill_codes(view)
        expected = GrngStream(ParallelRlfGrng(lanes=8, seed=3)).generate_codes_block((4, 5))
        assert np.array_equal(view, expected)
        assert (backing[:, 1::2] == 0).all()  # gaps untouched

    def test_fill_codes_target_validation(self):
        grng = ParallelRlfGrng(lanes=8, seed=0)
        with pytest.raises(ConfigurationError, match="ndarray"):
            grng.fill_codes([0, 0])
        with pytest.raises(ConfigurationError, match="signed integer"):
            grng.fill_codes(np.zeros(4))  # float target
        locked = np.zeros(4, dtype=np.int64)
        locked.flags.writeable = False
        with pytest.raises(ConfigurationError, match="writable"):
            grng.fill_codes(locked)

    def test_code_seam_raises_on_codeless_generators_for_any_count(self):
        # Including count 0: generate_codes(0) is the capability probe.
        grng = NumpyGrng(0)
        with pytest.raises(ConfigurationError, match="no integer code datapath"):
            grng.generate_codes(0)
        with pytest.raises(ConfigurationError, match="no integer code datapath"):
            grng.generate_codes_block((0,))
        with pytest.raises(ConfigurationError, match="no integer code datapath"):
            grng.fill_codes(np.empty(0, dtype=np.int64))

    def test_stream_forwards_capability_probe(self):
        # A stream over a float-only source must raise on the zero-count
        # probe too — otherwise consumers would detect a code datapath
        # that fails at the first real draw.
        stream = GrngStream(NumpyGrng(0))
        with pytest.raises(ConfigurationError, match="no integer code datapath"):
            stream.generate_codes(0)
        code_stream = GrngStream(ParallelRlfGrng(lanes=8, seed=1))
        assert code_stream.generate_codes(0).shape == (0,)
        assert code_stream.refills == 0  # the probe consumed nothing

    def test_stream_fill_codes_buffered_and_call_pattern_invariant(self):
        stream = GrngStream(ParallelRlfGrng(lanes=8, seed=2), block_size=64)
        parts = []
        for n in (5, 60, 63):
            out = np.empty(n, dtype=np.int64)
            stream.fill_codes(out)
            parts.append(out)
        whole = ParallelRlfGrng(lanes=8, seed=2).generate_codes(128)
        assert np.array_equal(np.concatenate(parts), whole)
