"""Kernel-profiler tests: disabled no-op, rollup math, real hook firing."""

import numpy as np
import pytest

from repro.grng import GrngStream, make_grng
from repro.obs import KernelProfiler, disable_profiling, enable_profiling
from repro.obs import profile as profile_mod
from repro.obs.profile import profiled


@pytest.fixture(autouse=True)
def _clean_profiler_state():
    """Profiling is process-global; never leak an active profiler."""
    disable_profiling()
    yield
    disable_profiling()


class TestLifecycle:
    def test_disabled_by_default(self):
        assert profile_mod.ACTIVE is None

    def test_enable_returns_singleton_until_disabled(self):
        first = enable_profiling()
        assert enable_profiling() is first
        assert profile_mod.ACTIVE is first
        assert disable_profiling() is first
        assert profile_mod.ACTIVE is None
        assert disable_profiling() is None

    def test_profiled_scope_restores_previous_state(self):
        with profiled() as prof:
            assert profile_mod.ACTIVE is prof
        assert profile_mod.ACTIVE is None
        outer = enable_profiling()
        with profiled() as inner:
            assert inner is outer  # nested scope joins the outer profiler
        assert profile_mod.ACTIVE is outer


class TestRollup:
    def test_record_accumulates_calls_seconds_ops(self):
        prof = KernelProfiler()
        prof.record("k", 0.5, ops=100)
        prof.record("k", 0.5, ops=300)
        stats = prof.stats()["k"]
        assert stats["calls"] == 2
        assert stats["seconds"] == 1.0
        assert stats["ops"] == 400
        assert stats["ops_per_s"] == pytest.approx(400.0)
        assert stats["ns_per_op"] == pytest.approx(1.0 / 400 * 1e9)

    def test_zero_ops_and_zero_seconds_are_safe(self):
        prof = KernelProfiler()
        prof.record("no_ops", 1.0)
        prof.record("instant", 0.0, ops=10)
        stats = prof.stats()
        assert stats["no_ops"]["ns_per_op"] == 0.0
        assert stats["instant"]["ops_per_s"] == 0.0

    def test_span_context_manager_records(self):
        prof = KernelProfiler()
        with prof.span("section", ops=5):
            pass
        stats = prof.stats()["section"]
        assert stats["calls"] == 1 and stats["ops"] == 5

    def test_render_and_clear(self):
        prof = KernelProfiler()
        assert "no kernel samples" in prof.render()
        prof.record("grng.fill", 0.25, ops=1_000_000)
        table = prof.render()
        assert "grng.fill" in table and "ops/s" in table
        prof.clear()
        assert "no kernel samples" in prof.render()


class TestRealHooks:
    def test_grng_fill_hook_fires_when_enabled(self):
        stream = GrngStream(make_grng("numpy", seed=0))
        out = np.empty(256)
        stream.fill(out)  # disabled: must not record anywhere
        with profiled() as prof:
            stream.fill(out)
            stream.fill(out)
        stats = prof.stats()
        assert stats["grng.fill"]["calls"] == 2
        assert stats["grng.fill"]["ops"] == 512  # out.size per fill

    def test_disabled_fill_output_identical(self):
        """The instrumentation must not perturb the stream itself."""
        a = GrngStream(make_grng("numpy", seed=9))
        b = GrngStream(make_grng("numpy", seed=9))
        out_plain = np.empty(128)
        out_profiled = np.empty(128)
        a.fill(out_plain)
        with profiled():
            b.fill(out_profiled)
        assert (out_plain == out_profiled).all()

    def test_stacked_forward_hook_fires(self):
        from repro.bnn.bayesian import BayesianNetwork
        from repro.bnn.inference import MonteCarloPredictor

        network = BayesianNetwork((6, 5, 3), seed=1, initial_sigma=0.02)
        predictor = MonteCarloPredictor(
            network,
            grng=GrngStream(make_grng("numpy", seed=2)),
            n_samples=4,
            batched=True,
        )
        x = np.random.default_rng(3).random((8, 6))
        with profiled() as prof:
            predictor.predict_proba_batched(x)
        stats = prof.stats()
        assert "bnn.stacked_forward" in stats
        assert stats["bnn.stacked_forward"]["ops"] == 4 * 8  # passes x rows
