"""Tests for the bit-level randomness battery and the LUT-ICDF generator."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import ConfigurationError
from repro.grng.bittests import (
    battery,
    bit_runs_test,
    monobit_test,
    poker_test,
    serial_pair_test,
)
from repro.grng.lut_icdf import LutIcdfGrng
from repro.rng.lfsr import FibonacciLfsr


def _random_bits(n=20_000, seed=0):
    return np.random.default_rng(seed).integers(0, 2, n)


def _lfsr_bits(n=20_000, width=16, seed=1):
    lfsr = FibonacciLfsr(width, seed=seed)
    return np.array([lfsr.step() for _ in range(n)])


class TestBattery:
    def test_random_stream_passes_all(self):
        results = battery(_random_bits())
        assert all(r["passed"] for r in results.values()), results

    def test_maximal_lfsr_passes_all(self):
        # A maximal-length LFSR bit stream passes these first-order tests
        # (its defects are higher-order linear relations).
        results = battery(_lfsr_bits())
        assert all(r["passed"] for r in results.values()), results

    def test_biased_stream_fails_monobit(self):
        bits = (np.random.default_rng(2).random(20_000) < 0.55).astype(int)
        _, p = monobit_test(bits)
        assert p < 0.01

    def test_alternating_stream_fails_runs(self):
        bits = np.tile([0, 1], 10_000)
        _, p = bit_runs_test(bits)
        assert p < 1e-10

    def test_patterned_stream_fails_poker(self):
        bits = np.tile([0, 0, 0, 1], 5_000)
        _, p = poker_test(bits)
        assert p < 1e-10

    def test_correlated_pairs_fail_serial(self):
        rng = np.random.default_rng(3)
        bits = np.empty(20_000, dtype=int)
        bits[0] = 0
        for i in range(1, bits.size):  # sticky stream
            bits[i] = bits[i - 1] if rng.random() < 0.8 else 1 - bits[i - 1]
        _, p = serial_pair_test(bits)
        assert p < 1e-10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            monobit_test(np.zeros(10))
        with pytest.raises(ConfigurationError):
            monobit_test(np.full(200, 2))
        with pytest.raises(ConfigurationError):
            poker_test(_random_bits(), block=1)


class TestLutIcdf:
    def test_segments_validation(self):
        with pytest.raises(ConfigurationError):
            LutIcdfGrng(segments=100)
        with pytest.raises(ConfigurationError):
            LutIcdfGrng(segments=4)

    def test_distribution(self):
        samples = LutIcdfGrng(segments=256, seed=0).generate(30_000)
        assert abs(samples.mean()) < 0.03
        assert abs(samples.std() - 1.0) < 0.03
        _, p = stats.kstest(samples, "norm")
        assert p > 1e-4

    def test_symmetry(self):
        samples = LutIcdfGrng(segments=128, seed=1).generate(40_000)
        assert abs((samples > 0).mean() - 0.5) < 0.01

    def test_more_segments_better_fit(self):
        coarse = LutIcdfGrng(segments=8, seed=2).generate(40_000)
        fine = LutIcdfGrng(segments=1024, seed=2).generate(40_000)
        ks_coarse, _ = stats.kstest(coarse, "norm")
        ks_fine, _ = stats.kstest(fine, "norm")
        assert ks_fine < ks_coarse

    def test_cost_model_scales(self):
        small = LutIcdfGrng(segments=64)
        large = LutIcdfGrng(segments=1024)
        assert large.table_bits > small.table_bits
        assert large.table_bits == (1024 + 1) * 16

    def test_finite(self):
        samples = LutIcdfGrng(seed=3).generate(10_000)
        assert np.isfinite(samples).all()
