"""Design-space exploration under the §5.4 joint PE/memory constraints.

Enumerates feasible ``(T, S=N, B)`` design points for the MNIST-scale
network, ranks them by modelled throughput and energy efficiency, and
shows where the paper's 16x8x8 configuration sits.  Also sweeps the GRNG
choice to expose the RLF-vs-Wallace system-level trade-off.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.hw.design_space import explore_design_space

LAYER_SIZES = (784, 200, 200, 10)


def main() -> None:
    for grng_kind in ("rlf", "bnnwallace"):
        points = explore_design_space(
            LAYER_SIZES, grng_kind=grng_kind, max_pe_sets=25
        )
        print(f"== feasible design points with {grng_kind} GRNG "
              f"(top 8 of {len(points)} by throughput)")
        for point in points[:8]:
            marker = " <= paper" if (
                point.config.pe_sets == 16 and point.config.pe_inputs == 8
            ) else ""
            print("  " + point.describe() + marker)
        best_energy = max(points, key=lambda p: p.images_per_joule)
        print(f"  best energy efficiency: {best_energy.describe()}")
        print()

    print("== bit-length sweep at T=16, N=8 (rlf)")
    for bits in (4, 8, 16):
        points = explore_design_space(
            LAYER_SIZES, bit_length=bits, max_pe_sets=16, pe_input_options=(8,)
        )
        if not points:
            print(f"  B={bits:2d}: no feasible point (word-size constraints)")
            continue
        top = points[0]
        print(f"  B={bits:2d}: {top.describe()}")


if __name__ == "__main__":
    main()
