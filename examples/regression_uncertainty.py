"""Bayesian regression with calibrated uncertainty bands (extension).

Blundell et al. (the paper's training algorithm, ref. [9]) showcase BNN
regression where the predictive distribution widens off the training data.
This example fits a noisy sine, prints an ASCII plot of the predictive
mean with +-2 sigma bands, and demonstrates the train -> save -> reload ->
quantize pipeline on the regression posterior.

Run:  python examples/regression_uncertainty.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.bnn import Adam, BayesianRegressor, load_posterior, save_posterior


def ascii_band_plot(grid, mean, std, train_lo, train_hi, width=61, height=15):
    """Rough terminal rendering of mean +- 2 sigma over the input grid."""
    lo = float((mean - 2 * std).min())
    hi = float((mean + 2 * std).max())
    rows = [[" "] * width for _ in range(height)]
    for col in range(width):
        idx = int(round(col / (width - 1) * (len(grid) - 1)))
        def to_row(value):
            frac = (value - lo) / (hi - lo + 1e-12)
            return int(round((height - 1) * (1.0 - frac)))
        upper = to_row(float(mean[idx] + 2 * std[idx]))
        lower = to_row(float(mean[idx] - 2 * std[idx]))
        centre = to_row(float(mean[idx]))
        for row in range(max(0, upper), min(height, lower + 1)):
            rows[row][col] = "."
        if 0 <= centre < height:
            rows[centre][col] = "#"
    lines = ["".join(row) for row in rows]
    marker = [" "] * width
    for col in range(width):
        x = grid[int(round(col / (width - 1) * (len(grid) - 1)))][0]
        if train_lo <= x <= train_hi:
            marker[col] = "^"
    lines.append("".join(marker) + "  (^ = training support)")
    return "\n".join(lines)


def main() -> None:
    rng = np.random.default_rng(0)
    x_train = rng.uniform(-1.0, 1.0, (150, 1))
    y_train = np.sin(3.0 * x_train) + rng.normal(0, 0.08, x_train.shape)

    print("== training Bayesian regressor on noisy sine (n=150)")
    model = BayesianRegressor((1, 32, 32, 1), noise_sigma=0.08, seed=0, initial_sigma=0.03)
    history = model.fit(x_train, y_train, Adam(5e-3), epochs=200, batch_size=32, seed=0)
    print(f"   NLL: {history[0]:.3f} -> {history[-1]:.3f}")

    grid = np.linspace(-2.5, 2.5, 121)[:, None]
    mean, std = model.predict(grid, n_samples=80)
    inside = (np.abs(grid[:, 0]) <= 1.0)
    print(f"   mean predictive sigma inside training support : {std[inside].mean():.3f}")
    print(f"   mean predictive sigma outside                 : {std[~inside].mean():.3f}")
    print()
    print(ascii_band_plot(grid, mean[:, 0], std[:, 0], -1.0, 1.0))

    print("\n== save -> reload the posterior (the ship-to-FPGA artifact)")
    posterior = [
        {
            "mu_weights": layer.mu_weights,
            "sigma_weights": layer.sigma_weights(),
            "mu_bias": layer.mu_bias,
            "sigma_bias": layer.sigma_bias(),
        }
        for layer in model.layers
    ]
    with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
        save_posterior(handle.name, posterior)
        reloaded = load_posterior(handle.name)
    print(f"   {len(reloaded)} layers round-tripped; "
          f"layer shapes {[p['mu_weights'].shape for p in reloaded]}")


if __name__ == "__main__":
    main()
