"""GRNG shoot-out: quality and behaviour of every generator in the library.

Reproduces the §6.1 evaluation interactively: stability error (Table 1),
runs-test pass rate (Fig. 15), plus KS / chi-square / autocorrelation
diagnostics and the hardware-cost summary (Table 2) for the two proposed
designs.

Run:  python examples/grng_quality.py
"""

from __future__ import annotations

from repro.grng import available_grngs, make_grng
from repro.grng.quality import (
    autocorrelation,
    chi_square_normal,
    ks_normal,
    pass_rate,
    runs_test,
    stability_error,
)
from repro.hw.resources import grng_resources

SAMPLES = 50_000


def main() -> None:
    print(f"{'generator':<16} {'mu err':>8} {'sig err':>8} {'runs p':>8} "
          f"{'KS p':>8} {'chi2 p':>8} {'acf(1)':>8}")
    print("-" * 72)
    for name in available_grngs():
        generator = make_grng(name, seed=1)
        samples = generator.generate(SAMPLES)
        stability = stability_error(samples)
        runs_p = runs_test(samples).p_value
        _, ks_p = ks_normal(samples)
        _, chi_p = chi_square_normal(samples)
        acf = autocorrelation(samples, 1)
        print(
            f"{name:<16} {stability.mu_error:8.4f} {stability.sigma_error:8.4f} "
            f"{runs_p:8.3f} {ks_p:8.3f} {chi_p:8.3f} {acf:8.4f}"
        )

    print("\nRuns-test pass rates over 10 seeds (Fig. 15 style):")
    for name in ("bnnwallace", "wallace-4096", "wallace-nss"):
        rate = pass_rate(
            lambda seed, _n=name: make_grng(_n, seed), trials=10, samples_per_trial=20_000
        )
        print(f"  {name:<16} {rate:.0%}")

    print("\nHardware cost at 64 parallel lanes (Table 2 model):")
    for kind in ("rlf", "bnnwallace"):
        r = grng_resources(kind, 64)
        print(
            f"  {kind:<12} {r.alms:>6} ALMs  {r.memory_bits:>9,} mem bits  "
            f"{r.ram_blocks:>4} blocks  {r.power_mw:7.1f} mW  {r.fmax_mhz:7.2f} MHz"
        )


if __name__ == "__main__":
    main()
