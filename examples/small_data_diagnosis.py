"""Small-data disease diagnosis: the paper's motivating application.

§1 motivates BNNs with supervised tasks where data is scarce or noisy —
medical diagnosis being the running example (Table 7).  This example
trains the FNN/BNN pair on the synthetic Thoracic-Surgery and Parkinson
tasks, compares accuracies, and shows the BNN's *calibrated uncertainty*:
predictive entropy separates confident from uncertain patients, which a
plain FNN cannot provide.

Run:  python examples/small_data_diagnosis.py
"""

from __future__ import annotations

import numpy as np

from repro.bnn import MonteCarloPredictor, accuracy
from repro.bnn.metrics import expected_calibration_error
from repro.datasets import load_tabular_split
from repro.experiments.training import hardware_accuracy, train_pair


def main() -> None:
    for dataset in ("thoracic", "parkinson-modified"):
        print(f"== dataset: {dataset}")
        x_train, y_train, x_test, y_test = load_tabular_split(dataset, seed=0)
        n_features = x_train.shape[1]
        pair = train_pair(
            (n_features, 32, 32, 2),
            x_train,
            y_train,
            x_test,
            y_test,
            epochs=25,
            seed=0,
        )
        fnn_acc = pair.fnn_history.final_test_accuracy()
        bnn_acc = pair.bnn_history.final_test_accuracy()
        hw_acc = hardware_accuracy(pair.bnn, x_test, y_test, n_samples=30)
        print(f"   FNN+dropout accuracy : {fnn_acc:.3f}")
        print(f"   BNN (software)       : {bnn_acc:.3f}")
        print(f"   VIBNN (8-bit model)  : {hw_acc:.3f}")

        # Uncertainty: rank test patients by predictive entropy; accuracy on
        # the confident half should beat accuracy on the uncertain half.
        predictor = MonteCarloPredictor(pair.bnn, n_samples=50)
        entropy = predictor.predictive_entropy(x_test)
        predictions = predictor.predict(x_test)
        order = np.argsort(entropy)
        half = len(order) // 2
        confident = order[:half]
        uncertain = order[half:]
        print(f"   accuracy, most-confident half : "
              f"{accuracy(predictions[confident], y_test[confident]):.3f}")
        print(f"   accuracy, least-confident half: "
              f"{accuracy(predictions[uncertain], y_test[uncertain]):.3f}")
        probs = predictor.predict_proba(x_test)
        print(f"   expected calibration error    : "
              f"{expected_calibration_error(probs, y_test):.3f}")
        print()


if __name__ == "__main__":
    main()
