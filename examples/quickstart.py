"""Quickstart: train a BNN, ship it to the VIBNN accelerator model, compare.

This walks the paper's full pipeline end to end:

1. train a Bayesian neural network offline (Bayes-by-Backprop, §2.2);
2. export the variational parameters ``(mu, sigma)``;
3. run Monte-Carlo inference on the software BNN (eq. 6);
4. run the same inference on the 8-bit VIBNN accelerator model with the
   RLF-GRNG supplying the Gaussian noise, and compare accuracy,
   throughput and energy.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.bnn import Adam, MonteCarloPredictor, Trainer, accuracy
from repro.datasets import load_digits_split
from repro.experiments.training import make_bnn
from repro.grng import BnnWallaceGrng, GrngStream
from repro.hw.accelerator import VibnnAccelerator
from repro.hw.config import ArchitectureConfig


def main() -> None:
    print("== 1. data: synthetic 28x28 digits (MNIST substitute)")
    x_train, y_train, x_test, y_test = load_digits_split(
        n_train=1500, n_test=400, seed=0
    )
    print(f"   train {x_train.shape}, test {x_test.shape}")

    print("== 2. offline training: Bayes-by-Backprop BNN 784-100-10")
    bnn = make_bnn((784, 100, 10), seed=0)
    history = Trainer(bnn, Adam(3e-3), batch_size=32, epochs=20, seed=0).fit(
        x_train, y_train, x_test, y_test, eval_samples=20
    )
    print(f"   final train loss {history.train_loss[-1]:.3f}, "
          f"test accuracy {history.final_test_accuracy():.3f}")

    print("== 3. software MC inference (eq. 6, 30 samples, batched)")
    # All 30 MC passes run as one stacked tensor computation; the epsilons
    # come from the paper's BNNWallace GRNG through the block-sampling
    # seam (GrngStream buffers the generator into large block draws).
    predictor = MonteCarloPredictor(
        bnn, grng=GrngStream(BnnWallaceGrng(seed=0)), n_samples=30
    )
    software_acc = accuracy(predictor.predict(x_test), y_test)
    print(f"   software BNN accuracy: {software_acc:.4f}")

    print("== 4. VIBNN accelerator model (8-bit datapath, RLF-GRNG)")
    config = ArchitectureConfig(
        pe_sets=2, pes_per_set=8, pe_inputs=8, bit_length=8, grng_kind="rlf"
    )
    accelerator = VibnnAccelerator(config, bnn.posterior_parameters(), seed=0)
    result = accelerator.infer(x_test, n_samples=30)
    hardware_acc = accuracy(result.predictions, y_test)
    print(f"   VIBNN accuracy:        {hardware_acc:.4f} "
          f"(degradation {100 * (software_acc - hardware_acc):.2f} pp)")
    print(f"   modelled throughput:   {accelerator.images_per_second(1):,.0f} images/s "
          f"(single MC sample)")
    print(f"   modelled efficiency:   {accelerator.images_per_joule(1):,.0f} images/J")
    report = accelerator.resource_report()
    print(f"   modelled resources:    {report.alms:,} ALMs "
          f"({report.alm_utilization:.0%} of Cyclone V), "
          f"{report.memory_bits:,} memory bits")


if __name__ == "__main__":
    main()
