"""Inside the accelerator: word-level datapath walk-through.

Drives the detailed simulator (packed IFMem words, distributed WPMems,
PE-sets with wide accumulators) for one image and shows that it produces
bit-identical activations to the vectorised functional model — the
repository's functional-equivalence proof, narrated.

Also prints the layer schedule (iterations, groups, utilisation) that the
throughput model is built from.

Run:  python examples/accelerator_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.bnn import BayesianNetwork
from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.grng import ParallelRlfGrng
from repro.hw.accelerator import DetailedDatapathSimulator
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import schedule_network


def main() -> None:
    config = ArchitectureConfig(pe_sets=2, pes_per_set=4, pe_inputs=4, bit_length=8)
    sizes = (16, 12, 4)
    network = BayesianNetwork(sizes, seed=0, initial_sigma=0.05)
    posterior = network.posterior_parameters()

    print("== architecture")
    print(f"   T={config.pe_sets} PE-sets x S={config.pes_per_set} PEs x "
          f"N={config.pe_inputs} inputs, B={config.bit_length} bits")
    print(f"   weight format {config.weight_format}, "
          f"activation format {config.activation_format}")

    print("== layer schedule (cycle model)")
    schedule = schedule_network(config, sizes)
    for index, layer in enumerate(schedule.layers):
        print(f"   layer {index}: {layer.in_features}->{layer.out_features}  "
              f"iterations={layer.iterations} groups={layer.groups} "
              f"compute={layer.compute_cycles}cy fill={layer.fill_cycles} "
              f"drain={layer.drain_cycles}  MAC util={layer.mac_utilization:.0%}")
    print(f"   cycles per MC sample: {schedule.cycles_per_sample}")
    print(f"   GRNG numbers per pass: {schedule.gaussian_samples_per_image}")

    print("== functional equivalence: detailed datapath vs vectorised model")
    grng = ParallelRlfGrng(lanes=8, seed=1)
    functional = QuantizedBayesianNetwork(posterior, bit_length=8, grng=grng, seed=1)
    x = np.random.default_rng(2).uniform(0, 1, (1, sizes[0]))
    x_codes = functional.act_fmt.quantize(x)
    sampled = [functional._sample_layer_weights(layer) for layer in functional.layers]
    simulator = DetailedDatapathSimulator(config)
    detailed_out = simulator.run_network(x_codes[0], sampled)
    print(f"   detailed datapath output codes : {detailed_out.tolist()}")
    from repro.fixedpoint import requantize

    hidden = x_codes.astype(np.int64)
    acc_frac = functional.acc_frac_bits
    for index, (w, b) in enumerate(sampled):
        wide = hidden @ w.astype(np.int64) + b
        acc = requantize(wide, acc_frac, functional.act_fmt)
        hidden = np.maximum(acc, 0) if index < len(sampled) - 1 else acc
    print(f"   vectorised model output codes  : {hidden[0].tolist()}")
    match = (detailed_out == hidden[0]).all()
    print(f"   bit-exact match: {bool(match)}")
    print(f"   simulator cycles consumed: {simulator.cycles}")


if __name__ == "__main__":
    main()
