"""Benchmark: regenerate Table 1 (GRNG stability errors)."""

from repro.experiments import table1


def test_table1_stability(record_experiment):
    result = record_experiment(
        "table1", table1.run, table1.render
    )
    rows = result["rows"]
    # Shape assertions from the paper: software error falls with pool size,
    # NSS is the worst Wallace variant, the proposed designs are comparable
    # to the biggest software pool.
    assert rows["wallace-256"]["sigma_error"] > rows["wallace-4096"]["sigma_error"]
    assert rows["wallace-nss"]["sigma_error"] >= rows["bnnwallace"]["sigma_error"]
    assert rows["bnnwallace"]["sigma_error"] < 5 * rows["wallace-4096"]["sigma_error"] + 0.02
