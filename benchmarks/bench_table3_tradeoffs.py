"""Benchmark: regenerate Table 3 (qualitative trade-off checks)."""

from repro.experiments import table3


def test_table3_tradeoffs(record_experiment):
    result = record_experiment("table3", table3.run, table3.render)
    assert all(result["claims"].values()), "a paper claim is violated by the model"
