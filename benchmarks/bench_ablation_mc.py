"""Benchmark: MC sample count and epsilon-source ablations."""

from repro.experiments import ablation_mc


def test_ablation_mc(record_experiment):
    result = record_experiment("ablation_mc", ablation_mc.run, ablation_mc.render)
    import pytest

    sweep = {p["n_samples"]: p for p in result["sweep"]}
    # Throughput divides by N.
    assert sweep[10]["paper_images_per_second"] * 10 == pytest.approx(
        sweep[1]["paper_images_per_second"]
    )
    # More samples should not hurt accuracy materially.
    assert sweep[30]["accuracy"] >= sweep[1]["accuracy"] - 0.03
    # Hardware GRNGs within a few percent of the ideal sampler.
    sources = result["sources"]
    ideal = sources["ideal (NumPy)"]
    assert sources["RLF-GRNG"] >= ideal - 0.05
    assert sources["BNNWallace-GRNG"] >= ideal - 0.05
