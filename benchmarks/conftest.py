"""Shared benchmark plumbing.

Every benchmark regenerates one table/figure of the paper via the
experiment registry, times the run with pytest-benchmark (one round —
these are experiments, not microbenchmarks), and writes the rendered
table to ``benchmarks/results/<experiment>.txt`` so the reproduction
artifacts persist next to the timing data.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.obs import BenchRecorder

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_experiment(results_dir, benchmark):
    """Run an experiment once under the benchmark timer; save its table.

    Alongside the rendered table, each experiment writes a structured
    recorder JSON (``experiment_<name>.json``) carrying its wall time so
    the regression wall sees experiment runs too (timing only — machine
    dependent, so not compared in smoke mode).
    """

    def _run(name: str, run_fn, render_fn, **kwargs):
        start = time.perf_counter()
        result = benchmark.pedantic(
            lambda: run_fn(**kwargs), rounds=1, iterations=1
        )
        runtime_s = time.perf_counter() - start
        rendered = render_fn(result)
        (results_dir / f"{name}.txt").write_text(rendered)
        recorder = BenchRecorder(
            f"experiment_{name}", mode="full", config={"experiment": name}
        )
        recorder.record("runtime_s", runtime_s, unit="s", direction="lower")
        recorder.write(results_dir)
        print()
        print(rendered)
        return result

    return _run
