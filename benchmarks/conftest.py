"""Shared benchmark plumbing.

Every benchmark regenerates one table/figure of the paper via the
experiment registry, times the run with pytest-benchmark (one round —
these are experiments, not microbenchmarks), and writes the rendered
table to ``benchmarks/results/<experiment>.txt`` so the reproduction
artifacts persist next to the timing data.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_experiment(results_dir, benchmark):
    """Run an experiment once under the benchmark timer; save its table."""

    def _run(name: str, run_fn, render_fn, **kwargs):
        result = benchmark.pedantic(
            lambda: run_fn(**kwargs), rounds=1, iterations=1
        )
        rendered = render_fn(result)
        (results_dir / f"{name}.txt").write_text(rendered)
        print()
        print(rendered)
        return result

    return _run
