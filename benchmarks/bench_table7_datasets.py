"""Benchmark: regenerate Table 7 (disease-dataset accuracy of the trio)."""

from repro.experiments import table7


def test_table7_datasets(record_experiment):
    result = record_experiment("table7", table7.run, table7.render)
    rows = result["rows"]
    assert len(rows) >= 4
    bnn_beats = 0
    for name, row in rows.items():
        # Every model must clearly beat chance on its (binary) task.
        assert row["fnn"] > 0.55, name
        assert row["bnn"] > 0.55, name
        # Hardware within a few percent of the software BNN.
        assert row["vibnn"] >= row["bnn"] - 0.05, name
        if row["bnn"] >= row["fnn"] - 0.01:
            bnn_beats += 1
    # Shape: the BNN is at least competitive on most datasets.
    assert bnn_beats >= len(rows) // 2
