"""Benchmark: GRNG design-choice ablations (RLF step policy, SeMem width,
Wallace sharing/units/phase)."""

from repro.experiments import ablation_rlf, ablation_wallace


def test_ablation_rlf(record_experiment):
    result = record_experiment("ablation_rlf", ablation_rlf.run, ablation_rlf.render)
    single = result["step_rows"]["single-step (eq. 10)"]
    double = result["step_rows"]["double-step (eqs. 12)"]
    # The combined update's wider delta must reduce walk persistence.
    assert double["lane_lag_acf"] <= single["lane_lag_acf"] + 0.02
    # Wider SeMem -> closer to normal (monotone KS trend end-to-end).
    widths = result["width_rows"]
    assert widths[255]["ks_statistic"] <= widths[31]["ks_statistic"]


def test_ablation_wallace(record_experiment):
    result = record_experiment(
        "ablation_wallace", ablation_wallace.run, ablation_wallace.render
    )
    sharing = result["sharing"]
    assert (
        sharing["BNNWallace (sharing+shifting)"]
        > sharing["Wallace-NSS (no sharing/shifting)"]
    )
    # Fixed-total-memory sweep: quality stays in one band across splits.
    sigma_errors = [row["sigma_error"] for row in result["fixed_memory"].values()]
    assert max(sigma_errors) < 0.1
    # Per-cycle phase keeps the pool-pass-lag correlation small.
    assert abs(result["pool_pass_acf"]) < 0.1
