"""Benchmark: regenerate Table 6 (digit-task accuracy of the model trio)."""

from repro.experiments import table6


def test_table6_accuracy(record_experiment):
    result = record_experiment("table6", table6.run, table6.render)
    acc = result["accuracies"]
    fnn = acc["FNN+Dropout (Software)"]
    bnn = acc["BNN (Software)"]
    vibnn = acc["VIBNN (Hardware)"]
    # Shape: all three models are competent; the BNN is at least
    # competitive with the dropout FNN; the 8-bit hardware path loses only
    # a small amount vs the float software BNN (paper: 0.29 pp).
    assert fnn > 0.8 and bnn > 0.8
    assert bnn >= fnn - 0.03
    assert vibnn >= bnn - 0.03
