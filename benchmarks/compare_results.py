"""Regression wall: diff benchmark results against a committed baseline.

Pairs every ``*.json`` result document in the baseline directory with the
same-named file in the results directory and runs the schema-1 comparator
(:func:`repro.obs.bench.compare_result_dicts`).  Exits non-zero listing
every regression, so CI turns measured wins into a defended floor.

Modes:

* default (full) — compare every metric, including machine-dependent
  timings.  Meaningful only when baseline and results come from the same
  machine.
* ``--smoke`` — compare only metrics flagged ``comparable`` (seeded,
  machine-independent: bit-exactness booleans, accuracy deltas, saved
  fractions).  This is what CI runs against the checked-in quick-mode
  baseline in ``benchmarks/baselines/quick/``.

Run:  PYTHONPATH=src python benchmarks/compare_results.py \
          --baseline benchmarks/baselines/quick --results benchmarks/results \
          --smoke
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.obs import DEFAULT_THRESHOLD, compare_result_dicts, load_result

HERE = pathlib.Path(__file__).parent


def compare_dirs(
    baseline_dir: pathlib.Path,
    results_dir: pathlib.Path,
    *,
    threshold: float,
    smoke: bool,
) -> int:
    baselines = sorted(baseline_dir.glob("*.json"))
    if not baselines:
        print(f"FAIL: no baseline documents in {baseline_dir}")
        return 2
    failures = 0
    compared = 0
    for base_path in baselines:
        new_path = results_dir / base_path.name
        if not new_path.exists():
            print(f"FAIL {base_path.stem}: no matching result in {results_dir}")
            failures += 1
            continue
        baseline = load_result(base_path)
        new = load_result(new_path)
        problems = compare_result_dicts(
            new, baseline, threshold=threshold, comparable_only=smoke
        )
        compared += 1
        if problems:
            failures += 1
            print(f"FAIL {base_path.stem}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {base_path.stem}")
    mode = "smoke (comparable metrics only)" if smoke else "full"
    print(
        f"compared {compared}/{len(baselines)} baseline documents "
        f"[{mode}, threshold {threshold:.0%}] -> "
        f"{'PASS' if failures == 0 else f'{failures} FAILED'}"
    )
    return 0 if failures == 0 else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=HERE / "baselines" / "quick",
        help="directory of committed baseline result documents",
    )
    parser.add_argument(
        "--results",
        type=pathlib.Path,
        default=HERE / "results",
        help="directory of freshly produced result documents",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression threshold (fraction of the baseline value)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="compare only machine-independent (comparable) metrics",
    )
    args = parser.parse_args(argv)
    return compare_dirs(
        args.baseline, args.results, threshold=args.threshold, smoke=args.smoke
    )


if __name__ == "__main__":
    sys.exit(main())
