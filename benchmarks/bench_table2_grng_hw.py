"""Benchmark: regenerate Table 2 (GRNG hardware utilisation/performance).

Also times raw sample generation of both GRNGs — the operational quantity
behind the frequency column.
"""

import pytest

from repro.experiments import table2
from repro.grng import BnnWallaceGrng, ParallelRlfGrng


def test_table2_grng_hw(record_experiment):
    result = record_experiment("table2", table2.run, table2.render)
    rlf = result["reports"]["rlf"]
    wal = result["reports"]["bnnwallace"]
    assert rlf.memory_bits < wal.memory_bits
    assert rlf.fmax_mhz > wal.fmax_mhz
    assert wal.alms < rlf.alms


@pytest.mark.parametrize(
    "factory,label",
    [
        (lambda: ParallelRlfGrng(lanes=64, seed=0), "rlf-64lane"),
        (lambda: BnnWallaceGrng(units=16, pool_size=256, seed=0), "wallace-16unit"),
    ],
    ids=["rlf", "bnnwallace"],
)
def test_grng_generation_rate(benchmark, factory, label):
    grng = factory()
    samples = benchmark(lambda: grng.generate(4096))
    assert samples.shape == (4096,)
