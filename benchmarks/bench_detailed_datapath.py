"""Benchmark: batched detailed datapath vs. the seed per-word loop.

Three bit-exactness gates (enforced in every mode, including ``--quick``)
and one speedup measurement:

1. **Batched-vs-loop-vs-functional equivalence** — on two design points
   (rlf and bnnwallace GRNGs),
   :meth:`~repro.hw.accelerator.DetailedDatapathSimulator.run_network_batch`
   must be bit-for-bit equal for every image/pass both to the per-image
   :meth:`~repro.hw.accelerator.DetailedDatapathSimulator.run_network`
   loop over the same sampled weight stacks and to
   :meth:`~repro.bnn.quantized.QuantizedBayesianNetwork.forward_stacked_codes`
   on an identically seeded network — the §5-computes-eq.(6) proof.  The
   simulators' aggregate cycle accounting must agree as well.
2. **Windowed faulty GRNGs vs. the per-cycle reference** — codes, state
   and incremental counts, for fault counts {0, 1, 4}.
3. **Closed-form pipeline report vs. the per-cycle while-loop** — exact
   equality for ``stall_every`` in {0, 1, 2, 7, 64}.
4. **Detailed-path speedup** on the digits 784-100-10 layer run: the
   batched path against the seed per-word loop, per (image × pass).
   Acceptance target >= 10x, enforced in full mode only.

Run:  PYTHONPATH=src python benchmarks/bench_detailed_datapath.py [--quick]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.grng import BnnWallaceGrng, GrngStream, ParallelRlfGrng
from repro.hw.accelerator import DetailedDatapathSimulator
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import schedule_network
from repro.hw.faults import FaultyBnnWallaceGrng, FaultyRlfGrng, random_seu_faults
from repro.hw.pipeline import closed_form_layer_pipeline, simulate_layer_pipeline
from repro.obs import BenchRecorder

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SMALL_CFG_KWARGS = dict(pe_sets=2, pes_per_set=4, pe_inputs=4, bit_length=8)


def _grng_for(kind: str, seed: int) -> GrngStream:
    if kind == "rlf":
        return GrngStream(ParallelRlfGrng(lanes=8, seed=seed))
    return GrngStream(BnnWallaceGrng(units=4, pool_size=64, seed=seed))


def check_batch_equivalence(quick: bool) -> None:
    """Gate 1: batched vs per-image detailed path vs functional model."""
    n_samples = 3 if quick else 6
    batch = 5 if quick else 10
    sizes = (12, 9, 4)
    posterior = BayesianNetwork(sizes, seed=0, initial_sigma=0.05).posterior_parameters()
    x = np.random.default_rng(2).uniform(0, 1, (batch, sizes[0]))
    print("== Batched detailed path: bit-for-bit equivalence gate")
    for kind in ("rlf", "bnnwallace"):
        config = ArchitectureConfig(grng_kind=kind, **SMALL_CFG_KWARGS)
        nets = [
            QuantizedBayesianNetwork(
                posterior, bit_length=8, grng=_grng_for(kind, seed=1), seed=1
            )
            for _ in range(3)
        ]
        x_codes = nets[0].act_fmt.quantize(x)
        sim_batch = DetailedDatapathSimulator(config)
        batched = sim_batch.run_network_batch(nets[0], x_codes, n_samples)
        # Per-image loop over the same weight stacks (identically seeded
        # GrngStream => identical epsilon block).
        sampled = nets[1].sample_weight_stacks(n_samples)
        sim_loop = DetailedDatapathSimulator(config)
        for p in range(n_samples):
            per_pass = [(w[p], b[p]) for w, b in sampled]
            for image in range(batch):
                reference = sim_loop.run_network(x_codes[image], per_pass)
                if not np.array_equal(batched[p, image], reference):
                    raise SystemExit(
                        f"FAIL: batched != per-image loop ({kind}, pass {p}, "
                        f"image {image})"
                    )
        if sim_batch.cycles != sim_loop.cycles:
            raise SystemExit(
                f"FAIL: cycle accounting diverged ({kind}): "
                f"batched {sim_batch.cycles} vs loop {sim_loop.cycles}"
            )
        functional = nets[2].forward_stacked_codes(x_codes, n_samples)
        if not np.array_equal(batched, functional):
            raise SystemExit(f"FAIL: batched != functional model ({kind})")
        print(
            f"  {kind:<12} batched == per-image loop == functional "
            f"({n_samples} passes x {batch} images, {sim_batch.cycles} cycles)"
        )
    print()


def check_fault_equivalence(quick: bool) -> None:
    """Gate 2: windowed faulty GRNGs vs the per-cycle reference."""
    count = 600 if quick else 5_000
    print("== Windowed faulty GRNGs: bit-exact vs per-cycle reference")
    for n_faults in (0, 1, 4):
        faults = random_seu_faults(n_faults, depth=255, seed=7)
        windowed = FaultyRlfGrng(faults, lanes=16, seed=3)
        loop = FaultyRlfGrng(faults, lanes=16, seed=3)
        same = np.array_equal(
            windowed.generate_codes(count), loop.generate_codes_loop(count)
        )
        state_same = (
            np.array_equal(windowed._grng.state, loop._grng.state)
            and np.array_equal(windowed._grng.counts, loop._grng.counts)
            and windowed._grng.head == loop._grng.head
        )
        if not (same and state_same):
            raise SystemExit(f"FAIL: faulty RLF windowed != loop ({n_faults} faults)")
        pool_faults = random_seu_faults(n_faults, depth=64, seed=9, binary=False)
        w_windowed = FaultyBnnWallaceGrng(pool_faults, units=4, pool_size=64, seed=3)
        w_loop = FaultyBnnWallaceGrng(pool_faults, units=4, pool_size=64, seed=3)
        w_same = np.array_equal(
            w_windowed.generate(count), w_loop.generate_loop(count)
        ) and np.array_equal(w_windowed._grng.pools, w_loop._grng.pools)
        if not w_same:
            raise SystemExit(
                f"FAIL: faulty Wallace windowed != loop ({n_faults} faults)"
            )
        print(f"  {n_faults} fault(s): rlf + wallace bit-exact over {count} samples")
    print()


def check_pipeline_closed_form() -> None:
    """Gate 3: closed-form pipeline report vs the per-cycle while-loop."""
    config = ArchitectureConfig(**SMALL_CFG_KWARGS)
    print("== Closed-form pipeline report: exact equality vs cycle loop")
    checked = 0
    for sizes in ((784, 100, 10), (130, 40, 12), (9, 5, 3)):
        for layer in schedule_network(config, sizes).layers:
            for stall_every in (0, 1, 2, 7, 64):
                loop = simulate_layer_pipeline(config, layer, stall_every=stall_every)
                closed = closed_form_layer_pipeline(
                    config, layer, stall_every=stall_every
                )
                if loop != closed:
                    raise SystemExit(
                        f"FAIL: closed form != loop for {sizes}, "
                        f"stall_every={stall_every}"
                    )
                checked += 1
    print(f"  {checked} (layer, stall_every) points exactly equal")
    print()


def bench_detailed_speedup(quick: bool) -> float:
    """Digits 784-100-10 detailed layer run: batched vs seed per-word loop."""
    sizes = (784, 100, 10)
    scalar_images = 1 if quick else 3
    batch = 20 if quick else 100
    n_samples = 2 if quick else 10
    config = ArchitectureConfig.paper()
    posterior = BayesianNetwork(sizes, seed=0).posterior_parameters()

    def network() -> QuantizedBayesianNetwork:
        return QuantizedBayesianNetwork(
            posterior,
            bit_length=8,
            grng=GrngStream(ParallelRlfGrng(lanes=64, seed=0)),
            seed=0,
        )

    net = network()
    x = np.random.default_rng(0).uniform(0, 1, (batch, sizes[0]))
    x_codes = net.act_fmt.quantize(x)
    print(
        f"== Detailed-datapath digits run ({'x'.join(map(str, sizes))}, "
        f"paper design point, rlf)"
    )
    sampled = network().sample_weight_stacks(1)
    per_pass = [(w[0], b[0]) for w, b in sampled]
    sim_loop = DetailedDatapathSimulator(config)
    start = time.perf_counter()
    for image in range(scalar_images):
        sim_loop.run_network(x_codes[image], per_pass)
    scalar_seconds = (time.perf_counter() - start) / scalar_images
    sim_batch = DetailedDatapathSimulator(config)
    start = time.perf_counter()
    sim_batch.run_network_batch(net, x_codes, n_samples)
    batched_seconds = (time.perf_counter() - start) / (batch * n_samples)
    speedup = scalar_seconds / batched_seconds
    print(f"{'per-word loop (seed path)':<40}{1.0 / scalar_seconds:>10.2f} img*pass/s")
    print(f"{'batched lockstep kernels':<40}{1.0 / batched_seconds:>10.2f} img*pass/s")
    print()
    print(f"detailed-path speedup: {speedup:.1f}x  (target >= 10x)")
    return speedup


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: tiny workloads, no absolute-speedup enforcement",
    )
    args = parser.parse_args(argv)
    recorder = BenchRecorder(
        "bench_detailed_datapath",
        mode="quick" if args.quick else "full",
        config={"quick": args.quick},
    )
    check_batch_equivalence(args.quick)  # SystemExit on mismatch
    check_fault_equivalence(args.quick)
    check_pipeline_closed_form()
    recorder.record("datapath_bit_exact", 1.0, unit="bool", comparable=True)
    speedup = bench_detailed_speedup(args.quick)
    recorder.record("detailed_speedup", speedup, unit="x")
    print(f"results written to {recorder.write(RESULTS_DIR)}")
    if not args.quick and speedup < 10.0:
        print(f"FAIL: detailed-path speedup {speedup:.1f}x below the 10x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
