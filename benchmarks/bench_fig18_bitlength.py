"""Benchmark: regenerate Fig. 18 (bit-length vs test accuracy)."""

from repro.experiments import fig18


def test_fig18_bitlength(record_experiment):
    result = record_experiment("fig18", fig18.run, fig18.render)
    by_bits = {p["bits"]: p["accuracy"] for p in result["points"]}
    # Expected shape: a cliff at very low widths, saturation at high widths,
    # and 8-bit within the acceptance threshold (the paper's chosen point).
    assert by_bits[4] < by_bits[16]
    assert by_bits[8] >= result["threshold"]
    assert result["smallest_passing_bits"] is not None
    assert result["smallest_passing_bits"] <= 8
