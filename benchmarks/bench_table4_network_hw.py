"""Benchmark: regenerate Table 4 (full-design FPGA resource utilisation)."""

import pytest

from repro.experiments import table4


def test_table4_network_hw(record_experiment):
    result = record_experiment("table4", table4.run, table4.render)
    rlf = result["reports"]["rlf"]
    wal = result["reports"]["bnnwallace"]
    # Calibration: the model must land on the paper's design points.
    assert rlf.alms == pytest.approx(98_006, rel=0.001)
    assert wal.alms == pytest.approx(91_126, rel=0.001)
    assert rlf.memory_bits == 4_572_928
    assert wal.memory_bits == 4_880_128
    assert rlf.fits_device() and wal.fits_device()
