"""Benchmark: regenerate Table 5 (throughput and energy efficiency).

The CPU row is measured live on this host; the FPGA rows come from the
cycle/power models.  The headline shape — FPGA orders of magnitude more
energy-efficient than the software platforms — must hold.
"""

from repro.experiments import table5


def test_table5_throughput(record_experiment):
    result = record_experiment("table5", table5.run, table5.render)
    rows = result["rows"]
    cpu_label = next(k for k in rows if k.startswith("Intel"))
    rlf_label = next(k for k in rows if k.startswith("RLF"))
    wal_label = next(k for k in rows if k.startswith("BNNWallace"))
    cpu_ips, cpu_ipj = rows[cpu_label]
    rlf_ips, rlf_ipj = rows[rlf_label]
    wal_ips, wal_ipj = rows[wal_label]
    # Shape: both FPGA designs beat the measured CPU on throughput and
    # energy by a wide margin; the RLF design is the most efficient.
    assert rlf_ips > 10 * cpu_ips
    assert rlf_ipj > 50 * cpu_ipj
    assert rlf_ipj > wal_ipj
    assert rlf_ips == wal_ips  # both run at the same system clock
