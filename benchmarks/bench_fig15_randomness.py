"""Benchmark: regenerate Fig. 15 (runs-test pass rates)."""

from repro.experiments import fig15


def test_fig15_randomness(record_experiment):
    result = record_experiment("fig15", fig15.run, fig15.render)
    rates = result["rates"]
    # The paper's headline: the NSS ablation fails where every proper
    # design passes.
    for good in ("wallace-256", "wallace-1024", "wallace-4096", "bnnwallace"):
        assert rates[good] >= 0.65, good
    assert rates["wallace-nss"] < min(
        rates[g] for g in ("wallace-256", "wallace-1024", "wallace-4096", "bnnwallace")
    )
