"""Benchmark: vectorized training layer vs. the seed per-position loops.

Four bit-exactness gates (enforced in every mode, including ``--quick``)
and three speedup measurements:

1. **im2col / col2im vs. the loop references** — the strided-gather
   :func:`~repro.bnn.convolution.im2col` and block-add
   :func:`~repro.bnn.convolution.col2im` must match
   ``im2col_loop``/``col2im_loop`` bit for bit over a battery of shapes,
   strides, kernels and paddings.
2. **Stacked eq.(6) vs. the per-sample loop** — ``predict_proba`` (the
   stacked fast path) must equal ``predict_proba_loop`` bit for bit for
   dense and convolutional BNNs on identically seeded twins, and the
   seed-replica evaluation (per-pass softplus, loop im2col, mask pooling)
   must agree too — proving the replica used as the speedup baseline
   computes exactly what the stacked path computes.
3. **Parallel run-all vs. sequential** — the process-pool runner's
   rendered output must be string-identical to the sequential run's.
4. **Cache-hit vs. cold-run artifacts** — training through the artifact
   cache twice must yield bit-identical posteriors and histories, with
   the expected hit/miss counts.

Speedups (asserted in full mode only; CI machines are noisy, so
``--quick`` just prints them):

* conv training epoch (two-stage 56x56 net, batch 4, precomputed
  stage-1 patches) vs. the seed replica — target >= 5x;
* conv MC evaluation sweep (28x28 net, 256 images, N=30) vs. the seed
  replica — target >= 3x;
* dense MC evaluation sweep — reported for the record (the dense path's
  GEMMs already dominated, so the win there is memory, not wall-clock).

The seed replica reproduces PR 4's training/eval arithmetic term for term
(per-pass softplus, loop im2col/col2im, einsum weight gradients, mask
pooling with full-resolution division, layer-0 input gradients) — it was
validated bit-for-bit against a checkout of the seed revision.

Run:  PYTHONPATH=src python benchmarks/bench_training.py [--quick]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
import time

import numpy as np

from repro.bnn.activations import relu, relu_grad, sigmoid, softmax, softplus
from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.conv_network import BayesianConvNetwork
from repro.bnn.convolution import (
    MaxPool2dLayer,
    col2im,
    col2im_loop,
    im2col,
    im2col_loop,
    maxpool_positions,
)
from repro.bnn.losses import cross_entropy_loss
from repro.bnn.optimizers import Adam
from repro.experiments.artifacts import ArtifactCache, set_active_cache
from repro.experiments.runner import run_experiments
from repro.experiments.training import train_bnn
from repro.obs import BenchRecorder

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# ----------------------------------------------------------------------
# Seed replica: PR 4's conv training/eval arithmetic, term for term.
# ----------------------------------------------------------------------


def _seed_conv_forward(layer, x):
    x = np.asarray(x, dtype=np.float64)
    out_channels, out_h, out_w = layer.output_shape(x.shape[1:])
    eps_w = layer._eps_rng.standard_normal(layer.mu_weights.shape)
    eps_b = layer._eps_rng.standard_normal(layer.mu_bias.shape)
    weights = layer.mu_weights + softplus(layer.rho_weights) * eps_w
    bias = layer.mu_bias + softplus(layer.rho_bias) * eps_b
    patches = im2col_loop(x, layer.kernel_size, layer.stride, layer.padding)
    out = patches @ weights + bias
    cache = {
        "patches": patches,
        "eps_w": eps_w,
        "eps_b": eps_b,
        "weights": weights,
        "input_shape": x.shape,
    }
    return out.transpose(0, 2, 1).reshape(-1, out_channels, out_h, out_w), cache


def _seed_conv_backward(layer, cache, grad_output, kl_scale, prior):
    batch, out_channels, _, _ = grad_output.shape
    grad_flat = grad_output.reshape(batch, out_channels, -1).transpose(0, 2, 1)
    grad_w = np.einsum("bpf,bpo->fo", cache["patches"], grad_flat)
    grad_b = grad_flat.sum(axis=(0, 1))
    sig_rho_w = sigmoid(layer.rho_weights)
    sig_rho_b = sigmoid(layer.rho_bias)
    grads = [
        grad_w.copy(),
        grad_w * cache["eps_w"] * sig_rho_w,
        grad_b.copy(),
        grad_b * cache["eps_b"] * sig_rho_b,
    ]
    if kl_scale > 0.0 and prior.closed_form:
        sigma_w, sigma_b = softplus(layer.rho_weights), softplus(layer.rho_bias)
        kl_mu_w, kl_sig_w = prior.kl_grad(layer.mu_weights, sigma_w)
        kl_mu_b, kl_sig_b = prior.kl_grad(layer.mu_bias, sigma_b)
        grads[0] += kl_scale * kl_mu_w
        grads[1] += kl_scale * kl_sig_w * sig_rho_w
        grads[2] += kl_scale * kl_mu_b
        grads[3] += kl_scale * kl_sig_b * sig_rho_b
    grad_patches = grad_flat @ cache["weights"].T
    grad_x = col2im_loop(
        grad_patches,
        cache["input_shape"],
        layer.kernel_size,
        layer.stride,
        layer.padding,
    )
    return grad_x, grads


def _seed_pool_forward(x, p):
    batch, channels, height, width = x.shape
    view = x.reshape(batch, channels, height // p, p, width // p, p)
    out = view.max(axis=(3, 5))
    mask = view == out[:, :, :, None, :, None]
    return out, {"mask": mask, "shape": x.shape}


def _seed_pool_backward(cache, grad_output):
    mask = cache["mask"]
    grad = mask * grad_output[:, :, :, None, :, None]
    counts = mask.sum(axis=(3, 5), keepdims=True)
    return (grad / counts).reshape(cache["shape"])


def _seed_dense_forward(layer, x):
    eps_w = layer._eps_rng.standard_normal(layer.mu_weights.shape)
    eps_b = layer._eps_rng.standard_normal(layer.mu_bias.shape)
    sampled_w = layer.mu_weights + softplus(layer.rho_weights) * eps_w
    sampled_b = layer.mu_bias + softplus(layer.rho_bias) * eps_b
    cache = {"input": x, "eps_w": eps_w, "eps_b": eps_b, "w": sampled_w}
    return x @ sampled_w + sampled_b, cache


def _seed_dense_backward(layer, cache, grad_output, kl_scale, prior):
    grad_w = cache["input"].T @ grad_output
    grad_b = grad_output.sum(axis=0)
    sig_rho_w = sigmoid(layer.rho_weights)
    sig_rho_b = sigmoid(layer.rho_bias)
    grads = [
        grad_w.copy(),
        grad_w * cache["eps_w"] * sig_rho_w,
        grad_b.copy(),
        grad_b * cache["eps_b"] * sig_rho_b,
    ]
    if kl_scale > 0.0 and prior.closed_form:
        sigma_w, sigma_b = softplus(layer.rho_weights), softplus(layer.rho_bias)
        kl_mu_w, kl_sig_w = prior.kl_grad(layer.mu_weights, sigma_w)
        kl_mu_b, kl_sig_b = prior.kl_grad(layer.mu_bias, sigma_b)
        grads[0] += kl_scale * kl_mu_w
        grads[1] += kl_scale * kl_sig_w * sig_rho_w
        grads[2] += kl_scale * kl_mu_b
        grads[3] += kl_scale * kl_sig_b * sig_rho_b
    return grad_output @ cache["w"].T, grads


def seed_conv_train_step(net, x, labels, optimizer, kl_scale):
    """The seed's per-position-loop ELBO step on ``net``'s parameters."""
    hidden = np.asarray(x, dtype=np.float64)
    conv_caches, pool_caches, pre_list = [], [], []
    for conv, pool in zip(net.conv_layers, net.pools):
        pre, cache = _seed_conv_forward(conv, hidden)
        conv_caches.append(cache)
        pre_list.append(pre)
        hidden, pool_cache = _seed_pool_forward(relu(pre), pool.pool_size)
        pool_caches.append(pool_cache)
    flat_shape = hidden.shape
    logits, head_cache = _seed_dense_forward(net.head, hidden.reshape(len(x), -1))
    nll, grad = cross_entropy_loss(logits, labels)
    grad, head_grads = _seed_dense_backward(
        net.head, head_cache, grad, kl_scale, net.prior
    )
    grad = grad.reshape(flat_shape)
    layer_grads = [None] * len(net.conv_layers)
    for index in range(len(net.conv_layers) - 1, -1, -1):
        grad = _seed_pool_backward(pool_caches[index], grad)
        grad = grad * relu_grad(pre_list[index])
        grad, layer_grads[index] = _seed_conv_backward(
            net.conv_layers[index], conv_caches[index], grad, kl_scale, net.prior
        )
    params, grads = [], []
    for conv, conv_grads in zip(net.conv_layers, layer_grads):
        params.extend(conv.parameters())
        grads.extend(conv_grads)
    params.extend(net.head.parameters())
    grads.extend(head_grads)
    optimizer.update(params, grads)
    return nll


def seed_conv_predict_proba(net, x, n_samples):
    """The seed's eq.(6): per-sample loop, loop im2col, per-pass softplus."""
    x = np.asarray(x, dtype=np.float64)
    total = np.zeros((x.shape[0], net.head.out_features))
    for _ in range(n_samples):
        hidden = x
        for conv, pool in zip(net.conv_layers, net.pools):
            pre, _ = _seed_conv_forward(conv, hidden)
            hidden, _ = _seed_pool_forward(relu(pre), pool.pool_size)
        logits, _ = _seed_dense_forward(net.head, hidden.reshape(len(x), -1))
        total += softmax(logits)
    return total / n_samples


def seed_dense_predict_proba(net, x, n_samples):
    """The seed's dense eq.(6): per-pass softplus + per-pass GEMMs."""
    x = np.asarray(x, dtype=np.float64)
    total = np.zeros((x.shape[0], net.layer_sizes[-1]))
    last = len(net.layers) - 1
    for _ in range(n_samples):
        hidden = x
        for index, layer in enumerate(net.layers):
            eps_w = layer._eps_rng.standard_normal(layer.mu_weights.shape)
            eps_b = layer._eps_rng.standard_normal(layer.mu_bias.shape)
            sampled_w = layer.mu_weights + softplus(layer.rho_weights) * eps_w
            sampled_b = layer.mu_bias + softplus(layer.rho_bias) * eps_b
            pre = hidden @ sampled_w + sampled_b
            hidden = relu(pre) if index < last else pre
        total += softmax(hidden)
    return total / n_samples


# ----------------------------------------------------------------------
# Gate 1: im2col / col2im bit-exactness
# ----------------------------------------------------------------------
def check_im2col_equivalence() -> None:
    print("== im2col/col2im: bit-for-bit equivalence vs the loop references")
    rng = np.random.default_rng(0)
    shapes = [
        (2, 1, 8, 8, 3, 1, 1),
        (3, 4, 10, 7, 3, 1, 0),
        (1, 2, 12, 12, 5, 2, 2),
        (4, 3, 9, 9, 2, 2, 0),
        (2, 2, 6, 11, 4, 3, 1),
    ]
    for batch, channels, height, width, kernel, stride, padding in shapes:
        x = rng.standard_normal((batch, channels, height, width))
        fast = im2col(x, kernel, stride, padding)
        loop = im2col_loop(x, kernel, stride, padding)
        if not np.array_equal(fast, loop):
            raise SystemExit(f"FAIL: im2col != loop for {x.shape} k{kernel}")
        grads = rng.standard_normal(fast.shape)
        back = col2im(grads, x.shape, kernel, stride, padding)
        back_loop = col2im_loop(grads, x.shape, kernel, stride, padding)
        if not np.array_equal(back, back_loop):
            raise SystemExit(f"FAIL: col2im != loop for {x.shape} k{kernel}")
    print(f"  {len(shapes)} shape/stride/padding points exactly equal\n")


# ----------------------------------------------------------------------
# Gate 2: stacked eq.(6) bit-exactness (dense + conv + seed replica)
# ----------------------------------------------------------------------
def check_stacked_equivalence(quick: bool) -> None:
    n_samples = 4 if quick else 10
    print("== Stacked predict_proba: bit-for-bit vs per-sample loop + seed replica")
    x = np.random.default_rng(1).random((24, 30))
    dense = [BayesianNetwork((30, 16, 5), seed=3) for _ in range(3)]
    stacked = dense[0].predict_proba(x, n_samples=n_samples)
    loop = dense[1].predict_proba_loop(x, n_samples=n_samples)
    replica = seed_dense_predict_proba(dense[2], x, n_samples)
    if not (np.array_equal(stacked, loop) and np.array_equal(stacked, replica)):
        raise SystemExit("FAIL: dense stacked != loop/replica")
    print(f"  dense  (30-16-5):    stacked == loop == seed replica ({n_samples} passes)")
    cx = np.random.default_rng(2).random((10, 1, 12, 12))
    convs = [
        BayesianConvNetwork((1, 12, 12), conv_channels=(4, 3), n_classes=5, seed=5)
        for _ in range(3)
    ]
    stacked = convs[0].predict_proba(cx, n_samples=n_samples)
    loop = convs[1].predict_proba_loop(cx, n_samples=n_samples)
    replica = seed_conv_predict_proba(convs[2], cx, n_samples)
    if not (np.array_equal(stacked, loop) and np.array_equal(stacked, replica)):
        raise SystemExit("FAIL: conv stacked != loop/replica")
    print(f"  conv   (12x12, 2 stages): stacked == loop == seed replica")
    # The mask-free pooling kernel against the training pool layer.
    pre = np.random.default_rng(3).standard_normal((6, 36, 7))
    pooled = maxpool_positions(pre, 6, 6, 2)
    channel_major = np.ascontiguousarray(
        pre.reshape(6, 6, 6, 7).transpose(0, 3, 1, 2)
    )
    reference = MaxPool2dLayer(2).forward(channel_major)
    if not np.array_equal(pooled, reference):
        raise SystemExit("FAIL: maxpool_positions != MaxPool2dLayer.forward")
    print("  mask-free position-major pooling == MaxPool2dLayer.forward\n")


# ----------------------------------------------------------------------
# Gate 3: parallel run-all == sequential
# ----------------------------------------------------------------------
def check_runner_equivalence() -> None:
    print("== run-all: parallel results == sequential results")
    names = ["table2", "table3"]
    sequential = run_experiments(names, jobs=1)
    parallel = run_experiments(names, jobs=2)
    for seq, par in zip(sequential, parallel):
        if seq.failed or par.failed:
            raise SystemExit(f"FAIL: {seq.name} errored: {seq.error or par.error}")
        if seq.rendered != par.rendered:
            raise SystemExit(f"FAIL: {seq.name} parallel output != sequential")
    print(f"  {names}: --jobs 2 output string-identical to sequential\n")


# ----------------------------------------------------------------------
# Gate 4: cache-hit == cold-run artifacts
# ----------------------------------------------------------------------
def check_cache_equivalence() -> None:
    print("== Artifact cache: cache-hit run == cold run, bit for bit")
    rng = np.random.default_rng(4)
    x_train, y_train = rng.random((48, 12)), rng.integers(0, 3, 48)
    x_test, y_test = rng.random((16, 12)), rng.integers(0, 3, 16)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as directory:
        cache = ArtifactCache(directory)
        previous = set_active_cache(cache)
        try:
            cold_net, cold_history, cold_hit = train_bnn(
                (12, 6, 3), x_train, y_train, x_test, y_test, epochs=2, seed=2
            )
            hit_net, hit_history, hit_hit = train_bnn(
                (12, 6, 3), x_train, y_train, x_test, y_test, epochs=2, seed=2
            )
        finally:
            set_active_cache(previous)
        if cold_hit or not hit_hit:
            raise SystemExit(f"FAIL: expected miss-then-hit, got {cold_hit}/{hit_hit}")
        for cold, warm in zip(
            cold_net.posterior_parameters(), hit_net.posterior_parameters()
        ):
            for key in cold:
                if not np.array_equal(cold[key], warm[key]):
                    raise SystemExit(f"FAIL: cached posterior differs in {key}")
        if cold_history != hit_history:
            raise SystemExit("FAIL: cached history differs from cold run")
        if cache.stats() != {"hits": 1, "misses": 1}:
            raise SystemExit(f"FAIL: unexpected cache stats {cache.stats()}")
    print("  cold-run and cache-hit posteriors + histories identical (1 hit / 1 miss)\n")


# ----------------------------------------------------------------------
# Speedups
# ----------------------------------------------------------------------
def _best(fn, reps: int) -> float:
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_conv_epoch(quick: bool) -> float:
    """Conv training epoch: vectorized + patch-cached vs the seed replica."""
    shape, channels = ((1, 16, 16), (4,)) if quick else ((1, 56, 56), (4, 4))
    n_train, batch = (32, 8) if quick else (64, 4)
    reps = 2 if quick else 4
    rng = np.random.default_rng(5)
    x = rng.random((n_train,) + shape)
    labels = rng.integers(0, 10, n_train)
    print(
        f"== Conv training epoch ({shape[1]}x{shape[2]}, stages {channels}, "
        f"batch {batch}, n={n_train})"
    )
    new_net = BayesianConvNetwork(shape, conv_channels=channels, n_classes=10, seed=0)
    patches = new_net.precompute_patches(x)
    optimizer = Adam(1e-3)

    def new_epoch() -> None:
        for start in range(0, n_train, batch):
            new_net.train_step(
                x[start : start + batch],
                labels[start : start + batch],
                optimizer,
                1.0 / n_train,
                patches=patches[start : start + batch],
            )

    new_seconds = _best(new_epoch, reps)
    seed_net = BayesianConvNetwork(shape, conv_channels=channels, n_classes=10, seed=0)
    seed_optimizer = Adam(1e-3)

    def seed_epoch() -> None:
        for start in range(0, n_train, batch):
            seed_conv_train_step(
                seed_net,
                x[start : start + batch],
                labels[start : start + batch],
                seed_optimizer,
                1.0 / n_train,
            )

    seed_seconds = _best(seed_epoch, max(2, reps // 2))
    speedup = seed_seconds / new_seconds
    print(f"{'seed per-position loops':<40}{seed_seconds * 1e3:>10.1f} ms/epoch")
    print(f"{'vectorized + cached patches':<40}{new_seconds * 1e3:>10.1f} ms/epoch")
    print(f"conv-training-epoch speedup: {speedup:.1f}x  (target >= 5x)\n")
    return speedup


def bench_mc_eval(quick: bool) -> float:
    """Conv MC evaluation sweep: stacked fast path vs the seed replica."""
    batch = 48 if quick else 256
    n_samples = 6 if quick else 30
    reps = 2 if quick else 3
    print(f"== Conv MC evaluation sweep (28x28, 8 channels, {batch} images, N={n_samples})")
    net = BayesianConvNetwork((1, 28, 28), conv_channels=(8,), n_classes=10, seed=0)
    x = np.random.default_rng(6).random((batch, 1, 28, 28))
    new_seconds = _best(lambda: net.predict_proba(x, n_samples=n_samples), reps)
    seed_seconds = _best(
        lambda: seed_conv_predict_proba(net, x, n_samples), max(2, reps // 2)
    )
    speedup = seed_seconds / new_seconds
    print(f"{'seed per-sample loop':<40}{seed_seconds * 1e3:>10.1f} ms/sweep")
    print(f"{'stacked fast path':<40}{new_seconds * 1e3:>10.1f} ms/sweep")
    print(f"mc-evaluation-sweep speedup: {speedup:.1f}x  (target >= 3x)\n")
    return speedup


def bench_dense_eval(quick: bool) -> float:
    """Dense MC evaluation sweep — reported, not gated (GEMM-bound)."""
    batch = 128 if quick else 1024
    n_samples = 5 if quick else 10
    print(f"== Dense MC evaluation sweep (784-100-10, {batch} images, N={n_samples})")
    net = BayesianNetwork((784, 100, 10), seed=0)
    x = np.random.default_rng(7).random((batch, 784))
    new_seconds = _best(lambda: net.predict_proba(x, n_samples=n_samples), 3)
    seed_seconds = _best(lambda: seed_dense_predict_proba(net, x, n_samples), 2)
    speedup = seed_seconds / new_seconds
    print(f"{'seed per-sample loop':<40}{seed_seconds * 1e3:>10.1f} ms/sweep")
    print(f"{'stacked fast path':<40}{new_seconds * 1e3:>10.1f} ms/sweep")
    print(f"dense-evaluation speedup: {speedup:.1f}x  (reported; GEMM-bound)\n")
    return speedup


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: tiny workloads, no absolute-speedup enforcement",
    )
    args = parser.parse_args(argv)
    recorder = BenchRecorder(
        "bench_training",
        mode="quick" if args.quick else "full",
        config={"quick": args.quick},
    )
    check_im2col_equivalence()  # each check raises SystemExit on mismatch
    check_stacked_equivalence(args.quick)
    check_runner_equivalence()
    check_cache_equivalence()
    recorder.record("training_bit_exact", 1.0, unit="bool", comparable=True)
    epoch_speedup = bench_conv_epoch(args.quick)
    eval_speedup = bench_mc_eval(args.quick)
    bench_dense_eval(args.quick)
    recorder.record("conv_epoch_speedup", epoch_speedup, unit="x")
    recorder.record("mc_eval_speedup", eval_speedup, unit="x")
    print(f"results written to {recorder.write(RESULTS_DIR)}")
    if not args.quick:
        if epoch_speedup < 5.0:
            print(f"FAIL: conv epoch speedup {epoch_speedup:.1f}x below the 5x target")
            return 1
        if eval_speedup < 3.0:
            print(f"FAIL: MC eval speedup {eval_speedup:.1f}x below the 3x target")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
