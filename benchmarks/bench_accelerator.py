"""Benchmark: raw accelerator-model inference rate (supporting data).

Not a paper table — operational benchmarks of the simulator itself, so
regressions in the functional datapath show up in CI timing.
"""

import numpy as np
import pytest

from repro.bnn import BayesianNetwork
from repro.hw.accelerator import VibnnAccelerator
from repro.hw.config import ArchitectureConfig


@pytest.fixture(scope="module")
def accelerator():
    network = BayesianNetwork((64, 32, 10), seed=0, initial_sigma=0.02)
    config = ArchitectureConfig(pe_sets=2, pes_per_set=4, pe_inputs=4, bit_length=8)
    return VibnnAccelerator(config, network.posterior_parameters(), seed=0)


def test_accelerator_inference_rate(benchmark, accelerator):
    x = np.random.default_rng(0).random((32, 64))
    result = benchmark(lambda: accelerator.infer(x, n_samples=2))
    assert result.predictions.shape == (32,)


def test_rlf_code_generation_rate(benchmark):
    from repro.grng import ParallelRlfGrng

    grng = ParallelRlfGrng(lanes=256, seed=0)
    codes = benchmark(lambda: grng.generate_codes(8192))
    assert codes.shape == (8192,)
