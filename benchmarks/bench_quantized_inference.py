"""Benchmark: stacked fixed-point MC inference vs. the seed loop path.

Two sections:

1. **Equivalence gate** — for every registered GRNG (behind a
   :class:`~repro.grng.stream.GrngStream`, which makes the epsilon stream
   call-pattern invariant) plus the NumPy fallback, the stacked path
   (:meth:`~repro.bnn.quantized.QuantizedBayesianNetwork.predict_proba`)
   must equal the per-pass reference
   (:meth:`~repro.bnn.quantized.QuantizedBayesianNetwork.predict_proba_loop`)
   **bit for bit**.  Enforced in every mode, including ``--quick``.
2. **MC-inference speedup on the digits workload** — 784-100-10,
   ``bit_length=8``: the seed path (one forward pass per MC sample with
   epsilons generated one hardware cycle at a time — exactly the seed's
   call pattern) against the stacked path (all passes as one int64 tensor
   computation fed by a single epsilon block through the code-block
   seam).  The headline is the RLF-GRNG configuration — the paper's
   hardware design — with a >= 5x acceptance target; the current
   (already window-kernel-accelerated) loop path is reported as a
   secondary ratio for context.

Run:  PYTHONPATH=src python benchmarks/bench_quantized_inference.py [--quick]

``--quick`` shrinks the workloads for CI smoke runs; the equivalence gate
still applies, the absolute-speedup gate does not (CI machines are noisy).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.datasets import load_digits_split
from repro.grng import BnnWallaceGrng, GrngStream, ParallelRlfGrng
from repro.grng.base import Grng
from repro.grng.factory import available_grngs, make_grng
from repro.grng.rlf import standardize_codes
from repro.obs import BenchRecorder

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class StepLoopGrng(Grng):
    """The seed's per-cycle generation path, for old-vs-new comparisons.

    Before the block/code-block seams, epsilon draws on the cycle-accurate
    generators assembled their output from one ``step()`` call per
    hardware cycle.  This adapter reproduces that call pattern on top of
    the unchanged ``step()`` kernels so the benchmark can measure what the
    seed code actually did — for both the integer-code datapath (RLF) and
    the float datapath (BNNWallace).
    """

    def __init__(self, source) -> None:
        self.source = source

    def _steps(self, count: int) -> np.ndarray:
        chunks = []
        have = 0
        while have < count:
            chunk = np.atleast_1d(np.asarray(self.source.step()))
            chunks.append(chunk)
            have += chunk.size
        return np.concatenate(chunks)[:count]

    def generate_codes(self, count: int) -> np.ndarray:
        count = self._check_count(count)
        if not hasattr(self.source, "counts"):  # float-only source
            return super().generate_codes(count)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return self._steps(count).astype(np.int64)

    def generate(self, count: int) -> np.ndarray:
        count = self._check_count(count)
        if count == 0:
            return np.empty(0)
        out = self._steps(count).astype(np.float64)
        if hasattr(self.source, "width"):  # RLF emits integer codes
            out = standardize_codes(out, self.source.width)
        return out


def check_equivalence(quick: bool) -> None:
    """Stacked-vs-loop bit-for-bit gate for every registered generator."""
    n_samples = 5 if quick else 9
    network = BayesianNetwork((10, 8, 4), seed=0, initial_sigma=0.05)
    posterior = network.posterior_parameters()
    x = np.random.default_rng(0).random((12, 10))
    print("== Stacked-vs-loop bit-for-bit equivalence (GrngStream-wrapped)")
    names = available_grngs() + [None]
    for name in names:
        if name is None:
            stacked = QuantizedBayesianNetwork(posterior, bit_length=8, seed=3)
            loop = QuantizedBayesianNetwork(posterior, bit_length=8, seed=3)
        else:
            stacked = QuantizedBayesianNetwork(
                posterior,
                bit_length=8,
                grng=GrngStream(make_grng(name, 5), block_size=4096),
            )
            loop = QuantizedBayesianNetwork(
                posterior,
                bit_length=8,
                grng=GrngStream(make_grng(name, 5), block_size=4096),
            )
        same = np.array_equal(
            stacked.predict_proba(x, n_samples=n_samples),
            loop.predict_proba_loop(x, n_samples=n_samples),
        )
        label = name if name is not None else "(numpy fallback)"
        print(f"  {label:<18} {'bit-for-bit' if same else 'MISMATCH'}")
        if not same:
            raise SystemExit(f"FAIL: stacked != loop for {label}")
    print()


def _rate(fn, min_seconds: float) -> float:
    """Calls/sec of ``fn`` over at least ``min_seconds`` of wall clock."""
    fn()  # warm-up
    calls = 0
    start = time.perf_counter()
    while True:
        fn()
        calls += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return calls / elapsed


def bench_mc_inference(quick: bool) -> float:
    """Digits-workload fixed-point MC inference; returns headline speedup."""
    n_test = 100 if quick else 400
    n_samples = 10 if quick else 30
    seconds = 0.3 if quick else 2.0
    _, _, x_test, _ = load_digits_split(n_train=10, n_test=n_test, seed=0)
    network = BayesianNetwork((784, 100, 10), seed=0)
    posterior = network.posterior_parameters()
    print(
        f"== Fixed-point MC inference, digits workload "
        f"({n_test} images, 784-100-10, N={n_samples}, bit_length=8)"
    )
    print(f"{'configuration':<40}{'pred/s':>10}")

    def quantized(grng) -> QuantizedBayesianNetwork:
        return QuantizedBayesianNetwork(posterior, bit_length=8, grng=grng, seed=0)

    configs = [
        (
            "rlf seed loop path (per-cycle eps)",
            lambda: quantized(StepLoopGrng(ParallelRlfGrng(lanes=64, seed=0))),
            "loop",
        ),
        (
            "rlf loop path (block eps)",
            lambda: quantized(GrngStream(ParallelRlfGrng(lanes=64, seed=0))),
            "loop",
        ),
        (
            "rlf stacked block path",
            lambda: quantized(GrngStream(ParallelRlfGrng(lanes=64, seed=0))),
            "stacked",
        ),
        (
            "bnnwallace seed loop path (per-cycle eps)",
            lambda: quantized(
                StepLoopGrng(BnnWallaceGrng(units=8, pool_size=256, seed=0))
            ),
            "loop",
        ),
        (
            "bnnwallace stacked block path",
            lambda: quantized(GrngStream(BnnWallaceGrng(units=8, pool_size=256, seed=0))),
            "stacked",
        ),
    ]
    results: dict[str, float] = {}
    for label, make, path in configs:
        model = make()
        if path == "stacked":
            fn = lambda: model.predict_proba(x_test, n_samples=n_samples)  # noqa: E731
        else:
            fn = lambda: model.predict_proba_loop(x_test, n_samples=n_samples)  # noqa: E731
        rate = _rate(fn, seconds)
        results[label] = rate
        print(f"{label:<40}{rate:>10.2f}")

    headline = (
        results["rlf stacked block path"]
        / results["rlf seed loop path (per-cycle eps)"]
    )
    loop_ratio = (
        results["rlf stacked block path"] / results["rlf loop path (block eps)"]
    )
    wallace = (
        results["bnnwallace stacked block path"]
        / results["bnnwallace seed loop path (per-cycle eps)"]
    )
    print()
    print(f"rlf MC-inference speedup vs seed path (headline): {headline:.1f}x  (target >= 5x)")
    print(f"rlf stacked vs current loop path:                 {loop_ratio:.1f}x")
    print(f"bnnwallace MC-inference speedup vs seed path:     {wallace:.1f}x")
    return headline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: tiny workloads, no absolute-speedup enforcement",
    )
    args = parser.parse_args(argv)
    recorder = BenchRecorder(
        "bench_quantized_inference",
        mode="quick" if args.quick else "full",
        config={"quick": args.quick},
    )
    check_equivalence(args.quick)  # SystemExit on mismatch
    recorder.record("stacked_bit_exact", 1.0, unit="bool", comparable=True)
    headline = bench_mc_inference(args.quick)
    recorder.record("quantized_speedup", headline, unit="x")
    print(f"results written to {recorder.write(RESULTS_DIR)}")
    if not args.quick and headline < 5.0:
        print(f"FAIL: headline speedup {headline:.1f}x below the 5x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
