"""Benchmark: GRNG quality degradation under SeMem/pool stuck-at faults.

A failure-injection sweep (reproduction extension): how many stuck SeMem
rows can the RLF-GRNG tolerate before the Table 1 stability metrics leave
their clean band, and does the quality suite detect faults reliably?
"""

import numpy as np

from repro.grng.quality import stability_error
from repro.hw.faults import FaultyRlfGrng, StuckAtFault, random_seu_faults


def _mu_error_with_faults(n_faults: int, seed: int = 0, samples: int = 10_000) -> float:
    faults = [StuckAtFault(location, 1) for location in range(n_faults)]
    grng = FaultyRlfGrng(faults, lanes=16, seed=seed)
    return stability_error(grng.generate(samples)).mu_error


def test_fault_injection_sweep(benchmark, results_dir):
    def sweep():
        return {n: _mu_error_with_faults(n) for n in (0, 4, 16, 64)}

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Fault injection: stuck-at-1 SeMem rows vs RLF mu error", ""]
    for n, err in errors.items():
        lines.append(f"  {n:3d} stuck rows -> mu error {err:.4f}")
    rendered = "\n".join(lines) + "\n"
    (results_dir / "fault_injection.txt").write_text(rendered)
    print()
    print(rendered)
    # Degradation must grow with fault count and be detectable well before
    # half the SeMem is dead.
    assert errors[64] > errors[0] + 1.0
    assert errors[16] > errors[0]


def test_random_seu_faults_detectable(benchmark):
    def run():
        faults = random_seu_faults(32, depth=255, seed=1)
        grng = FaultyRlfGrng(faults, lanes=16, seed=1)
        return stability_error(grng.generate(10_000))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # Random upsets bias less than aligned stuck-at-1 (half pin to their
    # expected value) but must still not corrupt sigma silently.
    assert np.isfinite(result.sigma_error)
