"""Benchmark: GRNG quality degradation under SeMem/pool stuck-at faults.

A failure-injection sweep (reproduction extension): how many stuck SeMem
rows can the RLF-GRNG tolerate before the Table 1 stability metrics leave
their clean band, and does the quality suite detect faults reliably?

The fault count x seed detection sweep runs on the windowed fault path
(stuck-row re-pinning folded into :class:`~repro.grng.rlf.RlfWindowKernel`
windows), which is what makes half-million-sample cells across the whole
grid tractable — the silent-corruption check at sweep scale.
"""

import numpy as np

from repro.grng.quality import stability_error
from repro.hw.faults import FaultyRlfGrng, StuckAtFault, random_seu_faults


def _mu_error_with_faults(n_faults: int, seed: int = 0, samples: int = 10_000) -> float:
    faults = [StuckAtFault(location, 1) for location in range(n_faults)]
    grng = FaultyRlfGrng(faults, lanes=16, seed=seed)
    return stability_error(grng.generate(samples)).mu_error


def test_fault_injection_sweep(benchmark, results_dir):
    def sweep():
        return {n: _mu_error_with_faults(n) for n in (0, 4, 16, 64)}

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Fault injection: stuck-at-1 SeMem rows vs RLF mu error", ""]
    for n, err in errors.items():
        lines.append(f"  {n:3d} stuck rows -> mu error {err:.4f}")
    rendered = "\n".join(lines) + "\n"
    (results_dir / "fault_injection.txt").write_text(rendered)
    print()
    print(rendered)
    # Degradation must grow with fault count and be detectable well before
    # half the SeMem is dead.
    assert errors[64] > errors[0] + 1.0
    assert errors[16] > errors[0]


def test_windowed_fault_sweep_detection_rate(benchmark, results_dir):
    """Fault count x seed sweep on the windowed path: detection rate.

    A fault is *detected* when the faulty run's stability metrics leave
    twice the clean band (the max clean-seed mu/sigma error).  Random
    binary pins are the hard case — about half land on the bit's expected
    value — so single-fault detection is partial by nature; the gate is
    that dense fault loads never corrupt silently.
    """
    fault_counts = (1, 4, 16, 64)
    seeds = tuple(range(6))
    samples = 500_000

    def sweep():
        clean = {
            seed: stability_error(
                FaultyRlfGrng([], lanes=64, seed=seed).generate(samples)
            )
            for seed in seeds
        }
        mu_band = max(result.mu_error for result in clean.values())
        sigma_band = max(result.sigma_error for result in clean.values())
        rates = {}
        for count in fault_counts:
            detected = 0
            for seed in seeds:
                faults = random_seu_faults(count, depth=255, seed=100 + seed)
                result = stability_error(
                    FaultyRlfGrng(faults, lanes=64, seed=seed).generate(samples)
                )
                if result.mu_error > 2 * mu_band or result.sigma_error > 2 * sigma_band:
                    detected += 1
            rates[count] = detected / len(seeds)
        return mu_band, sigma_band, rates

    mu_band, sigma_band, rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Windowed fault sweep: SEU count x seed -> quality-metric detection rate",
        f"  ({len(seeds)} seeds, {samples} samples/cell; clean band "
        f"mu<{mu_band:.4f} sigma<{sigma_band:.4f}, threshold 2x band)",
        "",
    ]
    for count, rate in rates.items():
        lines.append(f"  {count:3d} random stuck rows -> detected {rate:5.0%}")
    rendered = "\n".join(lines) + "\n"
    (results_dir / "fault_sweep_detection.txt").write_text(rendered)
    print()
    print(rendered)
    # Dense fault loads must never corrupt silently, and detection must
    # not degrade as the fault load grows.
    assert rates[16] == 1.0
    assert rates[64] == 1.0
    assert rates[64] >= rates[1]


def test_random_seu_faults_detectable(benchmark):
    def run():
        faults = random_seu_faults(32, depth=255, seed=1)
        grng = FaultyRlfGrng(faults, lanes=16, seed=1)
        return stability_error(grng.generate(10_000))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # Random upsets bias less than aligned stuck-at-1 (half pin to their
    # expected value) but must still not corrupt sigma silently.
    assert np.isfinite(result.sigma_error)
