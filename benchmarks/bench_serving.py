"""Benchmark: micro-batched serving vs. per-request BNN inference.

The serving subsystem's claim is that coalescing concurrent single-image
requests into one ``predict_proba_batched`` call recovers the batch
efficiency the engine was built for: the dominant cost of a prediction —
drawing ``n_samples * eps_per_pass`` Gaussian epsilons — is paid once per
*batch* instead of once per *request*, and the forward passes become
64-row GEMMs instead of 1-row ones.

Sections:

1. **Throughput (closed loop)** — requests/sec of (a) direct per-request
   inference (one predictor call per image, the no-serving baseline),
   (b) the service with ``max_batch=1`` (queue overhead, no coalescing),
   (c) the micro-batched service at ``max_batch=64`` in synchronous mode,
   and (d) the same with a 2-thread worker pool.  The headline is
   (c) / (a) — acceptance target **>= 5x** on the digits workload with the
   paper's BNNWallace generator.
2. **Latency under open-loop load** — Poisson arrivals against the worker
   pool at a fraction of measured capacity; reports p50/p95/p99.
3. **Equivalence gate** — served results must be **bit-for-bit identical**
   to a direct ``predict_proba_batched`` call with the same seed and batch
   composition (always enforced, even with ``--quick``).

``--adaptive`` runs the **adaptive Monte-Carlo section instead**: a
trained digits model served fixed-``N`` vs adaptively (sequential-
confidence early exit + shared weight stacks, :mod:`repro.bnn.adaptive`),
with three gates:

* early exit *disabled* must be bit-for-bit identical to the fixed path
  (always enforced);
* adaptive vs fixed top-1 accuracy on a 512-row digits eval set must
  match within **0.2%** (always enforced — a single flipped row is
  ~0.195%, so the budget is at most one flip);
* adaptive effective throughput must be **>= 3x** the fixed path
  (full mode only; CI machines are too noisy for absolute ratios).

``--chaos`` runs the **resilience section instead**: the chaos/overload
acceptance gates of :mod:`repro.serving.resilience` (all enforced even
with ``--quick``):

* an attached-but-unpressured resilience layer must be bit-for-bit inert;
* under a seeded fault plan (worker kill + stall) zero requests may hang —
  every ticket resolves with a result or a typed error;
* at 2x measured capacity, interactive p99 <= 3x the uncontended p99 and
  goodput >= 60% of uncontended capacity;
* the overload ladder's floor (``min_passes`` of the same shared
  weight-stack ensemble) costs <= 0.5% digits top-1 accuracy.

``--chaos --worker-mode process`` runs the same contract against the
**multi-process tier** (:mod:`repro.serving.procpool`) instead — chaos at
the OS level, not the thread level:

* process-mode serving must be bit-for-bit the threaded tier on
  identical seeds (always enforced);
* under a process-level fault plan (SIGKILL one batch, wedge another
  past the batch timeout) zero requests may hang, the supervisor must
  restart the slot >= 2 times, and zero shared-memory segments may
  outlive ``stop()`` (always enforced);
* on a CPU-bound multi-model mix the process pool must beat the
  GIL-bound 2-thread pool by >= 1.5x (full mode only).

4. **Observability overhead + coverage gates** (both enforced even with
   ``--quick``) — the obs subsystem's own acceptance criteria:

   * *overhead*: observability is compiled in, so the "disabled" cost is
     bounded by measuring the obs-off configuration twice (medians must
     agree within **3%** — proving disabled hooks are lost in run-to-run
     noise) and the tracing-enabled configuration once (median within
     **10%** of obs-off);
   * *coverage*: on a traced run, every served span's phases must sum to
     **>= 95%** of that request's latency and never exceed it.

Results are additionally written as structured JSON to
``benchmarks/results/`` via :class:`repro.obs.BenchRecorder`;
``benchmarks/compare_results.py`` diffs them against a committed
baseline (the perf-regression wall).

Run:  PYTHONPATH=src python benchmarks/bench_serving.py [--quick] \
          [--adaptive | --chaos [--worker-mode {thread,process}]]

``--quick`` shrinks the workload for CI smoke runs and skips the absolute
speedup gates (CI machines are noisy); the equivalence, accuracy-delta,
overhead, and coverage gates always apply.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.bnn.adaptive import AdaptiveConfig
from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.inference import MonteCarloPredictor
from repro.bnn.trainer import Trainer
from repro.datasets import load_digits_split
from repro.grng import GrngStream, make_grng
from repro.obs import BenchRecorder
from repro.serving import (
    BnnService,
    FaultEvent,
    FaultPlan,
    ResilienceConfig,
    ServiceConfig,
    run_closed_loop,
    run_open_loop,
    shm,
    worker_stream_seed,
)

GRNG = "bnnwallace"
SEED = 0
MODEL = "digits"

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def make_service(
    network: BayesianNetwork,
    n_samples: int,
    adaptive: AdaptiveConfig | None = None,
    share_weight_stacks: bool = False,
    fault_plan: FaultPlan | None = None,
    **config,
) -> BnnService:
    """Service over ``network`` with caching off (measure compute, not hits)."""
    service = BnnService(
        config=ServiceConfig(cache_capacity=0, **config), fault_plan=fault_plan
    )
    service.register_network(
        MODEL,
        network,
        n_samples=n_samples,
        grng=GRNG,
        seed=SEED,
        adaptive=adaptive,
        share_weight_stacks=share_weight_stacks,
    )
    return service


def bench_per_request(
    network: BayesianNetwork, images: np.ndarray, n_samples: int, min_seconds: float
) -> float:
    """Requests/sec of direct one-image-per-call inference (the baseline)."""
    predictor = MonteCarloPredictor(
        network,
        grng=GrngStream(make_grng(GRNG, seed=SEED)),
        n_samples=n_samples,
        batched=True,
    )
    predictor.predict_proba(images[:1])  # warm-up
    served = 0
    start = time.perf_counter()
    while True:
        predictor.predict_proba(images[served % images.shape[0]][None, :])
        served += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return served / elapsed


def bench_throughput(
    network: BayesianNetwork, images: np.ndarray, n_samples: int, quick: bool
) -> tuple[float, float]:
    """Returns ``(headline speedup, micro-batched capacity in req/s)``."""
    total = 192 if quick else 1024
    per_request_seconds = 0.5 if quick else 2.0
    print(
        f"== Throughput, digits workload ({images.shape[0]} distinct images, "
        f"784-100-10, N={n_samples}, grng={GRNG})"
    )
    print(f"{'configuration':<38}{'req/s':>12}{'mean batch':>12}")

    baseline = bench_per_request(network, images, n_samples, per_request_seconds)
    print(f"{'direct per-request inference':<38}{baseline:>12,.1f}{1.0:>12.1f}")

    rows: dict[str, float] = {}
    configs = [
        ("service max_batch=1 (no coalescing)", dict(workers=0, max_batch=1), max(total // 8, 32)),
        ("service micro-batched (max_batch=64)", dict(workers=0, max_batch=64), total),
        ("service micro-batched, 2 workers", dict(workers=2, max_batch=64, max_wait_ms=1.0), total),
    ]
    for label, config, requests in configs:
        with make_service(network, n_samples, **config) as service:
            stats = run_closed_loop(service, MODEL, images, total_requests=requests)
            mean_batch = service.metrics.mean_batch_size()
        rows[label] = stats.throughput_rps
        print(f"{label:<38}{stats.throughput_rps:>12,.1f}{mean_batch:>12.1f}")

    headline = rows["service micro-batched (max_batch=64)"] / baseline
    threaded = rows["service micro-batched, 2 workers"] / baseline
    overhead = rows["service max_batch=1 (no coalescing)"] / baseline
    print()
    print(f"micro-batched vs per-request (headline): {headline:.1f}x  (target >= 5x)")
    print(f"micro-batched 2 workers vs per-request:  {threaded:.1f}x")
    print(f"service overhead at batch 1:             {overhead:.2f}x of direct")
    print()
    return headline, rows["service micro-batched, 2 workers"]


def bench_open_loop_latency(
    network: BayesianNetwork,
    images: np.ndarray,
    n_samples: int,
    capacity_rps: float,
    quick: bool,
) -> None:
    duration = 1.0 if quick else 3.0
    print(f"== Open-loop latency (Poisson arrivals, 2 workers, {duration:g}s per point)")
    print(f"{'offered load':<24}{'p50':>10}{'p95':>10}{'p99':>10}{'drops':>8}")
    for fraction in (0.25, 0.6):
        rate = max(capacity_rps * fraction, 1.0)
        with make_service(
            network, n_samples, workers=2, max_batch=64, max_wait_ms=2.0
        ) as service:
            stats = run_open_loop(
                service, MODEL, images, rate_rps=rate, duration_s=duration, seed=SEED
            )
        latency = stats.latency_percentiles()
        label = f"{rate:,.0f} req/s ({fraction:.0%} cap)"
        print(
            f"{label:<24}"
            f"{latency['p50'] * 1e3:>8.2f}ms{latency['p95'] * 1e3:>8.2f}ms"
            f"{latency['p99'] * 1e3:>8.2f}ms{stats.dropped:>8}"
        )
    print()


def check_equivalence(network: BayesianNetwork, images: np.ndarray, n_samples: int) -> bool:
    """Served output must equal direct ``predict_proba_batched`` bit for bit."""
    batch = images[:64]
    with make_service(network, n_samples, workers=0, max_batch=64) as service:
        served = service.predict_many(MODEL, batch)
        version = service.registry.get(MODEL).version
    direct = MonteCarloPredictor(
        network,
        grng=GrngStream(make_grng(GRNG, seed=worker_stream_seed(SEED, version, 0))),
        n_samples=n_samples,
        batched=True,
    ).predict_proba_batched(batch)
    identical = served.shape == direct.shape and bool((served == direct).all())
    print(
        "== Equivalence: served vs direct predict_proba_batched "
        f"(same seed, batch of {batch.shape[0]}): "
        + ("bit-for-bit identical" if identical else "MISMATCH")
    )
    print()
    return identical


def bench_obs_overhead(
    network: BayesianNetwork,
    images: np.ndarray,
    n_samples: int,
    quick: bool,
    recorder: BenchRecorder,
) -> int:
    """Overhead + coverage gates of the observability layer (always enforced).

    The hooks are compiled in, so "disabled overhead" cannot be measured
    against a hook-free build; instead the obs-off configuration is
    measured twice (A/B) — their best-of-rounds throughputs agreeing
    within 3% bounds the disabled cost by the run-to-run noise floor —
    and the traced configuration must stay within 10% of obs-off.
    Best-of (not median) because transient machine noise only ever
    *lowers* req/s; the max over interleaved rounds is the stable
    estimator of each configuration's true speed.
    """
    total = 192 if quick else 512
    rounds = 5

    def measure(trace: bool) -> tuple[float, list]:
        config: dict = dict(workers=0, max_batch=64)
        if trace:
            config["trace_capacity"] = 65536
        with make_service(network, n_samples, **config) as service:
            stats = run_closed_loop(service, MODEL, images, total_requests=total)
            spans = service.tracer.spans() if trace else []
        return stats.throughput_rps, spans

    measure(False)  # warm-up (BLAS threads, allocator, page cache)
    off_a: list[float] = []
    off_b: list[float] = []
    traced: list[float] = []
    spans: list = []
    for _ in range(rounds):
        # Interleave the three configurations so slow machine-level drift
        # (thermal, noisy neighbours) hits all of them equally.
        off_a.append(measure(False)[0])
        off_b.append(measure(False)[0])
        rps, run_spans = measure(True)
        traced.append(rps)
        spans = run_spans or spans
    best_a = max(off_a)
    best_b = max(off_b)
    best_traced = max(traced)
    noise = abs(best_b - best_a) / best_a
    overhead = max(1.0 - best_traced / best_a, 0.0)

    print(f"== Observability overhead (closed loop, {total} requests x{rounds}, sync mode)")
    print(f"{'configuration':<38}{'best req/s':>14}")
    print(f"{'obs disabled (run A)':<38}{best_a:>14,.1f}")
    print(f"{'obs disabled (run B)':<38}{best_b:>14,.1f}")
    print(f"{'tracing enabled':<38}{best_traced:>14,.1f}")
    print(f"disabled A/B delta : {noise:.1%} (gate <= 3%)")
    print(f"tracing overhead   : {overhead:.1%} (gate <= 10%)")

    served = [s for s in spans if s.error is None]
    coverage = min((s.accounted_fraction() for s in served), default=0.0)
    over = sum(
        1
        for s in served
        if sum(s.phases.values()) > s.latency_s + 1e-6
    )
    print(
        f"trace coverage     : {len(served)} spans, worst {coverage:.1%} of "
        f"latency phase-accounted (gate >= 95%), {over} spans over-accounted"
    )
    print()

    recorder.record(
        "obs_disabled_noise_frac", noise, unit="frac", direction="lower"
    )
    recorder.record(
        "tracing_overhead_frac", overhead, unit="frac", direction="lower"
    )
    recorder.record(
        "trace_coverage_min", coverage, unit="frac", direction="higher"
    )

    failed = False
    if noise > 0.03:
        print(f"FAIL: obs-disabled A/B best-of runs differ by {noise:.1%} (> 3%)")
        failed = True
    if overhead > 0.10:
        print(f"FAIL: tracing overhead {overhead:.1%} exceeds the 10% gate")
        failed = True
    if not served:
        print("FAIL: traced run produced no spans")
        failed = True
    if served and coverage < 0.95:
        print(f"FAIL: worst span only {coverage:.1%} phase-accounted (< 95%)")
        failed = True
    if over:
        print(f"FAIL: {over} spans' phases sum past their wall time")
        failed = True
    return 1 if failed else 0


def bench_adaptive(quick: bool, recorder: BenchRecorder) -> int:
    """Adaptive MC (early exit + shared weight stacks) vs the fixed-``N`` path.

    The adaptive claim needs a *trained* model: an untrained posterior's
    predictive gaps never clear the Hoeffding bound and no row exits, so
    the section trains for a couple of epochs first (seeded — the whole
    section is deterministic apart from wall-clock timings).
    """
    from repro.bnn.optimizers import Adam
    from repro.experiments.training import make_bnn

    n_samples = 32 if quick else 64
    config = AdaptiveConfig(chunk=8, exit_delta=0.05)
    eval_rows = 512  # one flipped row = 0.195% <= the 0.2% budget
    total = 192 if quick else 1024
    x_train, y_train, x_test, y_test = load_digits_split(
        n_train=512 if quick else 800, n_test=eval_rows, seed=SEED
    )
    network = make_bnn((784, 64, 10), seed=SEED)
    Trainer(
        network, Adam(3e-3), batch_size=32, epochs=6 if quick else 10, seed=SEED
    ).fit(x_train, y_train)
    print(
        f"== Adaptive MC vs fixed-N (digits, {eval_rows} eval rows, "
        f"N={n_samples}, chunk={config.chunk}, delta={config.exit_delta}, "
        f"grng={GRNG})"
    )

    # Gate 1 (always enforced): with the exit bound disabled the adaptive
    # path must reproduce the fixed path bit for bit.
    with make_service(network, n_samples, workers=0, max_batch=64) as service:
        fixed_probs = service.predict_many(MODEL, x_test)
    disabled = AdaptiveConfig(chunk=config.chunk, exit_delta=None)
    with make_service(
        network, n_samples, adaptive=disabled, workers=0, max_batch=64
    ) as service:
        disabled_probs = service.predict_many(MODEL, x_test)
    bit_exact = fixed_probs.shape == disabled_probs.shape and bool(
        (fixed_probs == disabled_probs).all()
    )
    print(
        "exit bound disabled vs fixed path: "
        + ("bit-for-bit identical" if bit_exact else "MISMATCH")
    )

    # Gate 2 (always enforced): matched accuracy on the eval set.  The
    # comparison holds the sampled ensemble fixed — adaptive early exit vs
    # the full-N average over the *same* shared weight stacks — so the
    # delta measures exactly the accuracy cost of exiting early, not the
    # Monte-Carlo noise between two independent epsilon draws (two honest
    # fixed-N estimates with different seeds already differ by more than
    # the 0.2% budget at these sample counts).
    fixedn = AdaptiveConfig(chunk=config.chunk, exit_delta=None)
    with make_service(
        network,
        n_samples,
        adaptive=fixedn,
        share_weight_stacks=True,
        workers=0,
        max_batch=64,
    ) as service:
        fixedn_probs = service.predict_many(MODEL, x_test)
    with make_service(
        network,
        n_samples,
        adaptive=config,
        share_weight_stacks=True,
        workers=0,
        max_batch=64,
    ) as service:
        adaptive_probs = service.predict_many(MODEL, x_test)
        snap = service.stats()
    acc_fixed = float((fixedn_probs.argmax(axis=1) == y_test).mean())
    acc_adaptive = float((adaptive_probs.argmax(axis=1) == y_test).mean())
    acc_delta = abs(acc_fixed - acc_adaptive)
    print(
        f"accuracy (matched ensemble): fixed-N {acc_fixed:.2%}, "
        f"adaptive {acc_adaptive:.2%} (|delta| = {acc_delta:.3%}, budget 0.2%)"
    )
    print(
        f"adaptive passes: mean {snap['adaptive_mean_passes']:.1f} of {n_samples} "
        f"({snap['adaptive_saved_fraction']:.1%} saved)"
    )

    # Gate 3 (full mode): effective closed-loop throughput >= 3x fixed.
    with make_service(network, n_samples, workers=0, max_batch=64) as service:
        fixed_stats = run_closed_loop(service, MODEL, x_test, total_requests=total)
    with make_service(
        network,
        n_samples,
        adaptive=config,
        share_weight_stacks=True,
        workers=0,
        max_batch=64,
    ) as service:
        adaptive_stats = run_closed_loop(service, MODEL, x_test, total_requests=total)
    ratio = adaptive_stats.throughput_rps / fixed_stats.throughput_rps
    print(
        f"throughput: fixed {fixed_stats.throughput_rps:,.1f} req/s, "
        f"adaptive {adaptive_stats.throughput_rps:,.1f} req/s "
        f"({ratio:.1f}x, target >= 3x{' — not enforced in --quick' if quick else ''})"
    )
    print()

    # Deterministic (seeded) metrics are machine-independent -> comparable;
    # the speedup ratio is wall-clock and only compared on one machine.
    recorder.record(
        "adaptive_bit_exact", 1.0 if bit_exact else 0.0, unit="bool", comparable=True
    )
    recorder.record(
        "adaptive_accuracy_delta",
        acc_delta,
        unit="frac",
        direction="lower",
        comparable=True,
        tolerance=0.004,  # two flipped rows of 512
    )
    recorder.record(
        "adaptive_saved_fraction",
        float(snap["adaptive_saved_fraction"]),
        unit="frac",
        comparable=True,
        tolerance=0.05,
    )
    recorder.record("adaptive_speedup", ratio, unit="x")

    failed = False
    if not bit_exact:
        print("FAIL: adaptive path with exit disabled diverged from fixed-N")
        failed = True
    if acc_delta > 0.002:
        print(f"FAIL: accuracy delta {acc_delta:.3%} exceeds the 0.2% budget")
        failed = True
    if not quick and ratio < 3.0:
        print(f"FAIL: adaptive speedup {ratio:.1f}x below the 3x target")
        failed = True
    return 1 if failed else 0


def bench_chaos(quick: bool, recorder: BenchRecorder) -> int:
    """Chaos + overload section: the resilience layer's acceptance gates.

    Four gates, all enforced even with ``--quick``:

    1. *off == off* — a service with ``resilience=ResilienceConfig()`` but
       no pressure must serve bit-for-bit what the resilience-free service
       serves (the layer is observation-only until the ladder engages);
    2. *no hangs* — under a fault plan that kills one worker and stalls
       the other, every offered request resolves (completed, failed with a
       typed error, or shed) within the collection timeout: ``hung == 0``;
    3. *overload* — at 2x measured capacity with a mixed SLO population,
       interactive p99 stays <= 3x the uncontended p99 and goodput stays
       >= 60% of uncontended capacity (deadline eviction + admission
       control keep the server working on live requests only);
    4. *degraded accuracy* — serving ``min_passes`` of the *same* shared
       weight-stack ensemble (overload ladder floor, forced) moves digits
       top-1 accuracy by <= 0.5%.
    """
    from repro.bnn.optimizers import Adam
    from repro.experiments.training import make_bnn

    n_samples = 8 if quick else 16
    n_images = 64 if quick else 256
    total = 192 if quick else 512
    duration = 1.0 if quick else 3.0
    _, _, images, _ = load_digits_split(n_train=10, n_test=n_images, seed=SEED)
    network = BayesianNetwork((784, 100, 10), seed=SEED)
    failed = False

    # Gate 1: resilience attached but unpressured is bit-for-bit inert.
    with make_service(network, n_samples, workers=0, max_batch=64) as service:
        off_probs = service.predict_many(MODEL, images)
    with make_service(
        network, n_samples, workers=0, max_batch=64, resilience=ResilienceConfig()
    ) as service:
        on_probs = service.predict_many(MODEL, images)
        inert = service.metrics.degraded_rows == 0 and service.metrics.shed == 0
    bit_exact = (
        inert
        and off_probs.shape == on_probs.shape
        and bool((off_probs == on_probs).all())
    )
    print(
        "== Chaos gate 1 — resilience off vs unpressured: "
        + ("bit-for-bit identical" if bit_exact else "MISMATCH")
    )
    print()

    # Gate 2: kill one worker's first batch, stall the other's first batch
    # past the batch timeout.  Both slots must fail over (typed
    # WorkerCrashed, supervised restart) and no ticket may hang.
    plan = FaultPlan(
        events=(
            FaultEvent(worker=0, at_batch=1, action="kill"),
            FaultEvent(worker=1, at_batch=1, action="stall", seconds=1.0),
            FaultEvent(worker=0, at_batch=4, action="kill"),
        )
    )
    chaos_config = ResilienceConfig(heartbeat_interval_s=0.02, batch_timeout_s=0.25)
    with make_service(
        network,
        n_samples,
        workers=2,
        max_batch=8,
        max_wait_ms=1.0,
        resilience=chaos_config,
        fault_plan=plan,
    ) as service:
        fault_stats = run_closed_loop(
            service, MODEL, images, total_requests=total, result_timeout_s=15.0
        )
        restarts = service.metrics.worker_restarts
    accounted = (
        fault_stats.completed + fault_stats.failed + fault_stats.shed + fault_stats.hung
    )
    no_hang = fault_stats.hung == 0 and accounted == fault_stats.offered
    print(
        f"== Chaos gate 2 — fault plan (kill w0@1, stall w1@1, kill w0@4), "
        f"{total} requests:"
    )
    print(
        f"completed {fault_stats.completed}, failed {fault_stats.failed} (typed), "
        f"shed {fault_stats.shed}, hung {fault_stats.hung} (gate == 0), "
        f"restarts {restarts}"
    )
    print()

    # Gate 3: 2x overload.  Measure capacity and uncontended p99 first,
    # then offer 2x with a mixed SLO population and an interactive
    # deadline derived from the uncontended p99.
    with make_service(
        network,
        n_samples,
        workers=2,
        max_batch=64,
        max_wait_ms=2.0,
        resilience=ResilienceConfig(),
    ) as service:
        cap_stats = run_closed_loop(service, MODEL, images, total_requests=total)
    capacity = cap_stats.throughput_rps
    with make_service(
        network,
        n_samples,
        workers=2,
        max_batch=64,
        max_wait_ms=2.0,
        resilience=ResilienceConfig(),
    ) as service:
        base_stats = run_open_loop(
            service,
            MODEL,
            images,
            rate_rps=max(capacity * 0.5, 1.0),
            duration_s=duration,
            seed=SEED,
        )
    base_p99 = base_stats.latency_percentiles()["p99"]
    deadline = 2.0 * base_p99
    overload_config = ResilienceConfig(
        interactive_deadline_s=deadline,
        batch_deadline_s=4.0 * deadline,
        best_effort_deadline_s=deadline,
        degrade_half_s=deadline / 2.0,
        degrade_floor_s=deadline,
        min_passes=max(2, n_samples // 4),
    )
    with make_service(
        network,
        n_samples,
        workers=2,
        max_batch=64,
        max_wait_ms=2.0,
        resilience=overload_config,
    ) as service:
        over_stats = run_open_loop(
            service,
            MODEL,
            images,
            rate_rps=max(capacity * 2.0, 2.0),
            duration_s=duration,
            seed=SEED,
            slo_weights={"interactive": 0.6, "batch": 0.2, "best_effort": 0.2},
        )
        degraded_rows = service.metrics.degraded_rows
    over_p99 = over_stats.slo_percentiles("interactive").get("p99", 0.0)
    p99_ratio = over_p99 / base_p99 if base_p99 > 0 else float("inf")
    goodput_frac = over_stats.goodput_rps / capacity if capacity > 0 else 0.0
    print(
        f"== Chaos gate 3 — overload at 2x capacity ({capacity:,.0f} req/s, "
        f"interactive deadline {deadline * 1e3:.1f}ms):"
    )
    print(
        f"uncontended p99 {base_p99 * 1e3:.2f}ms, overloaded interactive p99 "
        f"{over_p99 * 1e3:.2f}ms ({p99_ratio:.2f}x, gate <= 3x)"
    )
    print(
        f"goodput {over_stats.goodput_rps:,.1f} req/s "
        f"({goodput_frac:.1%} of uncontended, gate >= 60%), "
        f"shed {over_stats.shed} ({over_stats.shed_rate:.1%}), "
        f"dropped {over_stats.dropped}, degraded rows {degraded_rows}"
    )
    print()

    # Gate 4: the overload ladder's floor (min_passes of the same shared
    # ensemble) on a *trained* model — the accuracy cost of degrading.
    n_full = 32 if quick else 64
    min_passes = 16
    eval_rows = 256 if quick else 512
    x_train, y_train, x_test, y_test = load_digits_split(
        n_train=512 if quick else 800, n_test=eval_rows, seed=SEED
    )
    trained = make_bnn((784, 64, 10), seed=SEED)
    Trainer(
        trained, Adam(3e-3), batch_size=32, epochs=4 if quick else 8, seed=SEED
    ).fit(x_train, y_train)
    fixedn = AdaptiveConfig(chunk=8, exit_delta=None)
    degrade_config = ResilienceConfig(min_passes=min_passes)
    with make_service(
        trained,
        n_full,
        adaptive=fixedn,
        share_weight_stacks=True,
        workers=0,
        max_batch=64,
        resilience=degrade_config,
    ) as service:
        full_probs = service.predict_many(MODEL, x_test)
    with make_service(
        trained,
        n_full,
        adaptive=fixedn,
        share_weight_stacks=True,
        workers=0,
        max_batch=64,
        resilience=degrade_config,
    ) as service:
        assert service.admission is not None
        service.admission.force_level(2)
        degraded_probs = service.predict_many(MODEL, x_test)
        degraded_served = service.metrics.degraded_rows
    acc_full = float((full_probs.argmax(axis=1) == y_test).mean())
    acc_degraded = float((degraded_probs.argmax(axis=1) == y_test).mean())
    acc_delta = abs(acc_full - acc_degraded)
    print(
        f"== Chaos gate 4 — degraded floor ({min_passes} of {n_full} passes, "
        f"matched ensemble, {eval_rows} eval rows):"
    )
    print(
        f"accuracy: full {acc_full:.2%}, degraded {acc_degraded:.2%} "
        f"(|delta| = {acc_delta:.3%}, budget 0.5%), "
        f"{degraded_served} rows served degraded"
    )
    print()

    # Seeded/deterministic outcomes are machine-independent -> comparable;
    # wall-clock ratios are recorded but only compared on one machine.
    recorder.record(
        "resilience_bit_exact", 1.0 if bit_exact else 0.0, unit="bool", comparable=True
    )
    recorder.record(
        "chaos_no_hang", 1.0 if no_hang else 0.0, unit="bool", comparable=True
    )
    recorder.record(
        "degraded_accuracy_delta",
        acc_delta,
        unit="frac",
        direction="lower",
        comparable=True,
        tolerance=0.006,
    )
    recorder.record("chaos_worker_restarts", float(restarts), unit="count")
    recorder.record("overload_p99_ratio", p99_ratio, unit="x", direction="lower")
    recorder.record(
        "overload_goodput_frac", goodput_frac, unit="frac", direction="higher"
    )
    recorder.record("overload_shed_rate", over_stats.shed_rate, unit="frac")

    if not bit_exact:
        print("FAIL: unpressured resilience layer perturbed served bits")
        failed = True
    if fault_stats.hung:
        print(f"FAIL: {fault_stats.hung} requests hung under the fault plan")
        failed = True
    if accounted != fault_stats.offered:
        print(
            f"FAIL: only {accounted} of {fault_stats.offered} offered requests "
            "accounted for"
        )
        failed = True
    if restarts < 2:
        print(f"FAIL: expected both faulted workers to restart, saw {restarts}")
        failed = True
    if p99_ratio > 3.0:
        print(f"FAIL: overloaded interactive p99 {p99_ratio:.2f}x exceeds the 3x gate")
        failed = True
    if goodput_frac < 0.60:
        print(f"FAIL: overloaded goodput {goodput_frac:.1%} below the 60% gate")
        failed = True
    if degraded_served != eval_rows:
        print(
            f"FAIL: forced floor should degrade all {eval_rows} rows, "
            f"served {degraded_served}"
        )
        failed = True
    if acc_delta > 0.005:
        print(f"FAIL: degraded accuracy delta {acc_delta:.3%} exceeds the 0.5% budget")
        failed = True
    return 1 if failed else 0


def _multi_model_rps(
    networks: list[tuple[str, BayesianNetwork]],
    images: np.ndarray,
    n_samples: int,
    total: int,
    *,
    worker_mode: str,
    workers: int,
) -> float:
    """Closed-loop req/s over a round-robin multi-model request mix."""
    service = BnnService(
        config=ServiceConfig(
            cache_capacity=0,
            workers=workers,
            worker_mode=worker_mode,
            max_batch=64,
            max_wait_ms=2.0,
        )
    )
    for name, network in networks:
        service.register_network(
            name,
            network,
            n_samples=n_samples,
            grng=GRNG,
            seed=SEED,
            share_weight_stacks=True,
        )
    with service:
        for name, _ in networks:  # warm-up: ship weights, build ensembles
            service.predict_many(name, images[:8])
        start = time.perf_counter()
        tickets = [
            service.submit(
                networks[index % len(networks)][0],
                images[index % images.shape[0]],
            )
            for index in range(total)
        ]
        service.flush()
        for ticket in tickets:
            ticket.result(timeout=120.0)
        elapsed = time.perf_counter() - start
    return total / elapsed


def bench_chaos_process(quick: bool, recorder: BenchRecorder) -> int:
    """Chaos section for the multi-process tier: OS-level crash isolation.

    Three gates (the first two enforced even with ``--quick``):

    1. *bit-exactness* — ``worker_mode="process"`` serves bit-for-bit what
       the threaded tier serves on identical seeds (shared weight stacks
       make the sampled ensemble a function of batch position, not of
       which worker — or which OS process — runs the math);
    2. *crash isolation* — under a process-level fault plan (SIGKILL one
       batch, wedge another past the batch timeout) every offered request
       resolves with a result or a typed ``WorkerCrashed``: ``hung == 0``,
       the supervisor restarts the slot >= 2 times with bumped
       incarnations, and zero shared-memory segments outlive ``stop()``;
    3. *throughput* (full mode only) — on a CPU-bound multi-model mix the
       process pool beats the GIL-bound 2-thread pool by >= 1.5x.
    """
    n_samples = 5 if quick else 16
    n_images = 64 if quick else 256
    total = 96 if quick else 512
    mix_total = 64 if quick else 384
    _, _, images, _ = load_digits_split(n_train=10, n_test=n_images, seed=SEED)
    network = BayesianNetwork((784, 100, 10), seed=SEED)
    failed = False

    # Gate 1: one 64-row batch through each tier.  Shared weight stacks
    # pin the sampled ensemble to the batch position, so thread workers
    # and a spawned process worker must produce the same bits.
    batch = images[:64]
    with make_service(
        network,
        n_samples,
        share_weight_stacks=True,
        workers=2,
        max_batch=64,
        max_wait_ms=1.0,
    ) as service:
        threaded_probs = service.predict_many(MODEL, batch)
    with make_service(
        network,
        n_samples,
        share_weight_stacks=True,
        workers=1,
        worker_mode="process",
        max_batch=64,
        max_wait_ms=1.0,
    ) as service:
        process_probs = service.predict_many(MODEL, batch)
    bit_exact = threaded_probs.shape == process_probs.shape and bool(
        (threaded_probs == process_probs).all()
    )
    print(
        "== Process gate 1 — process tier vs threaded tier "
        f"(same seed, batch of {batch.shape[0]}): "
        + ("bit-for-bit identical" if bit_exact else "MISMATCH")
    )
    print()

    # Gate 2: SIGKILL the worker mid-batch, then wedge its replacement
    # past the batch timeout.  Both are real OS-level deaths — the
    # supervisor must detect them across the process boundary, fail the
    # held tickets typed, and restart the slot with a bumped incarnation.
    plan = FaultPlan(
        events=(
            FaultEvent(worker=0, at_batch=1, action="kill"),
            FaultEvent(worker=0, at_batch=3, action="stall", seconds=30.0),
        )
    )
    chaos_config = ResilienceConfig(
        heartbeat_interval_s=0.02, batch_timeout_s=1.0, max_restarts=8
    )
    with make_service(
        network,
        n_samples,
        share_weight_stacks=True,
        fault_plan=plan,
        workers=1,
        worker_mode="process",
        max_batch=8,
        max_wait_ms=1.0,
        resilience=chaos_config,
    ) as service:
        fault_stats = run_closed_loop(
            service, MODEL, images, total_requests=total, result_timeout_s=30.0
        )
        restarts = service.metrics.worker_restarts
    leaked = shm.live_segments()
    accounted = (
        fault_stats.completed + fault_stats.failed + fault_stats.shed + fault_stats.hung
    )
    no_hang = fault_stats.hung == 0 and accounted == fault_stats.offered
    print(
        f"== Process gate 2 — fault plan (SIGKILL w0@1, stall w0@3), "
        f"{total} requests:"
    )
    print(
        f"completed {fault_stats.completed}, failed {fault_stats.failed} (typed), "
        f"shed {fault_stats.shed}, hung {fault_stats.hung} (gate == 0), "
        f"restarts {restarts} (gate >= 2), "
        f"leaked shm segments {len(leaked)} (gate == 0)"
    )
    print()

    # Gate 3: CPU-bound multi-model mix, process pool vs the 2-thread
    # pool.  numpy releases the GIL for large GEMMs but not for the rest
    # of the serving path; separate interpreters sidestep that entirely.
    networks = [
        ("mix-a", BayesianNetwork((784, 100, 10), seed=SEED)),
        ("mix-b", BayesianNetwork((784, 100, 10), seed=SEED + 1)),
    ]
    threaded_rps = _multi_model_rps(
        networks, images, n_samples, mix_total, worker_mode="thread", workers=2
    )
    process_rps = _multi_model_rps(
        networks, images, n_samples, mix_total, worker_mode="process", workers=2
    )
    ratio = process_rps / threaded_rps if threaded_rps > 0 else 0.0
    print(
        f"== Process gate 3 — multi-model mix ({len(networks)} models, "
        f"{mix_total} requests, 2 workers each):"
    )
    print(
        f"threaded {threaded_rps:,.1f} req/s, process {process_rps:,.1f} req/s "
        f"({ratio:.2f}x, target >= 1.5x"
        f"{' — not enforced in --quick' if quick else ''})"
    )
    print()

    # Seeded/deterministic outcomes are machine-independent -> comparable;
    # restart counts and wall-clock ratios depend on machine load.
    recorder.record(
        "process_bit_exact", 1.0 if bit_exact else 0.0, unit="bool", comparable=True
    )
    recorder.record(
        "process_chaos_no_hang", 1.0 if no_hang else 0.0, unit="bool", comparable=True
    )
    recorder.record(
        "process_shm_leaked",
        float(len(leaked)),
        unit="count",
        direction="lower",
        comparable=True,
    )
    recorder.record("process_worker_restarts", float(restarts), unit="count")
    recorder.record("process_vs_threaded_speedup", ratio, unit="x")

    if not bit_exact:
        print("FAIL: process tier diverged from the threaded tier")
        failed = True
    if fault_stats.hung:
        print(f"FAIL: {fault_stats.hung} requests hung under the fault plan")
        failed = True
    if accounted != fault_stats.offered:
        print(
            f"FAIL: only {accounted} of {fault_stats.offered} offered requests "
            "accounted for"
        )
        failed = True
    if restarts < 2:
        print(f"FAIL: expected >= 2 supervised restarts, saw {restarts}")
        failed = True
    if leaked:
        print(f"FAIL: shared-memory segments leaked past stop(): {leaked}")
        failed = True
    if not quick and ratio < 1.5:
        print(f"FAIL: process-vs-threaded speedup {ratio:.2f}x below the 1.5x target")
        failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: tiny workload, no absolute-speedup enforcement",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="run the adaptive-vs-fixed Monte-Carlo section instead",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the resilience chaos/overload section instead",
    )
    parser.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="thread",
        help="serving tier for the --chaos section (process = OS-level chaos)",
    )
    args = parser.parse_args(argv)
    if args.adaptive and args.chaos:
        parser.error("pass at most one of --adaptive / --chaos")
    if args.worker_mode == "process" and not args.chaos:
        parser.error("--worker-mode process applies to the --chaos section")
    mode = "quick" if args.quick else "full"
    if args.adaptive:
        recorder = BenchRecorder(
            "bench_serving_adaptive", mode=mode, config={"quick": args.quick}
        )
        code = bench_adaptive(args.quick, recorder)
        print(f"results written to {recorder.write(RESULTS_DIR)}")
        return code
    if args.chaos:
        if args.worker_mode == "process":
            recorder = BenchRecorder(
                "bench_serving_process", mode=mode, config={"quick": args.quick}
            )
            code = bench_chaos_process(args.quick, recorder)
        else:
            recorder = BenchRecorder(
                "bench_serving_chaos", mode=mode, config={"quick": args.quick}
            )
            code = bench_chaos(args.quick, recorder)
        print(f"results written to {recorder.write(RESULTS_DIR)}")
        return code
    n_samples = 5 if args.quick else 20
    n_images = 64 if args.quick else 256
    recorder = BenchRecorder(
        "bench_serving",
        mode=mode,
        config={
            "quick": args.quick,
            "n_samples": n_samples,
            "n_images": n_images,
            "grng": GRNG,
            "seed": SEED,
        },
    )
    _, _, images, _ = load_digits_split(n_train=10, n_test=n_images, seed=SEED)
    network = BayesianNetwork((784, 100, 10), seed=SEED)

    ok = check_equivalence(network, images, n_samples)
    headline, capacity = bench_throughput(network, images, n_samples, args.quick)
    bench_open_loop_latency(network, images, n_samples, capacity, args.quick)
    obs_code = bench_obs_overhead(network, images, n_samples, args.quick, recorder)

    recorder.record("serving_bit_exact", 1.0 if ok else 0.0, unit="bool", comparable=True)
    recorder.record("microbatch_speedup", headline, unit="x")
    recorder.record("capacity_rps", capacity, unit="req/s")
    print(f"results written to {recorder.write(RESULTS_DIR)}")

    if not ok:
        print("FAIL: served predictions diverged from the direct batched path")
        return 1
    if not args.quick and headline < 5.0:
        print(f"FAIL: micro-batching speedup {headline:.1f}x below the 5x target")
        return 1
    return obs_code


if __name__ == "__main__":
    sys.exit(main())
