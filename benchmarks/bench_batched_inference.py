"""Benchmark: streaming/batched sampling backend vs. the seed loop paths.

Two sections:

1. **GRNG samples/sec** — per generator, the pre-block-API call pattern
   (one ``step()`` per hardware cycle for the cycle-accurate generators,
   small per-pass ``generate`` calls for the software ones) against the
   block path (:meth:`~repro.grng.base.Grng.generate_block` /
   :class:`~repro.grng.stream.GrngStream`).
2. **MC-predictions/sec on the digits workload** — the seed inference
   path (``MonteCarloPredictor(batched=False)`` fed by per-cycle
   generation, exactly the seed's semantics) against the batched path
   (all epsilons drawn as one block, all forward passes stacked along a
   leading sample axis).

The headline number is the digits-workload MC-inference speedup with the
paper's BNNWallace generator supplying the epsilons — the configuration
the paper's throughput story is about.  The acceptance target for the
batched backend is >= 5x over the seed loop path.

Run:  PYTHONPATH=src python benchmarks/bench_batched_inference.py [--quick]

``--quick`` shrinks the workloads for CI smoke runs (seconds, not
minutes); the speedups it reports are noisier but the structure is
identical.  Exit code is non-zero if the headline speedup misses the 5x
target (ignored in --quick mode, which exists to catch crashes, not
regressions in absolute throughput).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.inference import MonteCarloPredictor
from repro.datasets import load_digits_split
from repro.grng import BnnWallaceGrng, GrngStream, NumpyGrng, ParallelRlfGrng
from repro.grng.base import Grng
from repro.obs import BenchRecorder

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class StepLoopGrng(Grng):
    """The seed's per-cycle generation path, for old-vs-new comparisons.

    Before the block API, ``generate`` on the cycle-accurate generators
    assembled its output from one ``step()`` call per hardware cycle; the
    vectorised block paths replaced that loop.  This adapter reproduces
    the old call pattern on top of the unchanged ``step()`` kernel so the
    benchmark can measure what the seed code actually did.
    """

    def __init__(self, source) -> None:
        self.source = source

    def generate(self, count: int) -> np.ndarray:
        count = self._check_count(count)
        if count == 0:
            return np.empty(0)
        chunks = []
        have = 0
        while have < count:
            chunk = np.asarray(self.source.step(), dtype=np.float64)
            if hasattr(self.source, "width"):  # RLF emits integer codes
                from repro.grng.rlf import standardize_codes

                chunk = standardize_codes(chunk, self.source.width)
            chunks.append(chunk)
            have += chunk.size
        return np.concatenate(chunks)[:count]


def _rate(fn, min_seconds: float) -> float:
    """Calls/sec of ``fn`` over at least ``min_seconds`` of wall clock."""
    fn()  # warm-up
    calls = 0
    start = time.perf_counter()
    while True:
        fn()
        calls += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return calls / elapsed


def bench_grng_throughput(quick: bool) -> None:
    block = 20_000 if quick else 200_000
    seconds = 0.2 if quick else 1.0
    print(f"== GRNG throughput (block of {block:,} samples)")
    print(f"{'generator':<22}{'seed path':>14}{'block path':>14}{'speedup':>9}")
    rows = [
        (
            "bnnwallace",
            lambda: StepLoopGrng(BnnWallaceGrng(units=8, pool_size=256, seed=0)),
            lambda: BnnWallaceGrng(units=8, pool_size=256, seed=0),
        ),
        (
            "rlf (64 lanes)",
            lambda: StepLoopGrng(ParallelRlfGrng(lanes=64, seed=0)),
            lambda: ParallelRlfGrng(lanes=64, seed=0),
        ),
        (
            "numpy (256/call)",
            lambda: _Chunked(NumpyGrng(0), 256),
            lambda: NumpyGrng(0),
        ),
    ]
    for name, make_old, make_new in rows:
        old_gen, new_gen = make_old(), make_new()
        old = _rate(lambda: old_gen.generate(block), seconds) * block
        new = _rate(lambda: new_gen.generate_block((block,)), seconds) * block
        print(f"{name:<22}{old:>12,.0f}/s{new:>12,.0f}/s{new / old:>8.1f}x")
    print()


class _Chunked(Grng):
    """Serve a block as many small ``generate`` calls (old call pattern)."""

    def __init__(self, source: Grng, chunk: int) -> None:
        self.source = source
        self.chunk = chunk

    def generate(self, count: int) -> np.ndarray:
        count = self._check_count(count)
        parts = [
            self.source.generate(min(self.chunk, count - done))
            for done in range(0, count, self.chunk)
        ]
        return np.concatenate(parts) if parts else np.empty(0)


def bench_mc_inference(quick: bool) -> float:
    """Digits-workload MC inference; returns the headline speedup."""
    n_test = 100 if quick else 400
    n_samples = 10 if quick else 30
    seconds = 0.3 if quick else 2.0
    _, _, x_test, _ = load_digits_split(
        n_train=10, n_test=n_test, seed=0
    )
    network = BayesianNetwork((784, 100, 10), seed=0)
    print(
        f"== MC inference, digits workload "
        f"({n_test} images, 784-100-10, N={n_samples})"
    )
    print(f"{'configuration':<34}{'pred/s':>10}{'eps-sam/s':>14}")

    eps = network.weight_count() * n_samples

    def measure(label: str, predictor: MonteCarloPredictor) -> float:
        rate = _rate(lambda: predictor.predict_proba(x_test), seconds)
        print(f"{label:<34}{rate:>10.2f}{rate * eps:>12,.0f}/s")
        return rate

    results: dict[str, float] = {}
    configs = [
        (
            "bnnwallace seed loop path",
            lambda: MonteCarloPredictor(
                network,
                grng=StepLoopGrng(BnnWallaceGrng(units=8, pool_size=256, seed=0)),
                n_samples=n_samples,
                batched=False,
            ),
        ),
        (
            "bnnwallace batched block path",
            lambda: MonteCarloPredictor(
                network,
                grng=GrngStream(BnnWallaceGrng(units=8, pool_size=256, seed=0)),
                n_samples=n_samples,
                batched=True,
            ),
        ),
        (
            "rlf seed loop path",
            lambda: MonteCarloPredictor(
                network,
                grng=StepLoopGrng(ParallelRlfGrng(lanes=64, seed=0)),
                n_samples=n_samples,
                batched=False,
            ),
        ),
        (
            "rlf batched block path",
            lambda: MonteCarloPredictor(
                network,
                grng=GrngStream(ParallelRlfGrng(lanes=64, seed=0)),
                n_samples=n_samples,
                batched=True,
            ),
        ),
        (
            "numpy loop path",
            lambda: MonteCarloPredictor(
                network, grng=NumpyGrng(0), n_samples=n_samples, batched=False
            ),
        ),
        (
            "numpy batched block path",
            lambda: MonteCarloPredictor(
                network, grng=NumpyGrng(0), n_samples=n_samples, batched=True
            ),
        ),
    ]
    for label, make in configs:
        results[label] = measure(label, make())

    headline = results["bnnwallace batched block path"] / results[
        "bnnwallace seed loop path"
    ]
    rlf_speedup = results["rlf batched block path"] / results["rlf seed loop path"]
    numpy_speedup = results["numpy batched block path"] / results["numpy loop path"]
    print()
    print(f"bnnwallace MC-inference speedup (headline): {headline:.1f}x  (target >= 5x)")
    print(f"rlf MC-inference speedup:                   {rlf_speedup:.1f}x")
    print(f"numpy same-generator loop-vs-batched:       {numpy_speedup:.2f}x")
    return headline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: tiny workloads, no speedup enforcement",
    )
    args = parser.parse_args(argv)
    recorder = BenchRecorder(
        "bench_batched_inference",
        mode="quick" if args.quick else "full",
        config={"quick": args.quick},
    )
    bench_grng_throughput(args.quick)
    headline = bench_mc_inference(args.quick)
    recorder.record("mc_inference_speedup", headline, unit="x")
    print(f"results written to {recorder.write(RESULTS_DIR)}")
    if not args.quick and headline < 5.0:
        print(f"FAIL: headline speedup {headline:.1f}x below the 5x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
