"""Benchmark: the §2.3 GRNG taxonomy comparison."""

from repro.experiments import taxonomy


def test_taxonomy(record_experiment):
    result = record_experiment("taxonomy", taxonomy.run, taxonomy.render)
    rows = result["rows"]
    # The structural facts §2.3's argument rests on:
    # exact-marginal methods have near-perfect tails...
    assert abs(rows["lut-icdf"]["tail_ratio"] - 1.0) < 0.15
    assert abs(rows["ziggurat"]["tail_ratio"] - 1.0) < 0.15
    # ...while the 12-term CLT under-covers them...
    assert rows["clt-12"]["tail_ratio"] < 1.0
    # ...and the proposed designs stay within a usable quality band.
    assert rows["rlf"]["sigma_error"] < 0.1
    assert rows["bnnwallace"]["sigma_error"] < 0.1
