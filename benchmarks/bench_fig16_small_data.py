"""Benchmark: regenerate Fig. 16 (FNN vs BNN accuracy vs data fraction)."""

from repro.experiments import fig16


def test_fig16_small_data(record_experiment):
    result = record_experiment("fig16", fig16.run, fig16.render)
    points = sorted(result["points"], key=lambda p: p["fraction"])
    # Expected shape: at the smallest fraction the BNN is at least
    # competitive with the FNN; at full data both models work.
    smallest, largest = points[0], points[-1]
    assert smallest["bnn_accuracy"] >= smallest["fnn_accuracy"] - 0.05
    assert largest["fnn_accuracy"] > 0.85
    assert largest["bnn_accuracy"] > 0.85
