"""Benchmark: regenerate Fig. 17 (training-convergence curves)."""

from repro.experiments import fig17


def test_fig17_convergence(record_experiment):
    result = record_experiment("fig17", fig17.run, fig17.render)
    for point in result["points"]:
        fnn_curve = point["fnn_history"].test_accuracy
        bnn_curve = point["bnn_history"].test_accuracy
        # Both curves must improve over training.
        assert fnn_curve[-1] >= fnn_curve[0] - 0.02
        assert bnn_curve[-1] >= bnn_curve[0]
        # BNN converges to a competitive level on small fractions.
        assert bnn_curve[-1] >= fnn_curve[-1] - 0.07
