"""Cycle-accurate occupancy model of the §5.5 two-tier pipeline.

The deep pipeline is: GRNG -> [tier-1 register] -> weight updater ->
[tier-2 registers] -> PE multiply -> PE accumulate -> PE bias/ReLU.  This
module pushes every MAC operation of a layer through those stages cycle by
cycle, which validates the analytic schedule's fill constant
(:data:`repro.hw.pe.PE_PIPELINE_STAGES` +
:data:`repro.hw.weight_generator.WEIGHT_GENERATOR_PIPELINE_STAGES`) and
lets stall sensitivity be studied (e.g. a WPMem refill bubble every ``k``
cycles).

The tokens carry no data — functional correctness is covered by
:class:`repro.hw.accelerator.DetailedDatapathSimulator`; this model is
about *when*, not *what*.

Two fidelities of the same model:

* :func:`simulate_layer_pipeline` — the per-cycle while-loop reference.
* :func:`closed_form_layer_pipeline` — the fill + stall algebra, exactly
  equal to the loop (tested across a grid of ``stall_every`` values) and
  O(1), so occupancy studies over large design/stall grids don't pay a
  Python cycle loop per point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import LayerSchedule
from repro.hw.pe import PE_PIPELINE_STAGES
from repro.hw.weight_generator import WEIGHT_GENERATOR_PIPELINE_STAGES

#: Stage names, issue end first.  GRNG and updater occupy the two
#: weight-generator stages; the PE occupies three (§5.5).
STAGE_NAMES = (
    "grng",
    "weight_updater",
    "pe_multiply",
    "pe_accumulate",
    "pe_bias_relu",
)

PIPELINE_DEPTH = len(STAGE_NAMES)

assert PIPELINE_DEPTH == PE_PIPELINE_STAGES + WEIGHT_GENERATOR_PIPELINE_STAGES


@dataclass(frozen=True)
class PipelineReport:
    """Result of pushing one layer's operation stream through the pipeline."""

    operations: int
    cycles: int
    stall_cycles: int
    stage_busy_cycles: dict[str, int]

    @property
    def occupancy(self) -> float:
        """Mean fraction of stages busy per cycle (pipeline utilisation)."""
        total_busy = sum(self.stage_busy_cycles.values())
        return total_busy / (self.cycles * PIPELINE_DEPTH) if self.cycles else 0.0

    @property
    def fill_overhead_cycles(self) -> int:
        """Cycles beyond one-per-operation — the schedule's fill constant."""
        return self.cycles - self.operations


def simulate_layer_pipeline(
    config: ArchitectureConfig,
    layer: LayerSchedule,
    *,
    stall_every: int = 0,
) -> PipelineReport:
    """Push ``layer``'s MAC-iteration stream through the two-tier pipeline.

    One token per (group, iteration) — the whole PE array works in
    lockstep, so array width does not add tokens.  ``stall_every > 0``
    inserts one issue bubble every that many issued operations (a memory
    refill hiccup); the report shows the cycle cost.
    """
    if stall_every < 0:
        raise ConfigurationError(f"stall_every must be >= 0, got {stall_every}")
    operations = layer.compute_cycles
    if operations < 1:
        raise ConfigurationError("layer has no compute operations")
    stages: list[bool] = [False] * PIPELINE_DEPTH
    busy = {name: 0 for name in STAGE_NAMES}
    issued = 0
    retired = 0
    cycles = 0
    stall_cycles = 0
    since_stall = 0
    while retired < operations:
        cycles += 1
        # Retire from the last stage.
        if stages[-1]:
            retired += 1
        # Shift the pipeline one stage down (no structural hazards: every
        # stage accepts a new token each cycle).
        for index in range(PIPELINE_DEPTH - 1, 0, -1):
            stages[index] = stages[index - 1]
        # Issue a new token unless stalled or done.
        issue = issued < operations
        if issue and stall_every and since_stall == stall_every:
            issue = False
            stall_cycles += 1
            since_stall = 0
        stages[0] = issue
        if issue:
            issued += 1
            since_stall += 1
        for name, token in zip(STAGE_NAMES, stages):
            if token:
                busy[name] += 1
    return PipelineReport(
        operations=operations,
        cycles=cycles,
        stall_cycles=stall_cycles,
        stage_busy_cycles=busy,
    )


def closed_form_layer_pipeline(
    config: ArchitectureConfig,
    layer: LayerSchedule,
    *,
    stall_every: int = 0,
) -> PipelineReport:
    """Closed-form :func:`simulate_layer_pipeline`, exact for every input.

    The while-loop's behaviour collapses to fill + stall algebra:

    * every token passes each stage exactly once (no structural hazards),
      so each stage is busy for exactly ``operations`` cycles;
    * one bubble is inserted after every ``stall_every`` issues *while
      issues remain*, so ``stalls = (operations - 1) // stall_every``;
    * the last token issues at cycle ``operations + stalls`` and retires
      ``PIPELINE_DEPTH`` cycles later, which is also when the loop exits.
    """
    if stall_every < 0:
        raise ConfigurationError(f"stall_every must be >= 0, got {stall_every}")
    operations = layer.compute_cycles
    if operations < 1:
        raise ConfigurationError("layer has no compute operations")
    stall_cycles = (operations - 1) // stall_every if stall_every else 0
    return PipelineReport(
        operations=operations,
        cycles=operations + stall_cycles + PIPELINE_DEPTH,
        stall_cycles=stall_cycles,
        stage_busy_cycles={name: operations for name in STAGE_NAMES},
    )
