"""On-chip memory models with per-cycle port accounting (§3, §5.4).

The FPGA's block RAMs are true dual-port: two accesses (any mix of reads
and writes) per cycle.  :class:`DualPortRam` enforces this budget so
schedule bugs surface as :class:`~repro.errors.MemoryPortConflictError`
instead of silently impossible designs.

Higher-level structures from the paper:

* :class:`DoubleBufferedMemory` — the IFMem pair of §5.4.1 ("we use two
  IFMems alternatively to avoid any latent read&write conflicts"): one
  buffer serves layer inputs while activations for the next layer land in
  the other, then the roles swap.
* :class:`WeightParameterMemory` — the distributed WPMems of §5.4.2: one
  memory per PE-set so the aggregate weight bandwidth is ``T * B * N * S``
  without exceeding ``MaxWS`` per memory.
* :class:`Rom` — read-only storage (the RLF Initialization ROM of Fig. 8).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, MemoryAccessError, MemoryPortConflictError


class DualPortRam:
    """Word-addressable RAM limited to two port operations per cycle.

    Words are stored as Python ints (hardware bit patterns); ``width_bits``
    bounds the value range.  Call :meth:`tick` to advance the cycle
    counter; reads and writes within one cycle are counted against the
    two-port budget.
    """

    PORTS = 2

    def __init__(self, depth: int, width_bits: int, name: str = "ram") -> None:
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if width_bits < 1:
            raise ConfigurationError(f"width_bits must be >= 1, got {width_bits}")
        self.depth = depth
        self.width_bits = width_bits
        self.name = name
        self._words = np.zeros(depth, dtype=object)
        self._accesses_this_cycle = 0
        self.total_reads = 0
        self.total_writes = 0
        self.cycles = 0

    @property
    def capacity_bits(self) -> int:
        return self.depth * self.width_bits

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.depth:
            raise MemoryAccessError(
                f"{self.name}: address {address} outside 0..{self.depth - 1}"
            )

    def _use_port(self) -> None:
        self._accesses_this_cycle += 1
        if self._accesses_this_cycle > self.PORTS:
            raise MemoryPortConflictError(
                f"{self.name}: {self._accesses_this_cycle} accesses in one cycle "
                f"(dual-port RAM allows {self.PORTS})"
            )

    def read(self, address: int) -> int:
        """Read one word this cycle."""
        self._check_address(address)
        self._use_port()
        self.total_reads += 1
        return int(self._words[address])

    def write(self, address: int, value: int) -> None:
        """Write one word this cycle."""
        self._check_address(address)
        if value < 0 or value >= (1 << self.width_bits):
            raise MemoryAccessError(
                f"{self.name}: value {value} does not fit in {self.width_bits} bits"
            )
        self._use_port()
        self.total_writes += 1
        self._words[address] = value

    def load(self, words: np.ndarray) -> None:
        """Bulk initialisation (external-memory preload; not cycle-counted)."""
        words = np.asarray(words, dtype=object)
        if words.shape[0] > self.depth:
            raise MemoryAccessError(
                f"{self.name}: {words.shape[0]} words exceed depth {self.depth}"
            )
        self._words[: words.shape[0]] = words

    def tick(self) -> None:
        """Advance one cycle, resetting the port budget."""
        self.cycles += 1
        self._accesses_this_cycle = 0

    # ------------------------------------------------------------------
    # Block operations: one word per cycle, accounted in aggregate
    # ------------------------------------------------------------------
    def _check_block_addresses(self, addresses) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.ndim != 1:
            raise MemoryAccessError(
                f"{self.name}: block addresses must be 1-D, got shape {addresses.shape}"
            )
        if addresses.size and (
            addresses.min() < 0 or addresses.max() >= self.depth
        ):
            raise MemoryAccessError(
                f"{self.name}: block address outside 0..{self.depth - 1}"
            )
        return addresses

    def read_block(self, addresses) -> np.ndarray:
        """Read one word per cycle; equivalent to ``read(a); tick()`` per address.

        The first word counts against the *current* cycle's remaining port
        budget (so a block issued into a saturated cycle raises
        :class:`~repro.errors.MemoryPortConflictError`, exactly like the
        word-by-word loop); each subsequent word occupies a fresh cycle.
        Aggregate ``cycles``/``total_reads`` accounting is identical to the
        loop, including the trailing tick after the last word.
        """
        addresses = self._check_block_addresses(addresses)
        if addresses.size == 0:
            return np.empty(0, dtype=object)
        self._use_port()
        words = self._words[addresses]
        self.total_reads += addresses.size
        self.cycles += addresses.size
        self._accesses_this_cycle = 0
        return words

    def write_block(self, addresses, values) -> None:
        """Write one word per cycle; equivalent to ``write(a, v); tick()`` pairs.

        Same aggregate accounting contract as :meth:`read_block`.
        """
        addresses = self._check_block_addresses(addresses)
        values = np.asarray(values, dtype=object)
        if values.shape != addresses.shape:
            raise MemoryAccessError(
                f"{self.name}: {values.shape[0] if values.ndim else 0} values "
                f"for {addresses.size} addresses"
            )
        if addresses.size == 0:
            return
        limit = 1 << self.width_bits
        if np.any((values < 0) | (values >= limit)):
            raise MemoryAccessError(
                f"{self.name}: block value does not fit in {self.width_bits} bits"
            )
        self._use_port()
        self._words[addresses] = values
        self.total_writes += addresses.size
        self.cycles += addresses.size
        self._accesses_this_cycle = 0

    def advance(self, cycles: int) -> None:
        """Bulk :meth:`tick`: idle this memory for ``cycles`` cycles.

        Used to keep peers in lockstep while another memory runs a block
        operation (the word-by-word schedules tick every memory each
        cycle, busy or not).
        """
        if cycles < 0:
            raise ConfigurationError(f"cycles must be >= 0, got {cycles}")
        if cycles:
            self.cycles += cycles
            self._accesses_this_cycle = 0


class Rom:
    """Read-only memory, preloaded at construction (no port limits modelled)."""

    def __init__(self, words, name: str = "rom") -> None:
        self._words = list(words)
        if not self._words:
            raise ConfigurationError(f"{name}: ROM cannot be empty")
        self.name = name

    def __len__(self) -> int:
        return len(self._words)

    def read(self, address: int) -> int:
        if not 0 <= address < len(self._words):
            raise MemoryAccessError(
                f"{self.name}: address {address} outside 0..{len(self._words) - 1}"
            )
        return self._words[address]


class DoubleBufferedMemory:
    """The alternating IFMem pair of §5.4.1.

    ``read_buffer`` holds the current layer's input features;
    ``write_buffer`` collects its activation outputs.  :meth:`swap` flips
    the roles at a layer boundary.
    """

    def __init__(self, depth: int, width_bits: int) -> None:
        self._buffers = [
            DualPortRam(depth, width_bits, name="ifmem0"),
            DualPortRam(depth, width_bits, name="ifmem1"),
        ]
        self._read_index = 0
        self.swaps = 0

    @property
    def read_buffer(self) -> DualPortRam:
        return self._buffers[self._read_index]

    @property
    def write_buffer(self) -> DualPortRam:
        return self._buffers[1 - self._read_index]

    def swap(self) -> None:
        """Flip read/write roles (layer boundary)."""
        self._read_index = 1 - self._read_index
        self.swaps += 1

    def tick(self) -> None:
        for buffer in self._buffers:
            buffer.tick()

    def read_block(self, addresses) -> np.ndarray:
        """Block read from the read buffer, idling the write buffer in lockstep.

        Aggregate accounting on *both* buffers matches a
        ``read_buffer.read(a); tick()`` loop (``tick`` advances both).
        """
        words = self.read_buffer.read_block(addresses)
        self.write_buffer.advance(len(words))
        return words

    def write_block(self, addresses, values) -> None:
        """Block write to the write buffer, idling the read buffer in lockstep."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self.write_buffer.write_block(addresses, values)
        self.read_buffer.advance(addresses.size)

    @property
    def capacity_bits(self) -> int:
        return sum(buffer.capacity_bits for buffer in self._buffers)


class WeightParameterMemory:
    """Distributed WPMems: one dual-port RAM per PE-set (§5.4.2).

    ``read_set_word(set_index, address)`` models the per-set parameter
    fetch; every set reads in the same cycle from its own memory, so the
    aggregate bandwidth scales with ``T`` while each word stays within
    ``MaxWS``.
    """

    def __init__(self, pe_sets: int, depth: int, word_bits: int) -> None:
        if pe_sets < 1:
            raise ConfigurationError(f"pe_sets must be >= 1, got {pe_sets}")
        self.memories = [
            DualPortRam(depth, word_bits, name=f"wpmem{i}") for i in range(pe_sets)
        ]

    def read_set_word(self, set_index: int, address: int) -> int:
        if not 0 <= set_index < len(self.memories):
            raise MemoryAccessError(
                f"set index {set_index} outside 0..{len(self.memories) - 1}"
            )
        return self.memories[set_index].read(address)

    def load_set(self, set_index: int, words) -> None:
        self.memories[set_index].load(np.asarray(words, dtype=object))

    def tick(self) -> None:
        for memory in self.memories:
            memory.tick()

    def read_set_blocks(self, addresses) -> np.ndarray:
        """Every set block-reads the same address sequence in lockstep.

        Returns a ``(pe_sets, len(addresses))`` object array; each set's
        memory carries the same aggregate accounting as a
        ``read_set_word``-per-cycle loop over ``addresses``.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        out = np.empty((len(self.memories), addresses.size), dtype=object)
        for set_index, memory in enumerate(self.memories):
            out[set_index] = memory.read_block(addresses)
        return out

    def advance(self, cycles: int) -> None:
        """Idle every set memory for ``cycles`` cycles (lockstep bulk tick)."""
        for memory in self.memories:
            memory.advance(cycles)

    @property
    def capacity_bits(self) -> int:
        return sum(memory.capacity_bits for memory in self.memories)
