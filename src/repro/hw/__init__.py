"""VIBNN accelerator models (systems S15-S21).

Functional + cycle-level simulation of the Fig. 2 architecture together
with analytic resource / power / clock models calibrated against the
paper's published design points:

* :mod:`~repro.hw.config` — architecture parameters ``(T, S, N, B)`` and
  the joint PE/memory constraints of eqs. (14)-(15);
* :mod:`~repro.hw.memory` — 2-port RAM / ROM models with per-cycle port
  accounting, double-buffered IFMems, distributed WPMems;
* :mod:`~repro.hw.pe` — the N-input PE (MAC tree, accumulator, bias,
  ReLU; 3-stage pipeline) and PE-sets;
* :mod:`~repro.hw.weight_generator` — GRNG + weight updater (Fig. 12);
* :mod:`~repro.hw.controller` — layer scheduling and cycle counting;
* :mod:`~repro.hw.accelerator` — the assembled VIBNN, functionally
  bit-exact with :class:`repro.bnn.quantized.QuantizedBayesianNetwork`;
* :mod:`~repro.hw.resources` — ALM / register / memory-bit / DSP, power
  and fmax models (Tables 2, 4, 5);
* :mod:`~repro.hw.design_space` — the §5.4 joint-optimization explorer.
"""

from repro.hw.accelerator import InferenceResult, VibnnAccelerator
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import LayerSchedule, NetworkSchedule, schedule_network
from repro.hw.design_space import DesignPoint, explore_design_space
from repro.hw.faults import FaultyBnnWallaceGrng, FaultyRlfGrng, StuckAtFault, random_seu_faults
from repro.hw.memory import DoubleBufferedMemory, DualPortRam, Rom, WeightParameterMemory
from repro.hw.pe import PeSet, ProcessingElement
from repro.hw.pipeline import PipelineReport, simulate_layer_pipeline
from repro.hw.resources import (
    GRNG_KINDS,
    FullDesignReport,
    GrngResourceReport,
    full_design_resources,
    grng_resources,
    system_power_mw,
)
from repro.hw.weight_generator import WeightGenerator

__all__ = [
    "InferenceResult",
    "VibnnAccelerator",
    "ArchitectureConfig",
    "LayerSchedule",
    "NetworkSchedule",
    "schedule_network",
    "DesignPoint",
    "explore_design_space",
    "DoubleBufferedMemory",
    "DualPortRam",
    "Rom",
    "WeightParameterMemory",
    "PeSet",
    "ProcessingElement",
    "PipelineReport",
    "simulate_layer_pipeline",
    "FaultyBnnWallaceGrng",
    "FaultyRlfGrng",
    "StuckAtFault",
    "random_seu_faults",
    "GRNG_KINDS",
    "FullDesignReport",
    "GrngResourceReport",
    "full_design_resources",
    "grng_resources",
    "system_power_mw",
    "WeightGenerator",
]
