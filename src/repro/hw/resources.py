"""Analytic resource / power / clock models (Tables 2, 4 and 5).

A Python reproduction cannot synthesise Verilog, so FPGA costs are modelled
with per-component formulas whose constants are **calibrated** against the
paper's published design points and then extrapolated:

* Table 2 — the two GRNGs at 64 parallel lanes (ALMs, registers, block
  memory bits, RAM blocks, power, fmax);
* Table 4 — the full 16x8x8 networks (ALMs, registers, memory bits, DSPs);
* Table 5 — derived system power such that throughput / power lands on the
  published images/J.

Every constant in :data:`CALIBRATION` is annotated with its source.  The
model preserves the paper's *relative* story exactly — RLF is memory-lean,
fast and power-efficient; BNNWallace is ALM/register-lean but
memory-hungry — and reproduces the absolute published numbers at the
calibrated points to within a few percent (asserted by the tests, reported
in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.config import (
    CYCLONE_V_ALMS,
    CYCLONE_V_DSPS,
    CYCLONE_V_MEMORY_BITS,
    M10K_BITS,
    ArchitectureConfig,
)

GRNG_KINDS = ("rlf", "bnnwallace")

#: Calibration constants.  "T2" = fitted to Table 2 (64-lane GRNGs),
#: "T4" = fitted to Table 4 (full networks), "T5" = fitted to Table 5
#: (system power via images/J), "model" = engineering estimate.
CALIBRATION: dict[str, float] = {
    # --- GRNG logic: linear per-lane models through the T2 64-lane points.
    #     Pure linearity (no fixed term) makes the full designs' ALM delta
    #     match Table 4 exactly: 98,006 - 91,126 = 16 x (831 - 401).
    "rlf_alm_per_lane": 831 / 64,                  # T2
    "rlf_reg_per_lane": 1780 / 64,                 # T2
    "wallace_alm_per_lane": 401 / 64,              # T2
    "wallace_reg_per_lane": 1166 / 64,             # T2
    # --- GRNG memory ---
    "rlf_seed_bits_per_lane": 255.0,               # SeMem: 255 words x 1 bit
    "wallace_pool_words_per_unit": 256.0,          # paper: 256-number pools
    "wallace_pool_bits_per_word": 16.0,            # pool number width
    "wallace_blocks_per_lane": 103 / 64,           # T2 (port-driven blowup)
    "wallace_system_init_rom_bits": 45_056.0,      # T4 fit (large designs)
    # --- GRNG clock (critical path) ---
    "rlf_fmax_mhz": 212.95,                        # T2
    "wallace_fmax_mhz": 117.63,                    # T2
    # --- GRNG power: (fixed + per_lane * lanes) * f / f_ref, fitted through
    #     the T2 point at 64 lanes and the T5 system-power target at the
    #     full design's 1024 lanes ---
    "rlf_power_fixed_mw": 7.4,                     # T2+T5 joint fit
    "rlf_power_per_lane_mw": 8.145,                # T2+T5 joint fit
    "wallace_power_fixed_mw": 100.5,               # T2+T5 joint fit
    "wallace_power_per_lane_mw": 7.18,             # T2+T5 joint fit
    # --- PE array and system (B-bit operands, per-PE N-input MAC) ---
    "pe_alm_per_mac_bit": 8.18,                    # T4 fit
    "pe_reg_per_pe": 423.75,                       # T4 fit
    "updater_alm_per_lane_bit": 1.55,              # T4 fit
    "system_alm_overhead": 5000.0,                 # controller+distributor (model)
    "system_reg_overhead": 6000.0,                 # (model)
    "pe_power_mw": 10.0,                           # T5 fit
    "mem_ctrl_power_mw": 500.0,                    # T5 fit
    "static_power_mw": 400.0,                      # T5 fit
    "system_fmax_mhz": 100.0,                      # typical Cyclone V system clock (model)
    # --- network memory (Table 4 baseline) ---
    "infrastructure_mem_bits": 1_110_880.0,        # T4 fit: I/O staging, init ROMs
}


@dataclass(frozen=True)
class GrngResourceReport:
    """Table 2 row: one GRNG design at a given lane count."""

    kind: str
    lanes: int
    alms: int
    registers: int
    memory_bits: int
    ram_blocks: int
    power_mw: float
    fmax_mhz: float


def grng_resources(kind: str, lanes: int) -> GrngResourceReport:
    """Resource/performance model of a parallel GRNG (Table 2 at 64 lanes)."""
    if kind not in GRNG_KINDS:
        raise ConfigurationError(f"kind must be one of {GRNG_KINDS}, got {kind!r}")
    if lanes < 4:
        raise ConfigurationError(f"lanes must be >= 4, got {lanes}")
    c = CALIBRATION
    if kind == "rlf":
        alms = c["rlf_alm_per_lane"] * lanes
        regs = c["rlf_reg_per_lane"] * lanes
        bits_used = int(c["rlf_seed_bits_per_lane"] * lanes)
        # The 3-block banking scheme (Fig. 6) needs at least three physical
        # blocks; wider lane counts add capacity blocks in triples.
        blocks = 3 * max(1, math.ceil(bits_used / (3 * M10K_BITS)))
        memory_bits = 1 << math.ceil(math.log2(max(bits_used, 1)))
        power = (c["rlf_power_fixed_mw"] + c["rlf_power_per_lane_mw"] * lanes)
        fmax = c["rlf_fmax_mhz"]
    else:
        alms = c["wallace_alm_per_lane"] * lanes
        regs = c["wallace_reg_per_lane"] * lanes
        units = max(1, lanes // 4)
        bits_used = int(
            units
            * c["wallace_pool_words_per_unit"]
            * c["wallace_pool_bits_per_word"]
        )
        # Each Wallace Unit needs 4 reads + 4 writes per cycle, so pools
        # shatter across many narrow blocks; the block count is calibrated
        # to Table 2's 103 blocks at 64 lanes.
        blocks = math.ceil(c["wallace_blocks_per_lane"] * lanes)
        memory_bits = blocks * M10K_BITS
        # Table 2 reports 2^20 for the 64-lane design; keep the same
        # power-of-two presentation.
        memory_bits = 1 << math.floor(math.log2(max(memory_bits, 1)))
        power = (c["wallace_power_fixed_mw"] + c["wallace_power_per_lane_mw"] * lanes)
        fmax = c["wallace_fmax_mhz"]
    return GrngResourceReport(
        kind=kind,
        lanes=lanes,
        alms=int(round(alms)),
        registers=int(round(regs)),
        memory_bits=int(memory_bits),
        ram_blocks=int(blocks),
        power_mw=float(power),
        fmax_mhz=float(fmax),
    )


def grng_system_memory_bits(kind: str, lanes: int) -> int:
    """GRNG memory as *packed into* a full design (Table 4 accounting).

    The standalone Table 2 report counts allocated M10K capacity (one
    Wallace pool per block group); inside the full design the pools are
    packed, and — per §6.1's observation that more sharing units allow
    smaller pools — designs with more than 16 units halve the per-unit
    pool to 128 numbers.  The RLF SeMem is reported at its power-of-two
    footprint.  Constants are fitted so the paper's two Table 4 design
    points are matched exactly.
    """
    if kind not in GRNG_KINDS:
        raise ConfigurationError(f"kind must be one of {GRNG_KINDS}, got {kind!r}")
    if lanes < 4:
        raise ConfigurationError(f"lanes must be >= 4, got {lanes}")
    c = CALIBRATION
    if kind == "rlf":
        bits_used = int(c["rlf_seed_bits_per_lane"] * lanes)
        return 1 << math.ceil(math.log2(max(bits_used, 2)))
    units = max(1, lanes // 4)
    pool_words = c["wallace_pool_words_per_unit"] if units <= 16 else 128.0
    pool_bits = int(units * pool_words * c["wallace_pool_bits_per_word"])
    rom_bits = int(c["wallace_system_init_rom_bits"]) if units > 16 else 0
    return pool_bits + rom_bits


@dataclass(frozen=True)
class FullDesignReport:
    """Table 4 row: a full VIBNN network design on the Cyclone V."""

    grng_kind: str
    alms: int
    registers: int
    memory_bits: int
    dsps: int
    alm_utilization: float
    memory_utilization: float
    dsp_utilization: float
    power_mw: float
    clock_mhz: float

    def fits_device(self) -> bool:
        """Whether the design fits the paper's Cyclone V."""
        return (
            self.alms <= CYCLONE_V_ALMS
            and self.memory_bits <= CYCLONE_V_MEMORY_BITS
            and self.dsps <= CYCLONE_V_DSPS
        )


def network_parameter_bits(layer_sizes: tuple[int, ...], bit_length: int) -> int:
    """WPMem bits: ``(mu, sigma)`` per weight and bias at ``B`` bits each."""
    if len(layer_sizes) < 2:
        raise ConfigurationError("need at least input and output sizes")
    weights = sum(
        layer_sizes[i] * layer_sizes[i + 1] for i in range(len(layer_sizes) - 1)
    )
    biases = sum(layer_sizes[1:])
    return (weights + biases) * 2 * bit_length


def full_design_resources(
    config: ArchitectureConfig,
    layer_sizes: tuple[int, ...] = (784, 200, 200, 10),
) -> FullDesignReport:
    """Model the full accelerator (Table 4 at the paper config).

    Component breakdown:

    * PE array: ``M`` PEs, each with ``N`` B-bit multipliers + adder tree,
      modelled as ``pe_alm_per_mac_bit * N * B`` ALMs per PE; multipliers
      map to DSPs until the device runs out (Table 4 shows 342/342).
    * Weight updater: one multiply-add lane per weight per cycle
      (``M * N`` lanes), ``updater_alm_per_lane_bit * B`` ALMs each.
    * GRNG: :func:`grng_resources` at ``M * N`` lanes.
    * Memory: network parameters + double-buffered IFMems +
      calibrated infrastructure bits, plus the GRNG's own memory.
    """
    c = CALIBRATION
    lanes = config.weights_per_cycle
    grng = grng_resources(config.grng_kind, lanes)
    pe_alms = (
        c["pe_alm_per_mac_bit"] * config.pe_inputs * config.bit_length
    ) * config.total_pes
    updater_alms = c["updater_alm_per_lane_bit"] * config.bit_length * lanes
    alms = pe_alms + updater_alms + grng.alms + c["system_alm_overhead"]
    registers = (
        c["pe_reg_per_pe"] * config.total_pes
        + grng.registers
        + c["system_reg_overhead"]
    )
    max_activations = max(layer_sizes)
    ifmem_bits = 2 * max_activations * config.bit_length
    memory_bits = (
        network_parameter_bits(layer_sizes, config.bit_length)
        + ifmem_bits
        + int(c["infrastructure_mem_bits"])
        + grng_system_memory_bits(config.grng_kind, lanes)
    )
    multipliers = config.total_pes * config.pe_inputs
    dsps = min(CYCLONE_V_DSPS, multipliers)
    power = system_power_mw(config)
    return FullDesignReport(
        grng_kind=config.grng_kind,
        alms=int(round(alms)),
        registers=int(round(registers)),
        memory_bits=int(memory_bits),
        dsps=int(dsps),
        alm_utilization=alms / CYCLONE_V_ALMS,
        memory_utilization=memory_bits / CYCLONE_V_MEMORY_BITS,
        dsp_utilization=dsps / CYCLONE_V_DSPS,
        power_mw=power,
        clock_mhz=system_clock_mhz(config),
    )


def system_clock_mhz(config: ArchitectureConfig) -> float:
    """System clock: the slower of the PE pipeline and the GRNG fmax."""
    grng = grng_resources(config.grng_kind, config.weights_per_cycle)
    return min(CALIBRATION["system_fmax_mhz"], grng.fmax_mhz, config.clock_mhz)


def system_power_mw(config: ArchitectureConfig) -> float:
    """Total board power: PEs + GRNG (frequency-scaled) + memory + static.

    GRNG dynamic power scales with the *system* clock it actually runs at,
    relative to the standalone fmax it was characterised at (Table 2).
    """
    c = CALIBRATION
    lanes = config.weights_per_cycle
    grng = grng_resources(config.grng_kind, lanes)
    clock = system_clock_mhz(config)
    grng_power = grng.power_mw * (clock / grng.fmax_mhz)
    pe_power = c["pe_power_mw"] * config.total_pes * (clock / c["system_fmax_mhz"])
    return grng_power + pe_power + c["mem_ctrl_power_mw"] + c["static_power_mw"]
