"""Global controller: layer scheduling and cycle accounting (§3, §5.5).

The PEs are time-multiplexed over the network (§3).  For a layer with
``In`` inputs and ``Out`` neurons on an array of ``M = T * S`` PEs with
``N``-input MAC trees:

* each neuron needs ``iterations = ceil(In / N)`` accumulate cycles;
* the array processes ``groups = ceil(Out / M)`` batches of neurons;
* per layer the pipeline refills (weight-generator stages + PE stages)
  and the final group's ``T`` output words drain to the IFMem.

The drain overlaps the next layer's first iterations through the memory
distributor's buffering; the residual non-overlapped drain is modelled as
``ceil(T / 2)`` cycles (calibration constant, documented in
EXPERIMENTS.md — with it, the paper design point lands within 0.4% of the
published 321,543.4 images/s at the default 100 MHz system clock).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.hw.config import ArchitectureConfig
from repro.hw.pe import PE_PIPELINE_STAGES
from repro.hw.weight_generator import WEIGHT_GENERATOR_PIPELINE_STAGES


@dataclass(frozen=True)
class LayerSchedule:
    """Cycle budget of one fully connected layer on the array."""

    in_features: int
    out_features: int
    iterations: int          # accumulate cycles per neuron group
    groups: int              # neuron batches over the PE array
    fill_cycles: int         # pipeline refill at layer start
    drain_cycles: int        # non-overlapped output write-back

    @property
    def compute_cycles(self) -> int:
        return self.iterations * self.groups

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.fill_cycles + self.drain_cycles

    @property
    def mac_utilization(self) -> float:
        """Useful MACs / available MAC slots during compute cycles."""
        return (self.in_features * self.out_features) / (
            self.compute_cycles * self._array_macs
        )

    # Set by schedule_network; stored privately to keep the dataclass frozen.
    _array_macs: int = 1


@dataclass(frozen=True)
class NetworkSchedule:
    """Cycle budget of a full forward pass (one Monte-Carlo sample)."""

    config: ArchitectureConfig
    layers: tuple[LayerSchedule, ...]

    @property
    def cycles_per_sample(self) -> int:
        """Cycles for one stochastic forward pass of one image."""
        return sum(layer.total_cycles for layer in self.layers)

    def cycles_per_image(self, n_samples: int = 1) -> int:
        """Cycles for one image at ``n_samples`` MC samples (eq. 6)."""
        if n_samples < 1:
            raise SchedulingError(f"n_samples must be >= 1, got {n_samples}")
        return self.cycles_per_sample * n_samples

    def images_per_second(self, n_samples: int = 1) -> float:
        """Throughput at the configured system clock."""
        return (
            self.config.clock_mhz * 1e6 / self.cycles_per_image(n_samples)
        )

    @property
    def gaussian_samples_per_image(self) -> int:
        """GRNG numbers consumed per forward pass (weights + biases)."""
        total = 0
        for layer in self.layers:
            total += layer.in_features * layer.out_features + layer.out_features
        return total


def schedule_conv_layer(
    config: ArchitectureConfig,
    input_shape: tuple[int, int, int],
    out_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
) -> LayerSchedule:
    """Schedule one convolutional layer as an im2col GEMM (CNN extension).

    The paper (§1) notes VIBNN's design principles apply to CNNs: a conv
    layer is a dense layer over ``k*k*C_in``-element patch vectors, with
    one "neuron" per (output position, output channel) pair.  The PE array
    therefore sees ``out_h * out_w * C_out`` neurons of input size
    ``k * k * C_in`` — scheduled exactly like eq. (14)'s dense case.
    """
    from repro.bnn.convolution import conv_output_size  # local: avoid cycle

    channels, height, width = input_shape
    if channels < 1 or out_channels < 1:
        raise SchedulingError("channel counts must be >= 1")
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)
    patch = channels * kernel_size * kernel_size
    neurons = out_h * out_w * out_channels
    return LayerSchedule(
        in_features=patch,
        out_features=neurons,
        iterations=math.ceil(patch / config.pe_inputs),
        groups=math.ceil(neurons / config.total_pes),
        fill_cycles=PE_PIPELINE_STAGES + WEIGHT_GENERATOR_PIPELINE_STAGES,
        drain_cycles=math.ceil(config.pe_sets / 2),
        _array_macs=config.total_pes * config.pe_inputs,
    )


def schedule_network(
    config: ArchitectureConfig, layer_sizes: tuple[int, ...]
) -> NetworkSchedule:
    """Schedule a feed-forward topology onto a design point.

    Raises :class:`~repro.errors.SchedulingError` if the topology is
    malformed or the write-back constraint cannot hold.
    """
    if len(layer_sizes) < 2:
        raise SchedulingError("need at least input and output layer sizes")
    if any(size < 1 for size in layer_sizes):
        raise SchedulingError(f"layer sizes must be >= 1, got {layer_sizes}")
    min_in = min(layer_sizes[:-1])
    if not config.writeback_feasible(min_in):
        raise SchedulingError(
            f"write-back infeasible: T={config.pe_sets} > "
            f"ceil(MinIn/N)={math.ceil(min_in / config.pe_inputs)}"
        )
    fill = PE_PIPELINE_STAGES + WEIGHT_GENERATOR_PIPELINE_STAGES
    drain = math.ceil(config.pe_sets / 2)
    layers = []
    for in_features, out_features in zip(layer_sizes[:-1], layer_sizes[1:]):
        layers.append(
            LayerSchedule(
                in_features=in_features,
                out_features=out_features,
                iterations=math.ceil(in_features / config.pe_inputs),
                groups=math.ceil(out_features / config.total_pes),
                fill_cycles=fill,
                drain_cycles=drain,
                _array_macs=config.total_pes * config.pe_inputs,
            )
        )
    return NetworkSchedule(config=config, layers=tuple(layers))
