"""Processing element and PE-set models (§5.1, Figs. 11 and 13).

A PE is one time-multiplexed neuron: per cycle it multiplies ``N`` input
features with ``N`` weight samples (the MAC tree), accumulates the partial
dot product, and after the final iteration adds the bias and applies ReLU.
The three pipeline stages of §5.5 (multiply | accumulate | bias+ReLU) are
modelled as a latency constant; the arithmetic itself is bit-exact fixed
point.

Formats: weights arrive in the weight format (``Q0.(B-1)``), features in
the activation format (``Q3.(B-4)``); the accumulator carries
``frac_w + frac_a`` fractional bits, the bias is added at that wide
precision, and one rounding shift produces the activation-format output —
exactly the datapath of
:class:`repro.bnn.quantized.QuantizedBayesianNetwork`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat, requantize

#: Pipeline depth of one PE (§5.5: multiply, accumulate, bias+ReLU).
PE_PIPELINE_STAGES = 3


def stacked_accumulate(
    features: np.ndarray, weights: np.ndarray, bit_length: int
) -> np.ndarray:
    """All runs' MAC-tree accumulations as one lockstep tensor contraction.

    ``weights`` is ``(passes, K, out)`` weight codes; ``features`` is
    ``(batch, K)`` activation codes shared across passes (a layer fed by
    the image batch) or ``(passes, batch, K)`` per-pass codes (a hidden
    layer).  Returns the ``(passes, batch, out)`` wide accumulators —
    element ``[p, b, o]`` exactly equals what one
    :class:`ProcessingElement` accumulates for neuron ``o`` of run
    ``(p, b)`` over all its iterations.

    Uses the same mantissa-fit float64-GEMM trick as
    :meth:`repro.bnn.quantized.QuantizedBayesianNetwork.forward_stacked_codes`:
    each product of two signed ``B``-bit codes is bounded by
    ``2**(2B - 2)``, so when ``K * 2**(2B - 2) < 2**53`` every partial sum
    fits a float64 mantissa and BLAS computes the exact integers.  Wider
    datapaths fall back to an object-dtype (Python-int) contraction — the
    same unbounded accumulator a :class:`ProcessingElement` carries, so
    batched-vs-per-image equivalence holds even where int64 would wrap.
    In that wide-bit regime two caveats mirror the scalar PE exactly:
    agreement with the *functional* model
    (:class:`~repro.bnn.quantized.QuantizedBayesianNetwork`, whose wide
    fallback is a wrapping int64 matmul) is only guaranteed while no
    accumulator exceeds int64, and accumulators beyond int64 make the
    downstream :func:`~repro.fixedpoint.requantize` raise — the same
    ``OverflowError`` :meth:`ProcessingElement.finish` produces.
    """
    weights = np.asarray(weights, dtype=np.int64)
    features = np.asarray(features, dtype=np.int64)
    if weights.ndim != 3:
        raise ConfigurationError(
            f"weights must be (passes, K, out), got shape {weights.shape}"
        )
    if features.ndim not in (2, 3) or features.shape[-1] != weights.shape[1]:
        raise ConfigurationError(
            f"features shape {features.shape} does not match weights "
            f"shape {weights.shape}"
        )
    if features.ndim == 3 and features.shape[0] != weights.shape[0]:
        raise ConfigurationError(
            f"features carry {features.shape[0]} passes, weights "
            f"{weights.shape[0]}"
        )
    k = weights.shape[1]
    if k * (1 << (bit_length - 1)) ** 2 < 2**53:
        acc = features.astype(np.float64) @ weights.astype(np.float64)
        return acc.astype(np.int64)
    return (features.astype(object) @ weights.astype(object))


def stacked_finish(
    accumulators: np.ndarray,
    bias_acc_codes: np.ndarray,
    acc_frac_bits: int,
    act_fmt: QFormat,
    *,
    apply_relu: bool,
) -> np.ndarray:
    """Vectorised :meth:`ProcessingElement.finish` over a whole stack.

    ``bias_acc_codes`` (broadcastable against ``accumulators``) carries
    ``acc_frac_bits`` fractional bits; the wide bias add, single rounding
    shift and optional ReLU are the exact per-PE operations, batched.
    """
    wide = np.asarray(accumulators) + np.asarray(bias_acc_codes)
    out = requantize(wide, acc_frac_bits, act_fmt)
    return np.maximum(out, 0) if apply_relu else out


class ProcessingElement:
    """One N-input PE with a wide internal accumulator.

    Parameters
    ----------
    n_inputs:
        MAC-tree width ``N``.
    weight_fmt / act_fmt:
        Operand formats; ``act_fmt`` defaults to ``weight_fmt`` (the
        single-format configuration used by some unit tests).
    """

    def __init__(
        self, n_inputs: int, weight_fmt: QFormat, act_fmt: QFormat | None = None
    ) -> None:
        if n_inputs < 1:
            raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
        self.n_inputs = n_inputs
        self.weight_fmt = weight_fmt
        self.act_fmt = act_fmt if act_fmt is not None else weight_fmt
        self.acc_frac_bits = self.weight_fmt.frac_bits + self.act_fmt.frac_bits
        self._accumulator = 0  # carries acc_frac_bits fractional bits
        self.mac_operations = 0

    def reset(self) -> None:
        """Clear the accumulator for a new neuron assignment."""
        self._accumulator = 0

    def accumulate(self, weights: np.ndarray, features: np.ndarray) -> None:
        """One MAC-tree cycle: ``acc += dot(weights, features)``.

        Short final chunks are zero-padded by the caller (the controller
        feeds zeros for lanes past the layer's input size).
        """
        weights = np.asarray(weights, dtype=np.int64)
        features = np.asarray(features, dtype=np.int64)
        if weights.shape != (self.n_inputs,) or features.shape != (self.n_inputs,):
            raise ConfigurationError(
                f"expected {self.n_inputs}-vectors, got {weights.shape} and {features.shape}"
            )
        self._accumulator += int(weights @ features)
        self.mac_operations += 1

    def finish(self, bias_acc_code: int, *, apply_relu: bool) -> int:
        """Wide bias add + requantize + optional ReLU; returns the code.

        ``bias_acc_code`` carries :attr:`acc_frac_bits` fractional bits
        (the accumulator precision), as stored by the quantized network.
        """
        wide = self._accumulator + int(bias_acc_code)
        out = int(requantize(np.array([wide]), self.acc_frac_bits, self.act_fmt)[0])
        if apply_relu:
            out = max(out, 0)
        self.reset()
        return out


class PeSet:
    """``S`` PEs sharing one IFMem word per cycle (Fig. 13).

    All PEs in a set (and across sets) receive the same ``N`` input
    features in a cycle — the property that lets one IFMem access feed the
    whole array (§5.4.1).
    """

    def __init__(
        self,
        n_pes: int,
        n_inputs: int,
        weight_fmt: QFormat,
        act_fmt: QFormat | None = None,
    ) -> None:
        if n_pes < 1:
            raise ConfigurationError(f"n_pes must be >= 1, got {n_pes}")
        self.pes = [
            ProcessingElement(n_inputs, weight_fmt, act_fmt) for _ in range(n_pes)
        ]
        self.n_inputs = n_inputs

    def __len__(self) -> int:
        return len(self.pes)

    def accumulate(self, weights: np.ndarray, features: np.ndarray) -> None:
        """One cycle: ``weights`` is ``(S, N)``, ``features`` is ``(N,)``."""
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != (len(self.pes), self.n_inputs):
            raise ConfigurationError(
                f"expected weights of shape ({len(self.pes)}, {self.n_inputs}), got {weights.shape}"
            )
        for pe, row in zip(self.pes, weights):
            pe.accumulate(row, features)

    def finish(self, bias_acc_codes: np.ndarray, *, apply_relu: bool) -> np.ndarray:
        """Drain all PEs; returns ``S`` activation codes."""
        bias_acc_codes = np.asarray(bias_acc_codes, dtype=np.int64)
        if bias_acc_codes.shape != (len(self.pes),):
            raise ConfigurationError(
                f"expected {len(self.pes)} bias codes, got shape {bias_acc_codes.shape}"
            )
        return np.array(
            [
                pe.finish(int(bias), apply_relu=apply_relu)
                for pe, bias in zip(self.pes, bias_acc_codes)
            ],
            dtype=np.int64,
        )

    def reset(self) -> None:
        for pe in self.pes:
            pe.reset()
