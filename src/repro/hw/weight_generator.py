"""Weight generator: GRNG + weight updater (Fig. 12, §5.3).

Per cycle the generator must supply one fresh weight sample per multiplier
lane — ``M * N`` samples for the full array.  The weight updater applies
the variational parameters to the epsilon stream:

    ``w = mu + sigma * eps``  (eq. 2)

in fixed point.  For the RLF-GRNG the epsilon is the centred 8-bit
popcount, standardised by a 3-bit right shift (``sqrt(255/4) = 7.98 ~ 8``);
for BNNWallace (or any float GRNG) the epsilon is quantized to the
``Q2.(B-3)`` epsilon format first.  This mirrors
:class:`repro.bnn.quantized.QuantizedBayesianNetwork`'s updater exactly —
the accelerator's functional-equivalence tests depend on it.
"""

from __future__ import annotations

import numpy as np

from repro.bnn.quantized import EpsilonSource, epsilon_format, weight_format
from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat, requantize, saturate
from repro.grng.base import Grng
from repro.utils.validation import check_count

#: Pipeline registers between GRNG -> updater and updater -> PE (§5.5).
WEIGHT_GENERATOR_PIPELINE_STAGES = 2


class WeightGenerator:
    """Streams sampled weight codes for the PE array.

    Parameters
    ----------
    grng:
        The epsilon source.  Integer-code generators use the hardware
        shift-standardisation path; float generators are quantized.
    bit_length:
        Operand width ``B``; fixes the weight and epsilon formats.
    """

    def __init__(self, grng: Grng, bit_length: int = 8) -> None:
        if bit_length < 4 or bit_length > 32:
            raise ConfigurationError(f"bit_length must be in 4..32, got {bit_length}")
        self.grng = grng
        self.bit_length = bit_length
        self.weight_fmt: QFormat = weight_format(bit_length)
        self.eps_fmt: QFormat = epsilon_format(bit_length)
        # Same capability-probed dispatch as the functional model
        # (QuantizedBayesianNetwork): integer-vs-float is decided once
        # here, and a failing generate_codes raises at the draw instead
        # of silently switching the updater to the float-quantized path.
        self._eps = EpsilonSource(grng, bit_length)
        self.samples_generated = 0

    def sample(self, mu_codes: np.ndarray, sigma_codes: np.ndarray) -> np.ndarray:
        """Weight updater: elementwise ``mu + sigma * eps`` on weight codes.

        ``mu_codes`` and ``sigma_codes`` may have any (matching) shape; one
        epsilon is drawn per element.
        """
        return self.sample_block(mu_codes, sigma_codes, 1)[0]

    def sample_block(
        self, mu_codes: np.ndarray, sigma_codes: np.ndarray, n_samples: int
    ) -> np.ndarray:
        """Weight codes for ``n_samples`` Monte-Carlo passes in one draw.

        This is the block-sampling seam of the cycle model: the epsilons
        for all passes are drawn as one ``n_samples * size`` block from
        the GRNG (the software form of the generator streaming
        ``M * N`` fresh samples per cycle into the PE array), then the
        eq. (2) updater applies to the whole stack at once.  Returns shape
        ``(n_samples,) + mu_codes.shape`` with pass ``i`` consuming the
        ``i``-th contiguous slice of the drawn block.  (Wrap the GRNG in a
        :class:`~repro.grng.stream.GrngStream` when the block must equal
        ``n_samples`` sequential :meth:`sample` calls bit for bit — raw
        generators that round requests up to whole cycles split streams
        differently.)
        """
        n_samples = check_count("n_samples", n_samples)
        if n_samples < 1:
            raise ConfigurationError(f"n_samples must be >= 1, got {n_samples}")
        mu_codes = np.asarray(mu_codes, dtype=np.int64)
        sigma_codes = np.asarray(sigma_codes, dtype=np.int64)
        if mu_codes.shape != sigma_codes.shape:
            raise ConfigurationError(
                f"mu/sigma shape mismatch: {mu_codes.shape} vs {sigma_codes.shape}"
            )
        eps = self._eps.draw_block((n_samples,) + mu_codes.shape)
        eps_frac = self._eps.frac_bits
        self.samples_generated += n_samples * mu_codes.size
        product = sigma_codes * eps.astype(np.int64)
        delta = requantize(product, self.weight_fmt.frac_bits + eps_frac, self.weight_fmt)
        return saturate(mu_codes + delta, self.weight_fmt)
