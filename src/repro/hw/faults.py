"""Fault injection for the hardware GRNG models.

Failure-injection study: what happens to sample quality when SeMem bits or
Wallace pool entries develop stuck-at faults?  The RLF design's state is a
255-bit linear-feedback vector — a stuck bit both biases the popcount and
corrupts the feedback stream — while a stuck Wallace pool entry keeps
re-entering the orthogonal mixing.  These injectors let the test suite and
benches quantify the degradation and check that quality metrics *detect*
the faults (a silent-corruption check for the quality suite itself).

Both injectors run windowed: stuck-row re-pinning is folded into the
block kernels of the clean generators (:class:`~repro.grng.rlf.RlfWindowKernel`
for the RLF SeMem, :meth:`~repro.grng.bnnwallace.BnnWallaceGrng._batch_cycles`
for the Wallace pools), with the window additionally bounded by the first
write landing on a stuck row.  Up to that write every per-cycle re-pin is
a no-op (a pinned row only changes value when written), so pinning once at
the window start and once after the cut reproduces the per-cycle loop bit
for bit — state, incremental counts and emitted codes.  The per-cycle
loops are kept as tested references
(:meth:`FaultyRlfGrng.generate_codes_loop`,
:meth:`FaultyBnnWallaceGrng.generate_loop`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.grng.base import Grng
from repro.grng.bnnwallace import BnnWallaceGrng
from repro.grng.rlf import ParallelRlfGrng
from repro.utils.seeding import spawn_generator


@dataclass(frozen=True)
class StuckAtFault:
    """One stuck-at fault: a memory location pinned to a value."""

    location: int
    value: float  # 0/1 for bit memories; any finite float for Wallace pools


class FaultyRlfGrng(Grng):
    """RLF-GRNG with stuck-at faults injected into SeMem positions.

    ``faults`` pin whole SeMem *words* (one bit per lane, matching the
    physical layout: a defective RAM row hits every lane at once).
    """

    def __init__(
        self,
        faults: list[StuckAtFault],
        lanes: int = 64,
        seed: int = 0,
    ) -> None:
        self._grng = ParallelRlfGrng(lanes=lanes, seed=seed)
        for fault in faults:
            if not 0 <= fault.location < self._grng.width:
                raise ConfigurationError(
                    f"fault location {fault.location} outside SeMem depth "
                    f"{self._grng.width}"
                )
            if fault.value not in (0, 1):
                raise ConfigurationError("SeMem faults must pin to 0 or 1")
        self.faults = list(faults)
        self._stuck_rows = np.array(
            sorted({fault.location for fault in faults}), dtype=np.int64
        )

    def _apply_faults(self) -> None:
        grng = self._grng
        for fault in self.faults:
            row = grng.state[fault.location]
            delta = int(fault.value) - row.astype(np.int64)
            grng.counts += delta
            grng.state[fault.location] = int(fault.value)

    def generate_codes(self, count: int) -> np.ndarray:
        """Windowed path: stuck-row re-pinning folded into the block kernel.

        Bit-exact with :meth:`generate_codes_loop` (state, counts, codes):
        pins are applied at every window start, and each window ends no
        later than the first tap write onto a stuck row — the only event
        that makes an intermediate per-cycle pin observable.
        """
        count = self._check_count(count)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        grng = self._grng
        kernel = grng._kernel
        lanes = grng.lanes
        cycles = -(-count // lanes)
        raw = np.empty((cycles, lanes), dtype=np.int64)
        done = 0
        while done < cycles:
            self._apply_faults()
            window = min(kernel.window_max, cycles - done)
            if self._stuck_rows.size:
                window = kernel.cycles_until_write(
                    grng.head, self._stuck_rows, window
                )
            block, grng.head = kernel.advance(
                grng.state, grng.counts, grng.head, window
            )
            raw[done : done + window] = block
            done += window
        return grng._multiplex_block(raw).reshape(-1)[:count]

    def generate_codes_loop(self, count: int) -> np.ndarray:
        """Per-cycle reference: re-pin the stuck rows before every read."""
        count = self._check_count(count)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        lanes = self._grng.lanes
        cycles = -(-count // lanes)
        out = np.empty(cycles * lanes, dtype=np.int64)
        for i in range(cycles):
            self._apply_faults()      # the row is stuck before every read
            out[i * lanes : (i + 1) * lanes] = self._grng.step()
        return out[:count]

    def generate(self, count: int) -> np.ndarray:
        from repro.grng.rlf import standardize_codes

        return standardize_codes(self.generate_codes(count), self._grng.width)


class FaultyBnnWallaceGrng(Grng):
    """BNNWallace-GRNG with stuck pool entries (unit 0's pool).

    A stuck entry keeps feeding the same value into every transform that
    reads it; because the transform is orthogonal and energy-preserving,
    a large stuck value inflates the output variance persistently — the
    signature the quality suite must catch.  Pin values must be finite:
    a NaN/inf pin would poison every downstream quality metric with no
    signal, so it is rejected at construction.
    """

    def __init__(
        self,
        faults: list[StuckAtFault],
        units: int = 8,
        pool_size: int = 256,
        seed: int = 0,
    ) -> None:
        self._grng = BnnWallaceGrng(units=units, pool_size=pool_size, seed=seed)
        for fault in faults:
            if not 0 <= fault.location < pool_size:
                raise ConfigurationError(
                    f"fault location {fault.location} outside pool size {pool_size}"
                )
            if not math.isfinite(fault.value):
                raise ConfigurationError(
                    f"pool fault values must be finite, got {fault.value!r} "
                    f"at location {fault.location}"
                )
        self.faults = list(faults)
        self._stuck_slots = np.array(
            sorted({fault.location for fault in faults}), dtype=np.int64
        )

    def _apply_faults(self) -> None:
        for fault in self.faults:
            self._grng.pools[0, fault.location] = fault.value

    def generate(self, count: int) -> np.ndarray:
        """Windowed path, bit-exact with :meth:`generate_loop`.

        Rides the clean generator's non-wrapping batch window, further
        bounded by the first cycle whose write-back slots include a stuck
        pool entry (within a window reads sit strictly ahead of writes,
        so until that cycle every per-cycle re-pin is a no-op).
        """
        count = self._check_count(count)
        if count == 0:
            return np.empty(0)
        grng = self._grng
        per_cycle = grng.units * 4
        cycles = -(-count // per_cycle)
        rows: list[np.ndarray] = []
        done = 0
        while done < cycles:
            self._apply_faults()
            k = grng._window_cycles(cycles - done, avoid_slots=self._stuck_slots)
            if k < 1:
                # Slot window wraps around the pool edge: single-cycle path.
                rows.append(grng.step()[None, :])
                done += 1
                continue
            rows.append(grng._batch_cycles(k))
            done += k
        return np.concatenate(rows).reshape(-1)[:count]

    def generate_loop(self, count: int) -> np.ndarray:
        """Per-cycle reference: re-pin the stuck entries before every cycle."""
        count = self._check_count(count)
        if count == 0:
            return np.empty(0)
        per_cycle = self._grng.units * 4
        cycles = -(-count // per_cycle)
        out = np.empty(cycles * per_cycle)
        for i in range(cycles):
            self._apply_faults()
            out[i * per_cycle : (i + 1) * per_cycle] = self._grng.step()
        return out[:count]


def random_seu_faults(
    count: int, depth: int, seed: int = 0, *, binary: bool = True
) -> list[StuckAtFault]:
    """Random single-event-upset style stuck-at faults over ``depth`` rows.

    Locations are distinct, so ``count`` may not exceed ``depth`` — a
    larger request raises instead of silently capping the fault load.
    """
    if count < 0 or depth < 1:
        raise ConfigurationError("count must be >= 0 and depth >= 1")
    if count > depth:
        raise ConfigurationError(
            f"cannot place {count} distinct faults over {depth} rows"
        )
    rng = spawn_generator(seed, "seu-faults")
    locations = rng.choice(depth, size=count, replace=False)
    return [
        StuckAtFault(
            location=int(loc),
            value=float(rng.integers(0, 2)) if binary else float(rng.normal(0, 3)),
        )
        for loc in locations
    ]
