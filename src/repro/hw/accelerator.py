"""The assembled VIBNN accelerator (Fig. 2).

Two simulation fidelities, sharing one datapath definition:

* **Vectorised functional path** — a
  :class:`~repro.bnn.quantized.QuantizedBayesianNetwork` built from the
  configuration's fixed-point format and GRNG, plus the cycle/resource
  models.  This is what the throughput/accuracy experiments run.
* **Detailed datapath path** (:class:`DetailedDatapathSimulator`) — drives
  the actual :class:`~repro.hw.pe.PeSet`, packed
  :class:`~repro.hw.memory.DualPortRam` IFMem/WPMem models word by word,
  checking the two-port budgets every cycle.  The tests assert it produces
  bit-identical activations to the vectorised path given the same sampled
  weights — the functional-equivalence proof that the architecture of §5
  really computes eq. (6).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.errors import ConfigurationError
from repro.grng.base import Grng
from repro.grng.bnnwallace import BnnWallaceGrng
from repro.grng.rlf import ParallelRlfGrng
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import NetworkSchedule, schedule_network
from repro.hw.memory import DoubleBufferedMemory, WeightParameterMemory
from repro.hw.packing import pack_word, pack_words, unpack_word, unpack_words
from repro.hw.pe import PeSet, stacked_accumulate, stacked_finish
from repro.hw.resources import full_design_resources, system_clock_mhz, system_power_mw
from repro.obs import profile as _profile
from repro.utils.validation import check_positive


def default_grng(config: ArchitectureConfig, seed: int = 0) -> Grng:
    """The GRNG a design point instantiates (one lane per weight lane)."""
    lanes = config.weights_per_cycle
    if config.grng_kind == "rlf":
        return ParallelRlfGrng(lanes=lanes, seed=seed)
    return BnnWallaceGrng(units=max(1, lanes // 4), pool_size=256, seed=seed)


@dataclass(frozen=True)
class InferenceResult:
    """Output of an accelerator inference run with performance accounting."""

    probabilities: np.ndarray
    predictions: np.ndarray
    n_images: int
    n_samples: int
    cycles: int
    seconds: float
    images_per_second: float
    joules: float
    images_per_joule: float


class VibnnAccelerator:
    """Cycle/energy-accounted fixed-point BNN inference engine.

    Parameters
    ----------
    config:
        The design point; ``ArchitectureConfig.paper()`` reproduces §6.4.
    posterior:
        Trained ``(mu, sigma)`` parameters from
        :meth:`repro.bnn.bayesian.BayesianNetwork.posterior_parameters`.
    seed:
        Seeds the on-chip GRNG.
    grng:
        Optional explicit epsilon source (overrides ``config.grng_kind``).
    """

    def __init__(
        self,
        config: ArchitectureConfig,
        posterior: list[dict[str, np.ndarray]],
        seed: int = 0,
        grng: Grng | None = None,
    ) -> None:
        self.config = config
        self.grng = grng if grng is not None else default_grng(config, seed)
        self.network = QuantizedBayesianNetwork(
            posterior, bit_length=config.bit_length, grng=self.grng, seed=seed
        )
        self.schedule: NetworkSchedule = schedule_network(
            config, self.network.layer_sizes
        )
        self.clock_mhz = system_clock_mhz(config)
        self.power_mw = system_power_mw(config)

    # ------------------------------------------------------------------
    @property
    def layer_sizes(self) -> tuple[int, ...]:
        return self.network.layer_sizes

    def resource_report(self):
        """Table-4 style resource summary for this design point."""
        return full_design_resources(self.config, self.layer_sizes)

    def infer(self, x: np.ndarray, n_samples: int = 1) -> InferenceResult:
        """Run MC inference and account cycles, time and energy.

        Routes through the functional model's stacked fixed-point path
        (:meth:`~repro.bnn.quantized.QuantizedBayesianNetwork.predict_proba`):
        all ``n_samples`` passes run as one int64 tensor computation fed
        by a single epsilon block drawn through the code-block seam.  The
        cycle/energy accounting is unchanged — it models the hardware,
        not the host's execution strategy.
        """
        check_positive("n_samples", n_samples)
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ConfigurationError(f"x must be 2-D (batch, features), got {x.shape}")
        probabilities = self.network.predict_proba(x, n_samples=n_samples)
        predictions = probabilities.argmax(axis=1)
        cycles = self.schedule.cycles_per_image(n_samples) * x.shape[0]
        seconds = cycles / (self.clock_mhz * 1e6)
        joules = seconds * self.power_mw / 1e3
        return InferenceResult(
            probabilities=probabilities,
            predictions=predictions,
            n_images=x.shape[0],
            n_samples=n_samples,
            cycles=cycles,
            seconds=seconds,
            images_per_second=x.shape[0] / seconds,
            joules=joules,
            images_per_joule=x.shape[0] / joules if joules > 0 else math.inf,
        )

    def images_per_second(self, n_samples: int = 1) -> float:
        """Steady-state throughput (Table 5's metric)."""
        return self.schedule.images_per_second(n_samples)

    def images_per_joule(self, n_samples: int = 1) -> float:
        """Energy efficiency (Table 5's metric)."""
        return self.images_per_second(n_samples) / (self.power_mw / 1e3)


class DetailedDatapathSimulator:
    """Word-level simulation of layers on the PE array (Fig. 13).

    Drives packed IFMem words through PE-sets against distributed WPMems,
    enforcing every memory's two-port budget.  Sampled weights are
    supplied explicitly so results can be compared bit for bit with the
    vectorised datapath.

    Two execution granularities share the datapath definition:

    * :meth:`run_layer` / :meth:`run_network` — the word-by-word,
      per-image reference: every cycle is one Python iteration driving
      :class:`~repro.hw.pe.PeSet` objects and scalar pack/unpack.
    * :meth:`run_layer_batch` / :meth:`run_network_batch` — array-level
      lockstep kernels: all (passes × images × sets × S PEs) of a group
      run as one stacked contraction
      (:func:`~repro.hw.pe.stacked_accumulate`), words move through the
      memories in blocks that preserve the two-port budget and aggregate
      cycle accounting, and packing is vectorised.  Bit-identical to the
      per-image loop — the functional-equivalence proof of §5 at
      real-digits-scale image counts.
    """

    def __init__(self, config: ArchitectureConfig) -> None:
        self.config = config
        self.weight_fmt = config.weight_format
        self.act_fmt = config.activation_format
        self.pe_sets = [
            PeSet(config.pes_per_set, config.pe_inputs, self.weight_fmt, self.act_fmt)
            for _ in range(config.pe_sets)
        ]
        self.cycles = 0

    def run_layer(
        self,
        feature_codes: np.ndarray,
        weight_codes: np.ndarray,
        bias_codes: np.ndarray,
        *,
        apply_relu: bool,
    ) -> np.ndarray:
        """Compute one layer's activations for one image.

        ``feature_codes``: ``(in,)`` activation-format codes;
        ``weight_codes``: ``(in, out)`` weight-format codes;
        ``bias_codes``: ``(out,)`` codes at the accumulator precision
        (``frac_w + frac_a`` fractional bits), as produced by the
        quantized network's weight updater.  Returns ``(out,)``
        activation codes.
        """
        config = self.config
        in_features = feature_codes.shape[0]
        out_features = bias_codes.shape[0]
        if weight_codes.shape != (in_features, out_features):
            raise ConfigurationError(
                f"weight shape {weight_codes.shape} does not match "
                f"({in_features}, {out_features})"
            )
        n = config.pe_inputs
        m = config.total_pes
        iterations = math.ceil(in_features / n)
        groups = math.ceil(out_features / m)
        # Note: the write-back *throughput* constraint (T <= ceil(In/N)) is
        # checked by schedule_network; functionally this simulator serialises
        # the distributor writes, so any shape computes correctly here.
        # IFMem preload: one packed word per iteration chunk.
        ifmem = DoubleBufferedMemory(
            depth=max(iterations, groups * config.pe_sets),
            width_bits=config.ifmem_word_bits,
        )
        padded_in = iterations * n
        padded_features = np.zeros(padded_in, dtype=np.int64)
        padded_features[:in_features] = feature_codes
        words = [
            pack_word(padded_features[a * n : (a + 1) * n], config.bit_length)
            for a in range(iterations)
        ]
        ifmem.read_buffer.load(np.array(words, dtype=object))
        # WPMem preload: per set, per group, per iteration one packed word of
        # S * N weight codes (pre-sampled — the weight generator output).
        wpmem = WeightParameterMemory(
            pe_sets=config.pe_sets,
            depth=max(1, groups * iterations),
            word_bits=config.wpmem_word_bits,
        )
        padded_weights = np.zeros((padded_in, groups * m), dtype=np.int64)
        padded_weights[:in_features, :out_features] = weight_codes
        for set_index in range(config.pe_sets):
            set_words = []
            for group in range(groups):
                neuron_base = group * m + set_index * config.pes_per_set
                for iteration in range(iterations):
                    block = padded_weights[
                        iteration * n : (iteration + 1) * n,
                        neuron_base : neuron_base + config.pes_per_set,
                    ]
                    # Word layout: S PEs x N inputs, PE-major.
                    set_words.append(
                        pack_word(block.T.reshape(-1), config.bit_length)
                    )
            wpmem.load_set(set_index, set_words)
        padded_bias = np.zeros(groups * m, dtype=np.int64)
        padded_bias[:out_features] = bias_codes
        # ------------------------------------------------------------------
        outputs = np.zeros(groups * m, dtype=np.int64)
        for group in range(groups):
            for pe_set in self.pe_sets:
                pe_set.reset()
            for iteration in range(iterations):
                word = ifmem.read_buffer.read(iteration)
                features = unpack_word(word, config.bit_length, n)
                for set_index, pe_set in enumerate(self.pe_sets):
                    packed = wpmem.read_set_word(
                        set_index, group * iterations + iteration
                    )
                    weights = unpack_word(
                        packed, config.bit_length, config.pes_per_set * n
                    ).reshape(config.pes_per_set, n)
                    pe_set.accumulate(weights, features)
                ifmem.tick()
                wpmem.tick()
                self.cycles += 1
            for set_index, pe_set in enumerate(self.pe_sets):
                neuron_base = group * m + set_index * config.pes_per_set
                biases = padded_bias[
                    neuron_base : neuron_base + config.pes_per_set
                ]
                activations = pe_set.finish(biases, apply_relu=apply_relu)
                outputs[neuron_base : neuron_base + config.pes_per_set] = activations
                # Memory distributor: one packed word per set to the write
                # buffer (one write port per cycle).
                ifmem.write_buffer.write(
                    group * config.pe_sets + set_index,
                    pack_word(activations, config.bit_length),
                )
                ifmem.tick()
                wpmem.tick()
                self.cycles += 1
        return outputs[:out_features]

    def run_network(
        self,
        feature_codes: np.ndarray,
        sampled_layers: list[tuple[np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """Run all layers for one image given pre-sampled weight codes.

        ``sampled_layers`` is a list of ``(weight_codes, bias_codes)``; ReLU
        applies to every layer except the last (§5.1's PE activation).
        """
        if not sampled_layers:
            raise ConfigurationError("no layers supplied")
        hidden = np.asarray(feature_codes, dtype=np.int64)
        last = len(sampled_layers) - 1
        for index, (weights, biases) in enumerate(sampled_layers):
            hidden = self.run_layer(
                hidden, weights, biases, apply_relu=(index != last)
            )
        return hidden

    # ------------------------------------------------------------------
    # Batched (array-level lockstep) path
    # ------------------------------------------------------------------
    def run_layer_batch(
        self,
        feature_codes: np.ndarray,
        weight_codes: np.ndarray,
        bias_codes: np.ndarray,
        *,
        apply_relu: bool,
    ) -> np.ndarray:
        """One layer for a whole (passes × images) run batch.

        ``feature_codes``: ``(batch, in)`` activation codes shared across
        passes (the input layer) or ``(passes, batch, in)`` per-pass codes
        (hidden layers); ``weight_codes``: ``(passes, in, out)``;
        ``bias_codes``: ``(passes, out)`` at accumulator precision.
        Returns ``(passes, batch, out)`` activation codes, with element
        ``[p, b]`` bit-identical to
        ``run_layer(features[b], weights[p], biases[p])``.

        The memory models are driven per run at block granularity
        (:meth:`~repro.hw.memory.DualPortRam.read_block`), so every
        RAM's aggregate ``cycles``/``total_reads``/port-conflict
        behaviour — and this simulator's :attr:`cycles` — is identical to
        running the per-image loop over the batch; the arithmetic runs as
        one stacked contraction over the words actually read back.
        """
        config = self.config
        weight_codes = np.asarray(weight_codes, dtype=np.int64)
        bias_codes = np.asarray(bias_codes, dtype=np.int64)
        feature_codes = np.asarray(feature_codes, dtype=np.int64)
        if weight_codes.ndim != 3:
            raise ConfigurationError(
                f"weight_codes must be (passes, in, out), got {weight_codes.shape}"
            )
        passes, in_features, out_features = weight_codes.shape
        if bias_codes.shape != (passes, out_features):
            raise ConfigurationError(
                f"bias shape {bias_codes.shape} does not match "
                f"({passes}, {out_features})"
            )
        shared = feature_codes.ndim == 2
        if feature_codes.ndim not in (2, 3) or feature_codes.shape[-1] != in_features or (
            not shared and feature_codes.shape[0] != passes
        ):
            raise ConfigurationError(
                f"feature shape {feature_codes.shape} does not match "
                f"{passes} passes of {in_features} features"
            )
        batch = feature_codes.shape[-2]
        bits = config.bit_length
        n = config.pe_inputs
        s = config.pes_per_set
        t_sets = config.pe_sets
        m = config.total_pes
        iterations = math.ceil(in_features / n)
        groups = math.ceil(out_features / m)
        padded_in = iterations * n
        # ---- vectorised packing of every word the memories will serve.
        flat_features = feature_codes.reshape(-1, in_features)
        padded_features = np.zeros((flat_features.shape[0], padded_in), dtype=np.int64)
        padded_features[:, :in_features] = flat_features
        feature_words = pack_words(padded_features.reshape(-1, n), bits).reshape(
            flat_features.shape[0], iterations
        )
        padded_weights = np.zeros((passes, padded_in, groups * m), dtype=np.int64)
        padded_weights[:, :in_features, :out_features] = weight_codes
        # Word layout per set: S PEs x N inputs, PE-major (run_layer's
        # block.T.reshape(-1)) at address group * iterations + iteration.
        fields = padded_weights.reshape(
            passes, iterations, n, groups, t_sets, s
        ).transpose(0, 4, 3, 1, 5, 2)
        weight_words = pack_words(fields.reshape(-1, s * n), bits).reshape(
            passes, t_sets, groups * iterations
        )
        padded_bias = np.zeros((passes, groups * m), dtype=np.int64)
        padded_bias[:, :out_features] = bias_codes
        # ---- drive the memories run by run at block granularity.  One
        # memory instance serves the whole batch; its totals equal the sum
        # over the per-image loop's fresh-per-run instances.
        ifmem = DoubleBufferedMemory(
            depth=max(iterations, groups * t_sets),
            width_bits=config.ifmem_word_bits,
        )
        wpmem = WeightParameterMemory(
            pe_sets=t_sets,
            depth=max(1, groups * iterations),
            word_bits=config.wpmem_word_bits,
        )
        read_addresses = np.arange(iterations, dtype=np.int64)
        got_features = np.empty_like(feature_words)
        got_weights = np.empty_like(weight_words)
        for p in range(passes):
            for t in range(t_sets):
                wpmem.load_set(t, weight_words[p, t])
            for b in range(batch):
                row = b if shared else p * batch + b
                ifmem.read_buffer.load(feature_words[row])
                for g in range(groups):
                    words = ifmem.read_block(read_addresses)
                    if g == 0 and (p == 0 or not shared):
                        got_features[row] = words
                    set_words = wpmem.read_set_blocks(
                        g * iterations + read_addresses
                    )
                    if b == 0:
                        got_weights[
                            p, :, g * iterations : (g + 1) * iterations
                        ] = set_words
        # ---- unpack the words read back and run the stacked MAC/finish.
        f_codes = unpack_words(got_features.reshape(-1), bits, n).reshape(
            flat_features.shape[0], padded_in
        )
        w_fields = unpack_words(got_weights.reshape(-1), bits, s * n)
        w_full = w_fields.reshape(
            passes, t_sets, groups, iterations, s, n
        ).transpose(0, 3, 5, 2, 1, 4).reshape(passes, padded_in, groups * m)
        f_shaped = f_codes if shared else f_codes.reshape(passes, batch, padded_in)
        acc = stacked_accumulate(f_shaped, w_full, bits)
        acc_frac = self.weight_fmt.frac_bits + self.act_fmt.frac_bits
        outputs = stacked_finish(
            acc,
            padded_bias[:, None, :],
            acc_frac,
            self.act_fmt,
            apply_relu=apply_relu,
        )
        # ---- memory-distributor drain: one packed word per (group, set).
        out_words = pack_words(outputs.reshape(-1, s), bits).reshape(
            passes, batch, groups * t_sets
        )
        write_addresses = np.arange(groups * t_sets, dtype=np.int64)
        for p in range(passes):
            for b in range(batch):
                ifmem.write_block(write_addresses, out_words[p, b])
                wpmem.advance(groups * t_sets)
        self.cycles += passes * batch * groups * (iterations + t_sets)
        return outputs[:, :, :out_features]

    def run_network_batch(
        self,
        network: QuantizedBayesianNetwork,
        feature_codes: np.ndarray,
        n_samples: int,
    ) -> np.ndarray:
        """Push a whole image batch × MC passes through the detailed model.

        ``network`` supplies the sampled weights through the code-block
        seam (:meth:`~repro.bnn.quantized.QuantizedBayesianNetwork.sample_weight_stacks`
        draws one epsilon block for all passes); ``feature_codes`` is the
        ``(batch, in)`` activation-code image batch.  Returns logits
        codes of shape ``(n_samples, batch, out)``, bit-identical both to
        the per-image :meth:`run_network` loop over the same weight
        stacks and to ``network.forward_stacked_codes`` on an identically
        seeded network — the §5-computes-eq.(6) equivalence at scale.
        """
        if network.bit_length != self.config.bit_length:
            raise ConfigurationError(
                f"network bit_length {network.bit_length} does not match "
                f"config bit_length {self.config.bit_length}"
            )
        feature_codes = np.asarray(feature_codes, dtype=np.int64)
        if feature_codes.ndim != 2 or feature_codes.shape[1] != network.layer_sizes[0]:
            raise ConfigurationError(
                f"expected codes of shape (batch, {network.layer_sizes[0]}), "
                f"got {feature_codes.shape}"
            )
        _prof = _profile.ACTIVE
        _t0 = time.perf_counter() if _prof is not None else 0.0
        sampled = network.sample_weight_stacks(n_samples)
        hidden = feature_codes
        last = len(sampled) - 1
        for index, (weights, biases) in enumerate(sampled):
            hidden = self.run_layer_batch(
                hidden, weights, biases, apply_relu=(index != last)
            )
        if _prof is not None:
            _prof.record(
                "hw.run_network_batch",
                time.perf_counter() - _t0,
                ops=feature_codes.shape[0],
            )
        return hidden
