"""The assembled VIBNN accelerator (Fig. 2).

Two simulation fidelities, sharing one datapath definition:

* **Vectorised functional path** — a
  :class:`~repro.bnn.quantized.QuantizedBayesianNetwork` built from the
  configuration's fixed-point format and GRNG, plus the cycle/resource
  models.  This is what the throughput/accuracy experiments run.
* **Detailed datapath path** (:class:`DetailedDatapathSimulator`) — drives
  the actual :class:`~repro.hw.pe.PeSet`, packed
  :class:`~repro.hw.memory.DualPortRam` IFMem/WPMem models word by word,
  checking the two-port budgets every cycle.  The tests assert it produces
  bit-identical activations to the vectorised path given the same sampled
  weights — the functional-equivalence proof that the architecture of §5
  really computes eq. (6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bnn.quantized import QuantizedBayesianNetwork
from repro.errors import ConfigurationError
from repro.grng.base import Grng
from repro.grng.bnnwallace import BnnWallaceGrng
from repro.grng.rlf import ParallelRlfGrng
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import NetworkSchedule, schedule_network
from repro.hw.memory import DoubleBufferedMemory, WeightParameterMemory
from repro.hw.packing import pack_word, unpack_word
from repro.hw.pe import PeSet
from repro.hw.resources import full_design_resources, system_clock_mhz, system_power_mw
from repro.utils.validation import check_positive


def default_grng(config: ArchitectureConfig, seed: int = 0) -> Grng:
    """The GRNG a design point instantiates (one lane per weight lane)."""
    lanes = config.weights_per_cycle
    if config.grng_kind == "rlf":
        return ParallelRlfGrng(lanes=lanes, seed=seed)
    return BnnWallaceGrng(units=max(1, lanes // 4), pool_size=256, seed=seed)


@dataclass(frozen=True)
class InferenceResult:
    """Output of an accelerator inference run with performance accounting."""

    probabilities: np.ndarray
    predictions: np.ndarray
    n_images: int
    n_samples: int
    cycles: int
    seconds: float
    images_per_second: float
    joules: float
    images_per_joule: float


class VibnnAccelerator:
    """Cycle/energy-accounted fixed-point BNN inference engine.

    Parameters
    ----------
    config:
        The design point; ``ArchitectureConfig.paper()`` reproduces §6.4.
    posterior:
        Trained ``(mu, sigma)`` parameters from
        :meth:`repro.bnn.bayesian.BayesianNetwork.posterior_parameters`.
    seed:
        Seeds the on-chip GRNG.
    grng:
        Optional explicit epsilon source (overrides ``config.grng_kind``).
    """

    def __init__(
        self,
        config: ArchitectureConfig,
        posterior: list[dict[str, np.ndarray]],
        seed: int = 0,
        grng: Grng | None = None,
    ) -> None:
        self.config = config
        self.grng = grng if grng is not None else default_grng(config, seed)
        self.network = QuantizedBayesianNetwork(
            posterior, bit_length=config.bit_length, grng=self.grng, seed=seed
        )
        self.schedule: NetworkSchedule = schedule_network(
            config, self.network.layer_sizes
        )
        self.clock_mhz = system_clock_mhz(config)
        self.power_mw = system_power_mw(config)

    # ------------------------------------------------------------------
    @property
    def layer_sizes(self) -> tuple[int, ...]:
        return self.network.layer_sizes

    def resource_report(self):
        """Table-4 style resource summary for this design point."""
        return full_design_resources(self.config, self.layer_sizes)

    def infer(self, x: np.ndarray, n_samples: int = 1) -> InferenceResult:
        """Run MC inference and account cycles, time and energy.

        Routes through the functional model's stacked fixed-point path
        (:meth:`~repro.bnn.quantized.QuantizedBayesianNetwork.predict_proba`):
        all ``n_samples`` passes run as one int64 tensor computation fed
        by a single epsilon block drawn through the code-block seam.  The
        cycle/energy accounting is unchanged — it models the hardware,
        not the host's execution strategy.
        """
        check_positive("n_samples", n_samples)
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ConfigurationError(f"x must be 2-D (batch, features), got {x.shape}")
        probabilities = self.network.predict_proba(x, n_samples=n_samples)
        predictions = probabilities.argmax(axis=1)
        cycles = self.schedule.cycles_per_image(n_samples) * x.shape[0]
        seconds = cycles / (self.clock_mhz * 1e6)
        joules = seconds * self.power_mw / 1e3
        return InferenceResult(
            probabilities=probabilities,
            predictions=predictions,
            n_images=x.shape[0],
            n_samples=n_samples,
            cycles=cycles,
            seconds=seconds,
            images_per_second=x.shape[0] / seconds,
            joules=joules,
            images_per_joule=x.shape[0] / joules if joules > 0 else math.inf,
        )

    def images_per_second(self, n_samples: int = 1) -> float:
        """Steady-state throughput (Table 5's metric)."""
        return self.schedule.images_per_second(n_samples)

    def images_per_joule(self, n_samples: int = 1) -> float:
        """Energy efficiency (Table 5's metric)."""
        return self.images_per_second(n_samples) / (self.power_mw / 1e3)


class DetailedDatapathSimulator:
    """Word-by-word simulation of one layer on the PE array (Fig. 13).

    Drives packed IFMem words through PE-sets against distributed WPMems,
    enforcing every memory's two-port budget.  Used by tests and the
    pipeline example; sampled weights are supplied explicitly so results
    can be compared bit for bit with the vectorised datapath.
    """

    def __init__(self, config: ArchitectureConfig) -> None:
        self.config = config
        self.weight_fmt = config.weight_format
        self.act_fmt = config.activation_format
        self.pe_sets = [
            PeSet(config.pes_per_set, config.pe_inputs, self.weight_fmt, self.act_fmt)
            for _ in range(config.pe_sets)
        ]
        self.cycles = 0

    def run_layer(
        self,
        feature_codes: np.ndarray,
        weight_codes: np.ndarray,
        bias_codes: np.ndarray,
        *,
        apply_relu: bool,
    ) -> np.ndarray:
        """Compute one layer's activations for one image.

        ``feature_codes``: ``(in,)`` activation-format codes;
        ``weight_codes``: ``(in, out)`` weight-format codes;
        ``bias_codes``: ``(out,)`` codes at the accumulator precision
        (``frac_w + frac_a`` fractional bits), as produced by the
        quantized network's weight updater.  Returns ``(out,)``
        activation codes.
        """
        config = self.config
        in_features = feature_codes.shape[0]
        out_features = bias_codes.shape[0]
        if weight_codes.shape != (in_features, out_features):
            raise ConfigurationError(
                f"weight shape {weight_codes.shape} does not match "
                f"({in_features}, {out_features})"
            )
        n = config.pe_inputs
        m = config.total_pes
        iterations = math.ceil(in_features / n)
        groups = math.ceil(out_features / m)
        # Note: the write-back *throughput* constraint (T <= ceil(In/N)) is
        # checked by schedule_network; functionally this simulator serialises
        # the distributor writes, so any shape computes correctly here.
        # IFMem preload: one packed word per iteration chunk.
        ifmem = DoubleBufferedMemory(
            depth=max(iterations, groups * config.pe_sets),
            width_bits=config.ifmem_word_bits,
        )
        padded_in = iterations * n
        padded_features = np.zeros(padded_in, dtype=np.int64)
        padded_features[:in_features] = feature_codes
        words = [
            pack_word(padded_features[a * n : (a + 1) * n], config.bit_length)
            for a in range(iterations)
        ]
        ifmem.read_buffer.load(np.array(words, dtype=object))
        # WPMem preload: per set, per group, per iteration one packed word of
        # S * N weight codes (pre-sampled — the weight generator output).
        wpmem = WeightParameterMemory(
            pe_sets=config.pe_sets,
            depth=max(1, groups * iterations),
            word_bits=config.wpmem_word_bits,
        )
        padded_weights = np.zeros((padded_in, groups * m), dtype=np.int64)
        padded_weights[:in_features, :out_features] = weight_codes
        for set_index in range(config.pe_sets):
            set_words = []
            for group in range(groups):
                neuron_base = group * m + set_index * config.pes_per_set
                for iteration in range(iterations):
                    block = padded_weights[
                        iteration * n : (iteration + 1) * n,
                        neuron_base : neuron_base + config.pes_per_set,
                    ]
                    # Word layout: S PEs x N inputs, PE-major.
                    set_words.append(
                        pack_word(block.T.reshape(-1), config.bit_length)
                    )
            wpmem.load_set(set_index, set_words)
        padded_bias = np.zeros(groups * m, dtype=np.int64)
        padded_bias[:out_features] = bias_codes
        # ------------------------------------------------------------------
        outputs = np.zeros(groups * m, dtype=np.int64)
        for group in range(groups):
            for pe_set in self.pe_sets:
                pe_set.reset()
            for iteration in range(iterations):
                word = ifmem.read_buffer.read(iteration)
                features = unpack_word(word, config.bit_length, n)
                for set_index, pe_set in enumerate(self.pe_sets):
                    packed = wpmem.read_set_word(
                        set_index, group * iterations + iteration
                    )
                    weights = unpack_word(
                        packed, config.bit_length, config.pes_per_set * n
                    ).reshape(config.pes_per_set, n)
                    pe_set.accumulate(weights, features)
                ifmem.tick()
                wpmem.tick()
                self.cycles += 1
            for set_index, pe_set in enumerate(self.pe_sets):
                neuron_base = group * m + set_index * config.pes_per_set
                biases = padded_bias[
                    neuron_base : neuron_base + config.pes_per_set
                ]
                activations = pe_set.finish(biases, apply_relu=apply_relu)
                outputs[neuron_base : neuron_base + config.pes_per_set] = activations
                # Memory distributor: one packed word per set to the write
                # buffer (one write port per cycle).
                ifmem.write_buffer.write(
                    group * config.pe_sets + set_index,
                    pack_word(activations, config.bit_length),
                )
                ifmem.tick()
                wpmem.tick()
                self.cycles += 1
        return outputs[:out_features]

    def run_network(
        self,
        feature_codes: np.ndarray,
        sampled_layers: list[tuple[np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """Run all layers for one image given pre-sampled weight codes.

        ``sampled_layers`` is a list of ``(weight_codes, bias_codes)``; ReLU
        applies to every layer except the last (§5.1's PE activation).
        """
        if not sampled_layers:
            raise ConfigurationError("no layers supplied")
        hidden = np.asarray(feature_codes, dtype=np.int64)
        last = len(sampled_layers) - 1
        for index, (weights, biases) in enumerate(sampled_layers):
            hidden = self.run_layer(
                hidden, weights, biases, apply_relu=(index != last)
            )
        return hidden
