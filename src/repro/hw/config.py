"""Architecture configuration and the joint PE/memory constraints (§5.4).

The design is parameterised by the paper's four knobs:

* ``T``  — number of PE-sets,
* ``S``  — PEs per set (eq. 14c/15c requires ``S == N``),
* ``N``  — inputs per PE,
* ``B``  — operand bit-length,

with ``M = T * S`` total PEs (eq. 14d/15d).  Memory feasibility:

* IFMem word width ``B * N <= MaxWS``              (eq. 14b)
* per-set WPMem word width ``B * N * S <= MaxWS``  (eq. 15b)

Write-back feasibility: all ``M`` PE outputs of a pass form ``T`` IFMem
words, which must drain through the single IFMem write port during the
``ceil(MinIn / N)`` cycles of the next accumulation pass, i.e.
``T <= ceil(MinIn / N)``.  (The paper prints this constraint as
``T x S < ceil(MinIn / N)`` in eqs. 14a/15a, which its own 16x8x8 design
point on the 784-200-200-10 network would violate — ``128 < 25`` is false —
so we implement the write-port form, which that design point satisfies:
``16 <= 25``.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat

#: Cyclone V 5CGTFD9E5F35C7 device limits used throughout (Table 2/4).
CYCLONE_V_ALMS = 113_560
CYCLONE_V_MEMORY_BITS = 12_492_800
CYCLONE_V_RAM_BLOCKS = 1_220
CYCLONE_V_DSPS = 342
M10K_BITS = 10_240

#: Default maximum on-chip memory word size in bits (§5.4's MaxWS).
DEFAULT_MAX_WORD_SIZE = 1_024


@dataclass(frozen=True)
class ArchitectureConfig:
    """One VIBNN design point.

    The paper's evaluated configuration is ``ArchitectureConfig.paper()``:
    16 PE-sets of eight 8-input PEs at 8-bit precision (§6.4).
    """

    pe_sets: int = 16                 # T
    pes_per_set: int = 8              # S
    pe_inputs: int = 8                # N
    bit_length: int = 8               # B
    max_word_size: int = DEFAULT_MAX_WORD_SIZE
    clock_mhz: float = 100.0
    grng_kind: str = "rlf"            # "rlf" or "bnnwallace"

    def __post_init__(self) -> None:
        if self.pe_sets < 1:
            raise ConfigurationError(f"pe_sets must be >= 1, got {self.pe_sets}")
        if self.pes_per_set < 1:
            raise ConfigurationError(
                f"pes_per_set must be >= 1, got {self.pes_per_set}"
            )
        if self.pes_per_set != self.pe_inputs:
            raise ConfigurationError(
                f"eq. (14c) requires S == N, got S={self.pes_per_set}, N={self.pe_inputs}"
            )
        if self.bit_length < 4 or self.bit_length > 32:
            raise ConfigurationError(
                f"bit_length must be in 4..32, got {self.bit_length}"
            )
        if self.grng_kind not in ("rlf", "bnnwallace"):
            raise ConfigurationError(
                f"grng_kind must be 'rlf' or 'bnnwallace', got {self.grng_kind!r}"
            )
        if self.clock_mhz <= 0:
            raise ConfigurationError(f"clock_mhz must be > 0, got {self.clock_mhz}")
        if self.ifmem_word_bits > self.max_word_size:
            raise ConfigurationError(
                f"eq. (14b) violated: B*N = {self.ifmem_word_bits} > MaxWS = {self.max_word_size}"
            )
        if self.wpmem_word_bits > self.max_word_size:
            raise ConfigurationError(
                f"eq. (15b) violated: B*N*S = {self.wpmem_word_bits} > MaxWS = {self.max_word_size}"
            )

    # ------------------------------------------------------------------
    @property
    def total_pes(self) -> int:
        """``M = T * S`` (eq. 14d)."""
        return self.pe_sets * self.pes_per_set

    @property
    def ifmem_word_bits(self) -> int:
        """IFMem word width ``B * N`` — one access feeds every PE."""
        return self.bit_length * self.pe_inputs

    @property
    def wpmem_word_bits(self) -> int:
        """Per-set WPMem word width ``B * N * S`` (§5.4.2)."""
        return self.bit_length * self.pe_inputs * self.pes_per_set

    @property
    def weights_per_cycle(self) -> int:
        """Gaussian samples the weight generator must supply per cycle."""
        return self.total_pes * self.pe_inputs

    @property
    def weight_format(self) -> QFormat:
        """Weight operand format ``Q0.(B-1)`` (see repro.bnn.quantized)."""
        from repro.bnn.quantized import weight_format

        return weight_format(self.bit_length)

    @property
    def activation_format(self) -> QFormat:
        """Activation operand format ``Q3.(B-4)``."""
        from repro.bnn.quantized import activation_format

        return activation_format(self.bit_length)

    # ------------------------------------------------------------------
    def writeback_feasible(self, min_layer_input: int) -> bool:
        """Write-port form of eqs. (14a)/(15a): ``T <= ceil(MinIn / N)``."""
        if min_layer_input < 1:
            raise ConfigurationError(
                f"min_layer_input must be >= 1, got {min_layer_input}"
            )
        return self.pe_sets <= math.ceil(min_layer_input / self.pe_inputs)

    @classmethod
    def paper(cls, grng_kind: str = "rlf") -> "ArchitectureConfig":
        """The evaluated §6.4 design point (16 sets x 8 PEs x 8 inputs, 8-bit)."""
        return cls(
            pe_sets=16,
            pes_per_set=8,
            pe_inputs=8,
            bit_length=8,
            grng_kind=grng_kind,
        )
