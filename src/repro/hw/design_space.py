"""Design-space exploration under the §5.4 joint constraints.

Enumerates design points ``(T, S=N, B)`` that satisfy the memory word-size
constraints (eqs. 14b/15b), the write-back constraint, and the device
resource budget, then ranks them by modelled throughput (and reports
energy efficiency).  This is the ablation the paper's §5.4 trade-off
discussion implies: computation parallelism and memory traffic are not
independent, so the best point is found jointly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.config import ArchitectureConfig
from repro.hw.controller import schedule_network
from repro.hw.resources import full_design_resources, system_power_mw


@dataclass(frozen=True)
class DesignPoint:
    """One feasible configuration with its modelled performance."""

    config: ArchitectureConfig
    images_per_second: float
    images_per_joule: float
    alm_utilization: float
    memory_utilization: float
    mac_utilization: float

    def describe(self) -> str:
        c = self.config
        return (
            f"T={c.pe_sets:3d} S=N={c.pe_inputs:2d} B={c.bit_length:2d} "
            f"{c.grng_kind:10s} {self.images_per_second:12.1f} img/s "
            f"{self.images_per_joule:10.1f} img/J "
            f"ALM {self.alm_utilization:5.1%} MEM {self.memory_utilization:5.1%}"
        )


def explore_design_space(
    layer_sizes: tuple[int, ...] = (784, 200, 200, 10),
    *,
    grng_kind: str = "rlf",
    bit_length: int = 8,
    max_word_size: int = 1_024,
    pe_input_options: tuple[int, ...] = (4, 8, 16),
    max_pe_sets: int = 64,
    require_device_fit: bool = True,
) -> list[DesignPoint]:
    """Enumerate feasible design points, best throughput first.

    A point is feasible when its configuration validates (word sizes), the
    write-back constraint holds for the target network, and — when
    ``require_device_fit`` — the modelled resources fit the Cyclone V.
    """
    if len(layer_sizes) < 2:
        raise ConfigurationError("need at least input and output sizes")
    points: list[DesignPoint] = []
    for n in pe_input_options:
        for t in range(1, max_pe_sets + 1):
            try:
                config = ArchitectureConfig(
                    pe_sets=t,
                    pes_per_set=n,
                    pe_inputs=n,
                    bit_length=bit_length,
                    max_word_size=max_word_size,
                    grng_kind=grng_kind,
                )
            except ConfigurationError:
                continue
            min_in = min(layer_sizes[:-1])
            if not config.writeback_feasible(min_in):
                continue
            report = full_design_resources(config, layer_sizes)
            if require_device_fit and not report.fits_device():
                continue
            schedule = schedule_network(config, layer_sizes)
            ips = schedule.images_per_second()
            power_w = system_power_mw(config) / 1e3
            mac_util = sum(
                layer.mac_utilization * layer.compute_cycles
                for layer in schedule.layers
            ) / sum(layer.compute_cycles for layer in schedule.layers)
            points.append(
                DesignPoint(
                    config=config,
                    images_per_second=ips,
                    images_per_joule=ips / power_w,
                    alm_utilization=report.alm_utilization,
                    memory_utilization=report.memory_utilization,
                    mac_utilization=mac_util,
                )
            )
    points.sort(key=lambda p: p.images_per_second, reverse=True)
    return points
