"""Packing of fixed-point codes into memory words.

IFMem words carry ``N`` B-bit activation codes; WPMem words carry
``N * S`` B-bit parameter codes.  Signed codes are stored offset-binary
(two's complement within the field), LSB-first fields — field ``i``
occupies bits ``[i*B, (i+1)*B)``.

Two granularities share one layout definition:

* :func:`pack_word` / :func:`unpack_word` — one word at a time, the
  bit-exact reference the detailed simulator's per-image path uses.
* :func:`pack_words` / :func:`unpack_words` — whole arrays of words at
  once.  Per-word Python-int shifting dominates the detailed datapath's
  profile (a WPMem word holds ``N * S`` fields, so the scalar functions
  pay ``N * S`` Python-level shifts per word); the vectorised forms
  expand fields to a bit matrix with NumPy and cross the NumPy/Python-int
  boundary exactly once per word (``int.from_bytes`` / ``int.to_bytes``).
"""

from __future__ import annotations

import operator

import numpy as np

from repro.errors import ConfigurationError

#: Field widths the vectorised pack/unpack accept.  The bit-matrix path
#: weights bit columns with ``1 << np.arange(bits)`` int64 powers and
#: sign-extends with a ``1 << bits`` subtraction, both of which need the
#: field (plus its sign) to fit an int64 lane.
MAX_VECTOR_FIELD_BITS = 62


def pack_word(codes: np.ndarray, bits: int) -> int:
    """Pack signed integer codes into one memory word."""
    codes = np.asarray(codes, dtype=np.int64)
    if bits < 2:
        raise ConfigurationError(f"bits must be >= 2, got {bits}")
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if codes.min() < low or codes.max() > high:
        raise ConfigurationError(
            f"codes outside signed {bits}-bit range [{low}, {high}]"
        )
    mask = (1 << bits) - 1
    word = 0
    for index, code in enumerate(codes):
        word |= (int(code) & mask) << (index * bits)
    return word


def unpack_word(word: int, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_word`: extract ``count`` signed codes."""
    if bits < 2:
        raise ConfigurationError(f"bits must be >= 2, got {bits}")
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if word < 0:
        raise ConfigurationError(f"word must be non-negative, got {word}")
    mask = (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    out = np.empty(count, dtype=np.int64)
    for index in range(count):
        field = (word >> (index * bits)) & mask
        out[index] = field - (1 << bits) if field & sign_bit else field
    return out


def _check_vector_bits(bits: int) -> None:
    if bits < 2:
        raise ConfigurationError(f"bits must be >= 2, got {bits}")
    if bits > MAX_VECTOR_FIELD_BITS:
        raise ConfigurationError(
            f"vectorised packing supports bits <= {MAX_VECTOR_FIELD_BITS}, got {bits}"
        )


def pack_words(codes: np.ndarray, bits: int) -> np.ndarray:
    """Vectorised :func:`pack_word` over rows of a ``(n_words, count)`` array.

    Returns an object array of ``n_words`` Python-int words, element ``i``
    identical to ``pack_word(codes[i], bits)``.  The field expansion runs
    as one NumPy bit-matrix pass; only the final byte-to-int conversion is
    per word.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim != 2:
        raise ConfigurationError(
            f"codes must be 2-D (n_words, count), got shape {codes.shape}"
        )
    _check_vector_bits(bits)
    n_words, count = codes.shape
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if n_words == 0:
        return np.empty(0, dtype=object)
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if codes.min() < low or codes.max() > high:
        raise ConfigurationError(
            f"codes outside signed {bits}-bit range [{low}, {high}]"
        )
    fields = (codes & ((1 << bits) - 1)).astype(np.uint64)
    bit_matrix = (
        (fields[:, :, None] >> np.arange(bits, dtype=np.uint64)) & 1
    ).astype(np.uint8)
    packed = np.packbits(
        bit_matrix.reshape(n_words, count * bits), axis=1, bitorder="little"
    )
    n_bytes = packed.shape[1]
    buffer = packed.tobytes()
    out = np.empty(n_words, dtype=object)
    for index in range(n_words):
        out[index] = int.from_bytes(
            buffer[index * n_bytes : (index + 1) * n_bytes], "little"
        )
    return out


def unpack_words(words: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Vectorised :func:`unpack_word`: ``(n_words,)`` words to ``(n_words, count)``.

    Row ``i`` is identical to ``unpack_word(words[i], bits, count)``.  The
    per-word cost is one mask and one ``int.to_bytes``; field extraction
    and sign extension run as NumPy passes over the whole block.
    """
    _check_vector_bits(bits)
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    words = np.asarray(words, dtype=object)
    if words.ndim != 1:
        raise ConfigurationError(
            f"words must be 1-D, got shape {words.shape}"
        )
    if words.shape[0] == 0:
        return np.empty((0, count), dtype=np.int64)
    total_bits = count * bits
    n_bytes = (total_bits + 7) // 8
    # Bits past the last field are ignored, exactly as unpack_word's
    # shift-and-mask loop never touches them.
    word_mask = (1 << total_bits) - 1
    try:
        if any(word < 0 for word in words):
            raise ConfigurationError(
                f"word must be non-negative, got {min(words)}"
            )
        # operator.index rejects floats and other non-integral types, the
        # same TypeError surface the scalar unpack_word's shifts have.
        buffer = b"".join(
            (operator.index(word) & word_mask).to_bytes(n_bytes, "little")
            for word in words
        )
    except TypeError:
        raise ConfigurationError("words must be integers") from None
    flat = np.frombuffer(buffer, dtype=np.uint8).reshape(words.shape[0], n_bytes)
    bit_matrix = np.unpackbits(flat, axis=1, bitorder="little")[:, :total_bits]
    weights = (np.int64(1) << np.arange(bits, dtype=np.int64))
    fields = (
        bit_matrix.reshape(words.shape[0], count, bits).astype(np.int64) @ weights
    )
    sign_bit = 1 << (bits - 1)
    return np.where(fields >= sign_bit, fields - (1 << bits), fields)
