"""Packing of fixed-point codes into memory words.

IFMem words carry ``N`` B-bit activation codes; WPMem words carry
``N * S`` B-bit parameter codes.  Signed codes are stored offset-binary
(two's complement within the field), LSB-first fields — field ``i``
occupies bits ``[i*B, (i+1)*B)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def pack_word(codes: np.ndarray, bits: int) -> int:
    """Pack signed integer codes into one memory word."""
    codes = np.asarray(codes, dtype=np.int64)
    if bits < 2:
        raise ConfigurationError(f"bits must be >= 2, got {bits}")
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if codes.min() < low or codes.max() > high:
        raise ConfigurationError(
            f"codes outside signed {bits}-bit range [{low}, {high}]"
        )
    mask = (1 << bits) - 1
    word = 0
    for index, code in enumerate(codes):
        word |= (int(code) & mask) << (index * bits)
    return word


def unpack_word(word: int, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_word`: extract ``count`` signed codes."""
    if bits < 2:
        raise ConfigurationError(f"bits must be >= 2, got {bits}")
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if word < 0:
        raise ConfigurationError(f"word must be non-negative, got {word}")
    mask = (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    out = np.empty(count, dtype=np.int64)
    for index in range(count):
        field = (word >> (index * bits)) & mask
        out[index] = field - (1 << bits) if field & sign_bit else field
    return out
