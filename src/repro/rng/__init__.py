"""Uniform pseudo-random substrate (system S2).

The GRNGs of :mod:`repro.grng` are built on linear-feedback shift registers.
This package models them at the bit level:

* :mod:`~repro.rng.taps` — maximal-length tap table (Ward & Molteno subset);
* :class:`~repro.rng.lfsr.FibonacciLfsr` — the textbook LFSR;
* :class:`~repro.rng.lfsr.ShiftHeadLfsr` — the paper's eq. (9) variant with a
  fixed head register and XOR injection at the taps, the structure the
  RAM-based RLF logic emulates;
* :class:`~repro.rng.parallel_counter.ParallelCounter` — popcount with the
  adder-tree hardware-cost model quoted in §4.1.1.
"""

from repro.rng.lfsr import FibonacciLfsr, ShiftHeadLfsr, lfsr_period
from repro.rng.parallel_counter import ParallelCounter
from repro.rng.taps import WARD_MOLTENO_TAPS, taps_for_width

__all__ = [
    "FibonacciLfsr",
    "ShiftHeadLfsr",
    "lfsr_period",
    "ParallelCounter",
    "WARD_MOLTENO_TAPS",
    "taps_for_width",
]
