"""Uniform random sources built on the LFSR substrate.

Provides :class:`LfsrUniformSource`, which packs LFSR output bits into
fixed-width words and rescales them to ``[0, 1)`` floats — the uniform
source a fully hardware-faithful Box–Muller or CDF-inversion design would
use.  The quality benches use it to show how LFSR word width affects
downstream Gaussian quality (the §2.3 remark that CLT-GRNG quality depends
on LFSR configuration).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng.lfsr import FibonacciLfsr
from repro.utils.seeding import derive_seed


class LfsrUniformSource:
    """Uniform variates assembled from LFSR bit streams.

    Parameters
    ----------
    lfsr_width:
        Register count of the underlying LFSR (tap table entry required).
    word_bits:
        Bits packed per uniform sample; resolution is ``2**-word_bits``.
    seed:
        Derives the non-zero initial LFSR state.
    """

    def __init__(self, lfsr_width: int = 32, word_bits: int = 16, seed: int = 0) -> None:
        if word_bits < 1 or word_bits > 53:
            raise ConfigurationError(f"word_bits must be in 1..53, got {word_bits}")
        state = derive_seed(seed, "lfsr-uniform") % ((1 << lfsr_width) - 1) + 1
        self._lfsr = FibonacciLfsr(width=lfsr_width, seed=state)
        self.word_bits = word_bits

    def next_word(self) -> int:
        """One ``word_bits``-wide integer from consecutive output bits."""
        return self._lfsr.step_word(self.word_bits)

    def generate(self, count: int) -> np.ndarray:
        """``count`` floats in ``[0, 1)``."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        scale = 1.0 / (1 << self.word_bits)
        return np.fromiter(
            (self.next_word() * scale for _ in range(count)),
            dtype=np.float64,
            count=count,
        )
