"""Maximal-length LFSR tap positions (XOR form).

Subset of the Ward & Molteno table ("Table of linear feedback shift
registers", ref. [55] of the paper), which lists tap sets producing
maximal-length sequences of period ``2**n - 1``.  The paper notes that the
number of taps is always 3 (i.e. 4 including the output stage) for 4-bit to
2048-bit LFSRs; the entries here use the standard published sets.

Tap convention: positions are 1-based from the output end, with ``n`` always
included; the feedback bit is the XOR of the listed register outputs and is
shifted into register 1.  Entry ``255: (255, 253, 252, 250)`` is the one the
RLF-GRNG of §4.1.2 is built from (injection offsets 250/252/253).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

WARD_MOLTENO_TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    28: (28, 25),
    31: (31, 28),
    32: (32, 22, 2, 1),
    63: (63, 62),
    64: (64, 63, 61, 60),
    96: (96, 94, 49, 47),
    127: (127, 126),
    128: (128, 126, 101, 99),
    255: (255, 253, 252, 250),
    256: (256, 254, 251, 246),
}


def taps_for_width(width: int) -> tuple[int, ...]:
    """Return the maximal-length tap set for an LFSR of ``width`` bits.

    Raises :class:`~repro.errors.ConfigurationError` for widths not in the
    table; callers that need an arbitrary width should pass explicit taps.
    """
    try:
        return WARD_MOLTENO_TAPS[width]
    except KeyError:
        raise ConfigurationError(
            f"no tap entry for width {width}; available: "
            f"{sorted(WARD_MOLTENO_TAPS)}"
        ) from None
