"""Linear-feedback shift register models.

Two structures are provided:

* :class:`FibonacciLfsr` — the textbook many-to-one LFSR: the feedback bit is
  the XOR of the tap register outputs and is shifted into the low end.
* :class:`ShiftHeadLfsr` — the structure of the paper's eq. (9) and Fig. 3(a):
  a fixed *head* register (register 1) whose value is XOR-injected into the
  registers at the tap locations while all contents shift down by one.  The
  RAM-based linear feedback (RLF) logic of §4.1.2 computes exactly this
  update without physically moving bits; :mod:`repro.grng.rlf` proves the
  equivalence in its tests.

Register indexing is 1-based to match the paper (register 1 is the head /
output end); internally bit ``i`` of the state integer holds register
``i + 1``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.rng.taps import taps_for_width
from repro.utils.bitops import popcount


def _check_seed(seed: int, width: int) -> int:
    if not 0 < seed < (1 << width):
        raise ConfigurationError(
            f"seed must be a non-zero {width}-bit value, got {seed}"
        )
    return seed


class FibonacciLfsr:
    """Classic Fibonacci (many-to-one) LFSR.

    Parameters
    ----------
    width:
        Number of registers.
    taps:
        1-based tap positions (must include ``width`` for a maximal-length
        configuration); defaults to the Ward–Molteno table entry.
    seed:
        Initial non-zero state.

    Examples
    --------
    >>> lfsr = FibonacciLfsr(width=8, seed=1)
    >>> bits = [lfsr.step() for _ in range(8)]
    >>> len(bits)
    8
    """

    def __init__(
        self, width: int, seed: int = 1, taps: Sequence[int] | None = None
    ) -> None:
        if width < 2:
            raise ConfigurationError(f"width must be >= 2, got {width}")
        self.width = width
        self.taps = tuple(taps) if taps is not None else taps_for_width(width)
        for tap in self.taps:
            if not 1 <= tap <= width:
                raise ConfigurationError(
                    f"tap {tap} outside register range 1..{width}"
                )
        self.state = _check_seed(seed, width)

    def step(self) -> int:
        """Advance one cycle; return the output bit (register ``width``).

        Registers shift toward the output end (``R_i <- R_{i-1}``) and the
        feedback bit — the XOR of the tap register outputs, which always
        include the leaving register — enters at register 1.  Including the
        output register in the feedback keeps the map invertible, so every
        non-zero state lies on a cycle.
        """
        out = (self.state >> (self.width - 1)) & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        mask = (1 << self.width) - 1
        self.state = ((self.state << 1) & mask) | feedback
        return out

    def step_word(self, bits: int) -> int:
        """Advance ``bits`` cycles and pack the output bits LSB-first."""
        word = 0
        for i in range(bits):
            word |= self.step() << i
        return word

    def popcount(self) -> int:
        """Number of ones currently in the register — the CLT-GRNG output."""
        return popcount(self.state)


class ShiftHeadLfsr:
    """The paper's eq. (9) LFSR: fixed head, shifting contents, XOR at taps.

    Update per cycle (1-based registers, head = register 1):

    * for each tap ``t``:        ``R(t) <- R(t+1) XOR R(1)``
    * for every other ``i < n``: ``R(i) <- R(i+1)``
    * wraparound:                ``R(n) <- R(1)``

    The 8-bit example of Fig. 3(a) uses ``inject_taps = (4, 5, 6)``; the
    255-bit RLF-GRNG uses ``(250, 252, 253)``.

    This is the reference model the RAM-based RLF logic must match bit for
    bit (see ``tests/test_grng_rlf.py``).
    """

    def __init__(self, width: int, inject_taps: Iterable[int], seed: int = 1) -> None:
        if width < 2:
            raise ConfigurationError(f"width must be >= 2, got {width}")
        self.width = width
        self.inject_taps = tuple(sorted(inject_taps))
        for tap in self.inject_taps:
            if not 1 <= tap < width:
                raise ConfigurationError(
                    f"inject tap {tap} must be in 1..{width - 1}"
                )
        self.state = _check_seed(seed, width)

    def _bit(self, register: int) -> int:
        return (self.state >> (register - 1)) & 1

    def step(self) -> int:
        """Advance one cycle; return the head bit consumed this cycle."""
        head = self._bit(1)
        next_state = 0
        for register in range(1, self.width):
            bit = self._bit(register + 1)
            if register in self.inject_taps:
                bit ^= head
            next_state |= bit << (register - 1)
        next_state |= head << (self.width - 1)
        self.state = next_state
        return head

    def popcount(self) -> int:
        """Number of ones in the register (the binomial-method sample)."""
        return popcount(self.state)


def lfsr_period(width: int, taps: Sequence[int] | None = None, *, limit: int | None = None) -> int:
    """Brute-force the period of a :class:`FibonacciLfsr` configuration.

    Only practical for small widths; ``limit`` (default ``2**width``) bounds
    the search.  Returns the cycle length starting from seed 1.
    """
    lfsr = FibonacciLfsr(width=width, seed=1, taps=taps)
    initial = lfsr.state
    bound = limit if limit is not None else (1 << width)
    for count in range(1, bound + 1):
        lfsr.step()
        if lfsr.state == initial:
            return count
    raise ConfigurationError(
        f"period of width-{width} LFSR exceeds search limit {bound}"
    )
