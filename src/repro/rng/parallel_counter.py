"""Parallel counter (popcount tree) with the paper's hardware-cost model.

§4.1.1 motivates the RLF design by the cost of a wide parallel counter:
"a 127-input PC requires 120 full adders".  The classic result is that a
``w``-input parallel counter built from full adders needs

    ``full_adders = w - ceil(log2(w + 1))``

(127 - 7 = 120, matching the paper).  The RLF-GRNG only ever feeds the
*taps* (7 bits) into its PC, which is why its counter is tiny.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ParallelCounter:
    """A ``width``-input population counter.

    >>> ParallelCounter(127).full_adders
    120
    >>> ParallelCounter(7).count([1, 0, 1, 1, 0, 0, 1])
    4
    """

    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigurationError(f"width must be >= 1, got {self.width}")

    @property
    def output_bits(self) -> int:
        """Bits needed to express counts 0..width."""
        return math.ceil(math.log2(self.width + 1))

    @property
    def full_adders(self) -> int:
        """Full-adder count of the adder-tree realisation (§4.1.1)."""
        return self.width - self.output_bits

    @property
    def tree_depth(self) -> int:
        """Carry-save tree depth — grows with log of the input width."""
        return max(1, math.ceil(math.log2(max(self.width, 2))))

    def count(self, bits) -> int:
        """Functional popcount of an iterable/array of 0-1 values."""
        arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        if arr.size != self.width:
            raise ConfigurationError(
                f"expected {self.width} input bits, got {arr.size}"
            )
        if np.any((arr != 0) & (arr != 1)):
            raise ConfigurationError("parallel counter inputs must be 0/1")
        return int(arr.sum())
