"""VIBNN reproduction: hardware acceleration of Bayesian neural networks.

Full Python reproduction of *VIBNN: Hardware Acceleration of Bayesian
Neural Networks* (Cai, Ren, et al., ASPLOS 2018): the RLF and BNNWallace
Gaussian random number generators, the Bayes-by-Backprop BNN stack, the
fixed-point datapath, and a cycle/resource/power model of the FPGA
accelerator, plus an experiment registry regenerating every table and
figure of the paper's evaluation.

Subpackages
-----------
``repro.fixedpoint``  Q-format fixed-point arithmetic (S1)
``repro.rng``         LFSR / parallel-counter substrate (S2)
``repro.grng``        Gaussian RNGs: RLF, BNNWallace, baselines (S3-S9)
``repro.bnn``         NumPy FNN/BNN training and inference (S10-S13)
``repro.serving``     micro-batching inference service (registry,
                      batcher, workers, cache, metrics, load generator)
``repro.datasets``    synthetic digit / tabular datasets (S14)
``repro.hw``          accelerator simulator + resource models (S15-S21)
``repro.experiments`` one module per paper table/figure (S22)

See ``README.md`` for the quickstart and ``docs/ARCHITECTURE.md`` /
``docs/GRNG.md`` / ``docs/SERVING.md`` for the system data flow, the
block-sampling seam, per-generator algorithm notes with measured
quality, and the serving architecture with tuning knobs.
"""

__version__ = "1.0.0"
