"""Command-line interface for the reproduction.

Usage::

    python -m repro.cli list
    python -m repro.cli run table1 [--out results/]
    python -m repro.cli run-all [--out results/] [--jobs 4] [--cache-dir cache/]
    python -m repro.cli grng rlf --samples 10000 --seed 7
    python -m repro.cli design-space --grng rlf
    python -m repro.cli serve-demo --requests 256 --workers 2
    python -m repro.cli loadtest --pattern open --rate 200 --duration 3

``run`` executes one registered experiment (a paper table/figure) and
prints/saves the rendered table; ``run-all`` runs every experiment —
optionally across ``--jobs`` worker processes and sharing a
trained-posterior artifact cache via ``--cache-dir`` — continuing past
failures and exiting non-zero with a failure summary;
``grng`` draws samples from a registered generator and prints its quality
metrics (reproducible via ``--seed``); ``design-space`` runs the §5.4
explorer; ``serve-demo`` trains a small BNN, round-trips it through the
posterior file format, and serves a demo workload through the
micro-batching service; ``loadtest`` drives the service with an open- or
closed-loop arrival pattern and reports throughput/latency.

Both serving verbs take the observability flags (``--trace-out`` for
request spans, ``--metrics-json`` / ``--metrics-prom`` for the unified
registry, ``--profile`` for the kernel rollup, ``--samples-out`` for raw
client samples); ``obs-report`` renders a saved span file as the
per-phase latency-breakdown table (see ``docs/OBSERVABILITY.md``).

``lint`` runs **reprolint**, the AST-based invariant linter
(``docs/ANALYSIS.md``): seed discipline, kernel-pair coverage, the GRNG
count contract, typed errors, and serving/obs lock discipline — exiting
non-zero on any finding that is neither suppressed inline nor
grandfathered in the committed ``analysis-baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

import numpy as np

from repro.analysis import Baseline, default_root, lint_project
from repro.bnn.adaptive import AdaptiveConfig
from repro.bnn.bayesian import BayesianNetwork
from repro.bnn.serialization import save_posterior
from repro.bnn.trainer import Trainer
from repro.datasets import load_digits_split
from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments.runner import run_experiments
from repro.grng import VARIANCE_REDUCTIONS, available_grngs, make_grng
from repro.grng.quality import runs_test, stability_error
from repro.hw.design_space import explore_design_space
from repro.obs import (
    disable_profiling,
    enable_profiling,
    load_spans,
    render_phase_report,
    render_prometheus,
    write_metrics_json,
)
from repro.serving import (
    SLO_CLASSES,
    BnnService,
    ResilienceConfig,
    ServiceConfig,
    run_closed_loop,
    run_open_loop,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<8} {doc}")
    print("\ngenerators:")
    for name in available_grngs():
        print(f"  {name}")
    return 0


def _run_one(name: str, out_dir: pathlib.Path | None) -> None:
    experiment = get_experiment(name)
    rendered = experiment.render(experiment.run())
    print(rendered)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(rendered)


def _cmd_run(args: argparse.Namespace) -> int:
    _run_one(args.experiment, args.out)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    """Run every experiment (or ``--only`` a subset); failures don't stop the rest.

    ``--jobs N`` fans the experiments out over a process pool — results
    are identical to the sequential run because every experiment seeds
    itself.  ``--cache-dir`` shares a trained-posterior artifact cache
    across experiments (and across workers), so configurations that train
    the same network train it once.  Exit status is non-zero when
    anything failed, with a per-experiment summary at the end — a long
    batch run reports *all* the broken experiments instead of dying on
    the first one.
    """
    names = sorted(EXPERIMENTS) if not args.only else list(args.only)
    cache_dir = str(args.cache_dir) if args.cache_dir is not None else None

    def report(outcome) -> None:
        print(f"### {outcome.name}")
        if outcome.failed:
            print(outcome.error, end="")
            summary = outcome.error.splitlines()[0]
            print(f"### {outcome.name} FAILED: {summary}")
            return
        print(outcome.rendered)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{outcome.name}.txt").write_text(outcome.rendered)

    outcomes = run_experiments(
        names, jobs=args.jobs, cache_dir=cache_dir, on_outcome=report
    )
    failures = [outcome for outcome in outcomes if outcome.failed]
    print(f"### ran {len(outcomes)} experiments, {len(failures)} failed")
    if failures:
        for outcome in sorted(failures, key=lambda o: o.name):
            print(f"###   {outcome.name}: {outcome.error.splitlines()[0]}")
        return 1
    return 0


def _cmd_grng(args: argparse.Namespace) -> int:
    generator = make_grng(args.generator, seed=args.seed)
    samples = generator.generate(args.samples)
    stability = stability_error(samples)
    runs = runs_test(samples)
    print(f"generator : {args.generator}")
    print(f"seed      : {args.seed}")
    print(f"samples   : {args.samples}")
    print(f"mu error  : {stability.mu_error:.5f}")
    print(f"sigma err : {stability.sigma_error:.5f}")
    print(f"runs test : p={runs.p_value:.4f} ({'pass' if runs.passed() else 'FAIL'})")
    return 0


def _cmd_design_space(args: argparse.Namespace) -> int:
    points = explore_design_space(
        tuple(args.layers), grng_kind=args.grng, max_pe_sets=args.max_pe_sets
    )
    print(f"{len(points)} feasible design points (best first):")
    for point in points[: args.top]:
        print("  " + point.describe())
    return 0


# ----------------------------------------------------------------------
# Serving verbs
# ----------------------------------------------------------------------
def _build_demo_service(
    args: argparse.Namespace, model_dir: pathlib.Path
) -> tuple[BnnService, np.ndarray]:
    """Train (optionally), export, and serve the demo digits model.

    Deliberately walks the full production path: train → save posterior →
    ``register_file`` → serve, so the demo exercises the same
    serialization and registry seams a deployment would.
    """
    x_train, y_train, x_test, _ = load_digits_split(
        n_train=max(args.train_images, 1), n_test=args.images, seed=args.seed
    )
    network = BayesianNetwork((784, args.hidden, 10), seed=args.seed)
    if args.epochs > 0:
        Trainer(network, epochs=args.epochs, seed=args.seed).fit(x_train, y_train)
    model_path = model_dir / "demo-digits.npz"
    save_posterior(model_path, network.posterior_parameters())
    # --slo / --deadline-ms imply the resilience layer: they are its API.
    resilience = None
    if args.resilience or args.slo is not None or args.deadline_ms is not None:
        resilience = ResilienceConfig(min_passes=args.min_passes)
    service = BnnService(
        config=ServiceConfig(
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_capacity=args.queue_capacity,
            workers=args.workers,
            cache_capacity=args.cache_capacity,
            # Tracing is enabled exactly when the spans have somewhere to
            # go; an untraced run pays nothing on the request path.
            trace_capacity=args.trace_capacity if args.trace_out else 0,
            resilience=resilience,
        )
    )
    adaptive = (
        AdaptiveConfig(chunk=args.adaptive_chunk, exit_delta=args.adaptive_delta)
        if args.adaptive
        else None
    )
    service.register_file(
        args.model_name,
        model_path,
        n_samples=args.n_samples,
        grng=args.grng,
        seed=args.seed,
        variance_reduction=args.variance_reduction,
        share_weight_stacks=args.share_weight_stacks,
        adaptive=adaptive,
    )
    extras = []
    if adaptive is not None:
        extras.append(
            f"adaptive(chunk={adaptive.chunk}, delta={adaptive.exit_delta})"
        )
    if args.share_weight_stacks:
        extras.append("shared-stacks")
    if args.variance_reduction != "plain":
        extras.append(args.variance_reduction)
    if resilience is not None:
        extras.append(
            "resilience"
            + (f"({args.slo}" + (
                f", {args.deadline_ms:g}ms)" if args.deadline_ms else ")"
            ) if args.slo else "")
        )
    print(
        f"serving {args.model_name!r} (784-{args.hidden}-10, N={args.n_samples}, "
        f"grng={args.grng}) from {model_path.name}: "
        f"max_batch={args.max_batch}, max_wait={args.max_wait_ms}ms, "
        f"workers={args.workers}"
        + (f" [{', '.join(extras)}]" if extras else "")
    )
    return service, x_test


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--model-name", default="digits")
    parser.add_argument("--hidden", type=int, default=48, help="hidden layer width")
    parser.add_argument(
        "--epochs", type=int, default=1, help="demo training epochs (0 = untrained)"
    )
    parser.add_argument("--train-images", type=int, default=128)
    parser.add_argument("--images", type=int, default=64, help="distinct request images")
    parser.add_argument("--n-samples", type=int, default=10, help="MC samples per request")
    parser.add_argument("--grng", choices=available_grngs(), default="bnnwallace")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--queue-capacity", type=int, default=1024)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="enable sequential-confidence early exit (adaptive MC)",
    )
    parser.add_argument(
        "--adaptive-chunk", type=int, default=8, help="MC passes per exit check"
    )
    parser.add_argument(
        "--adaptive-delta",
        type=float,
        default=0.05,
        help="Hoeffding exit confidence (smaller = stricter = later exits)",
    )
    parser.add_argument(
        "--variance-reduction",
        choices=VARIANCE_REDUCTIONS,
        default="plain",
        help="epsilon-stream variance reduction",
    )
    parser.add_argument(
        "--share-weight-stacks",
        action="store_true",
        help="serve off one cached sampled weight ensemble shared across requests",
    )
    resil = parser.add_argument_group("resilience")
    resil.add_argument(
        "--resilience",
        action="store_true",
        help="enable the resilience layer (SLO deadlines, admission control, "
        "degradation, worker supervision — docs/RESILIENCE.md)",
    )
    resil.add_argument(
        "--slo",
        choices=SLO_CLASSES,
        default=None,
        help="SLO class of generated requests (implies --resilience)",
    )
    resil.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request deadline in milliseconds (implies --resilience)",
    )
    resil.add_argument(
        "--min-passes",
        type=int,
        default=4,
        help="MC-pass floor of the overload degradation ladder",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="enable request tracing and write the spans as JSON lines "
        "(render with 'repro obs-report')",
    )
    obs.add_argument(
        "--trace-capacity",
        type=int,
        default=16384,
        help="span ring size when tracing is enabled",
    )
    obs.add_argument(
        "--metrics-json",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write the unified metrics registry as JSON",
    )
    obs.add_argument(
        "--metrics-prom",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write the registry in Prometheus text exposition format",
    )
    obs.add_argument(
        "--profile",
        action="store_true",
        help="enable kernel profiling hooks and print the per-kernel rollup",
    )
    obs.add_argument(
        "--samples-out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write per-request (submit_ts, latency_s) JSON-lines samples",
    )


def _run_demo_workload(args: argparse.Namespace, run) -> int:
    """Shared serve-demo/loadtest scaffolding around a load-pattern callback.

    Builds the demo service in a throwaway model directory, runs
    ``run(service, images)`` (which returns a
    :class:`~repro.serving.loadgen.LoadStats`), and prints the load stats
    plus the service metrics.  Observability flags hang off this seam:
    the trace/metrics/sample exports are written after the run, and
    ``--profile`` prints the kernel rollup.
    """
    profiler = enable_profiling() if args.profile else None
    try:
        with tempfile.TemporaryDirectory(prefix="repro-serving-") as model_dir:
            service, images = _build_demo_service(args, pathlib.Path(model_dir))
            with service:
                stats = run(service, images)
                print()
                print(stats.render())
                print()
                print(service.metrics.render())
                if args.trace_out is not None and service.tracer is not None:
                    count = service.tracer.export_jsonl(args.trace_out)
                    print(f"\nwrote {count} trace spans to {args.trace_out}")
                if args.metrics_json is not None:
                    write_metrics_json(service.metrics.registry, args.metrics_json)
                    print(f"wrote metrics JSON to {args.metrics_json}")
                if args.metrics_prom is not None:
                    args.metrics_prom.parent.mkdir(parents=True, exist_ok=True)
                    args.metrics_prom.write_text(
                        render_prometheus(service.metrics.registry)
                    )
                    print(f"wrote Prometheus exposition to {args.metrics_prom}")
                if args.samples_out is not None:
                    stats.export_samples(args.samples_out)
                    print(
                        f"wrote {len(stats.latencies_s)} request samples "
                        f"to {args.samples_out}"
                    )
    finally:
        if profiler is not None:
            disable_profiling()
    if profiler is not None:
        print()
        print(profiler.render())
    return 0


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    return _run_demo_workload(
        args,
        lambda service, images: run_closed_loop(
            service,
            args.model_name,
            images,
            total_requests=args.requests,
            slo=args.slo,
            deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
        ),
    )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    deadline_s = args.deadline_ms / 1e3 if args.deadline_ms is not None else None
    if args.pattern == "closed":
        run = lambda service, images: run_closed_loop(  # noqa: E731
            service,
            args.model_name,
            images,
            total_requests=args.requests,
            window=args.window,
            slo=args.slo,
            deadline_s=deadline_s,
        )
    else:
        run = lambda service, images: run_open_loop(  # noqa: E731
            service,
            args.model_name,
            images,
            rate_rps=args.rate,
            duration_s=args.duration,
            seed=args.seed,
            slo=args.slo,
            deadline_s=deadline_s,
        )
    return _run_demo_workload(args, run)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    spans = load_spans(args.spans)
    print(render_phase_report(spans))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint over the tree; non-zero exit on any new finding.

    The baseline defaults to ``<root>/analysis-baseline.json`` when that
    file exists, so the committed grandfather list applies without flags;
    ``--no-baseline`` lints raw.  ``--write-baseline`` rewrites the file
    from the current findings (keeping recorded reasons for fingerprints
    that survive) — the escape hatch for landing a new rule with
    pre-existing findings, not for silencing fresh ones.
    """
    root = args.root if args.root is not None else default_root()
    baseline_path = (
        args.baseline
        if args.baseline is not None
        else pathlib.Path(root) / "analysis-baseline.json"
    )
    baseline = None
    if not args.no_baseline and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
    report = lint_project(root, baseline=baseline, only=args.rules)
    if args.write_baseline:
        previous = baseline.entries if baseline is not None else {}
        merged = Baseline(
            {
                finding.fingerprint: previous.get(
                    finding.fingerprint, "grandfathered by --write-baseline"
                )
                for finding in report.new + report.baselined
            }
        )
        merged.write(baseline_path)
        print(f"wrote {len(merged.entries)} baseline entr(y/ies) to {baseline_path}")
        return 0
    rendered = (
        json.dumps(report.to_dict(), indent=2)
        if args.format == "json"
        else report.render()
    )
    print(rendered)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
            if args.format == "json"
            else rendered + "\n"
        )
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="VIBNN reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and generators").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--out", type=pathlib.Path, default=None, help="save rendered table here")
    run.set_defaults(func=_cmd_run)

    run_all = sub.add_parser(
        "run-all", help="run every experiment (continues past failures)"
    )
    run_all.add_argument("--out", type=pathlib.Path, default=None)
    run_all.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run experiments across N worker processes (results identical to --jobs 1)",
    )
    run_all.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="EXPERIMENT",
        help="restrict the batch to these experiments",
    )
    run_all.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="directory for the shared trained-posterior artifact cache",
    )
    run_all.set_defaults(func=_cmd_run_all)

    grng = sub.add_parser("grng", help="sample a generator and report quality")
    grng.add_argument("generator", choices=available_grngs())
    grng.add_argument("--samples", type=int, default=20_000)
    grng.add_argument(
        "--seed", type=int, default=0, help="generator seed (echoed for reproducibility)"
    )
    grng.set_defaults(func=_cmd_grng)

    design = sub.add_parser("design-space", help="explore §5.4 design points")
    design.add_argument("--grng", choices=("rlf", "bnnwallace"), default="rlf")
    design.add_argument("--layers", type=int, nargs="+", default=[784, 200, 200, 10])
    design.add_argument("--max-pe-sets", type=int, default=25)
    design.add_argument("--top", type=int, default=10)
    design.set_defaults(func=_cmd_design_space)

    serve = sub.add_parser(
        "serve-demo",
        help="train a small BNN and serve a demo workload via the micro-batching service",
    )
    _add_serving_arguments(serve)
    serve.add_argument("--requests", type=int, default=256)
    serve.set_defaults(func=_cmd_serve_demo)

    loadtest = sub.add_parser(
        "loadtest", help="drive the serving stack with an open/closed-loop load pattern"
    )
    _add_serving_arguments(loadtest)
    loadtest.add_argument("--pattern", choices=("closed", "open"), default="closed")
    loadtest.add_argument("--requests", type=int, default=512, help="closed-loop total")
    loadtest.add_argument("--window", type=int, default=None, help="closed-loop in-flight window")
    loadtest.add_argument("--rate", type=float, default=200.0, help="open-loop arrivals/sec")
    loadtest.add_argument("--duration", type=float, default=3.0, help="open-loop seconds")
    loadtest.set_defaults(func=_cmd_loadtest)

    report = sub.add_parser(
        "obs-report",
        help="render a --trace-out span file as a per-phase latency breakdown",
    )
    report.add_argument("spans", type=pathlib.Path, help="JSON-lines span file")
    report.set_defaults(func=_cmd_obs_report)

    lint = sub.add_parser(
        "lint",
        help="run reprolint (the AST invariant linter) over the project tree",
    )
    lint.add_argument(
        "--root",
        type=pathlib.Path,
        default=None,
        help="project root to lint (default: this checkout)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help="baseline file of grandfathered findings "
        "(default: <root>/analysis-baseline.json when present)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report every finding",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--rules",
        nargs="+",
        default=None,
        metavar="RULE",
        help="restrict the run to these rule ids (e.g. RL001 RL005)",
    )
    lint.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="also write the report here (the CI artifact path)",
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
