"""Command-line interface for the reproduction.

Usage::

    python -m repro.cli list
    python -m repro.cli run table1 [--out results/]
    python -m repro.cli run-all [--out results/]
    python -m repro.cli grng rlf --samples 10000
    python -m repro.cli design-space --grng rlf

``run`` executes one registered experiment (a paper table/figure) and
prints/saves the rendered table; ``grng`` draws samples from a registered
generator and prints its quality metrics; ``design-space`` runs the §5.4
explorer.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments import EXPERIMENTS, get_experiment
from repro.grng import available_grngs, make_grng
from repro.grng.quality import runs_test, stability_error
from repro.hw.design_space import explore_design_space


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<8} {doc}")
    print("\ngenerators:")
    for name in available_grngs():
        print(f"  {name}")
    return 0


def _run_one(name: str, out_dir: pathlib.Path | None) -> None:
    experiment = get_experiment(name)
    rendered = experiment.render(experiment.run())
    print(rendered)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(rendered)


def _cmd_run(args: argparse.Namespace) -> int:
    _run_one(args.experiment, args.out)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS):
        print(f"### {name}")
        _run_one(name, args.out)
    return 0


def _cmd_grng(args: argparse.Namespace) -> int:
    generator = make_grng(args.generator, seed=args.seed)
    samples = generator.generate(args.samples)
    stability = stability_error(samples)
    runs = runs_test(samples)
    print(f"generator : {args.generator}")
    print(f"samples   : {args.samples}")
    print(f"mu error  : {stability.mu_error:.5f}")
    print(f"sigma err : {stability.sigma_error:.5f}")
    print(f"runs test : p={runs.p_value:.4f} ({'pass' if runs.passed() else 'FAIL'})")
    return 0


def _cmd_design_space(args: argparse.Namespace) -> int:
    points = explore_design_space(
        tuple(args.layers), grng_kind=args.grng, max_pe_sets=args.max_pe_sets
    )
    print(f"{len(points)} feasible design points (best first):")
    for point in points[: args.top]:
        print("  " + point.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="VIBNN reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and generators").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--out", type=pathlib.Path, default=None, help="save rendered table here")
    run.set_defaults(func=_cmd_run)

    run_all = sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--out", type=pathlib.Path, default=None)
    run_all.set_defaults(func=_cmd_run_all)

    grng = sub.add_parser("grng", help="sample a generator and report quality")
    grng.add_argument("generator", choices=available_grngs())
    grng.add_argument("--samples", type=int, default=20_000)
    grng.add_argument("--seed", type=int, default=0)
    grng.set_defaults(func=_cmd_grng)

    design = sub.add_parser("design-space", help="explore §5.4 design points")
    design.add_argument("--grng", choices=("rlf", "bnnwallace"), default="rlf")
    design.add_argument("--layers", type=int, nargs="+", default=[784, 200, 200, 10])
    design.add_argument("--max-pe-sets", type=int, default=25)
    design.add_argument("--top", type=int, default=10)
    design.set_defaults(func=_cmd_design_space)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
