"""Worker pool: threads that turn queued batches into batched MC calls.

Each :class:`ServingWorker` owns a private predictor per model — built by
:meth:`~repro.serving.registry.ModelEntry.build_predictor` with the
worker's decorrelated GRNG stream (see
:func:`~repro.serving.registry.worker_stream_seed`) — so concurrent
workers never share generator state and every worker's epsilon stream is
individually reproducible.  Workers rebuild a predictor when the model's
registry version moves (a reload), which is how new posteriors and fresh
streams propagate without locks around the hot path.

The heavy lifting inside a batch is pure NumPy/BLAS, which releases the
GIL for the GEMMs, so a small pool genuinely overlaps compute with
queueing; the pool size is a throughput/latency knob, not a parallel-Python
workaround.  ``ServingWorker`` is also usable unstarted: the synchronous
service mode constructs worker 0 and calls :meth:`ServingWorker.execute`
on the caller's thread, so both modes run the identical execution path.
"""

from __future__ import annotations

import contextlib
import threading
import time

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import trace as _trace
from repro.obs.trace import Tracer
from repro.serving.batcher import Batch, MicroBatcher
from repro.serving.cache import PredictionCache
from repro.serving.metrics import ServiceMetrics
from repro.serving.registry import ModelRegistry
from repro.serving.weight_stack import WeightStackCache
from repro.utils.validation import check_positive

#: How long an idle worker blocks on the queue before re-checking shutdown.
_IDLE_POLL_S = 0.05


class ServingWorker(threading.Thread):
    """One serving thread (or the synchronous mode's inline executor)."""

    def __init__(
        self,
        index: int,
        registry: ModelRegistry,
        batcher: MicroBatcher,
        cache: PredictionCache,
        metrics: ServiceMetrics,
        stack_cache: WeightStackCache | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(name=f"bnn-serving-worker-{index}", daemon=True)
        self.index = index
        self.registry = registry
        self.batcher = batcher
        self.cache = cache
        self.metrics = metrics
        self.stack_cache = stack_cache
        self.tracer = tracer
        # Per-worker predictor cache: model name -> (version, predictor).
        self._predictors: dict[str, tuple[int, object]] = {}

    # ------------------------------------------------------------------
    def _predictor_for(self, entry) -> object:
        cached = self._predictors.get(entry.name)
        if cached is not None and cached[0] == entry.version:
            return cached[1]
        predictor = entry.build_predictor(self.index, stack_cache=self.stack_cache)
        self._predictors[entry.name] = (entry.version, predictor)
        return predictor

    def execute(self, batch: Batch) -> None:
        """Run one coalesced batch and resolve every ticket in it.

        Any failure (unknown model after an eviction race, a bad row that
        slipped validation, a predictor returning a malformed result, ...)
        is delivered to the batch's tickets rather than killing the worker.
        The output-shape check lives *inside* the fault barrier, before the
        cache loop: a faulty predictor must never populate cache entries
        for any of the batch's rows (a short result would otherwise cache
        some rows before the per-row indexing blew up mid-loop).
        """
        if len(batch) == 0:
            return
        tracer = self.tracer
        traced = tracer is not None and any(
            ticket.trace is not None for ticket in batch.tickets
        )
        exec_start = time.perf_counter()
        # Phase collection is installed only for traced batches; the inner
        # phase() calls degrade to a single thread-local read otherwise.
        batch_phases: dict[str, float] = {}
        collect = (
            _trace.collect_phases(batch_phases) if traced else contextlib.nullcontext()
        )
        try:
            with collect:
                with _trace.phase("stack_build"):
                    entry = self.registry.get(batch.model)
                    predictor = self._predictor_for(entry)
                with _trace.phase("inference"):
                    probs = np.asarray(predictor.predict_proba_batched(batch.stack()))
            if probs.ndim != 2 or probs.shape != (len(batch), entry.out_features):
                raise ConfigurationError(
                    f"predictor for model {entry.name!r} returned shape "
                    f"{probs.shape}, expected ({len(batch)}, {entry.out_features})"
                )
        except Exception as error:  # noqa: BLE001 - fault barrier per batch
            for ticket in batch.tickets:
                ticket.set_exception(error)
                if traced and ticket.trace is not None:
                    span = ticket.trace
                    span.batch_size = len(batch)
                    span.worker = self.index
                    tracer.finish(
                        span, end=ticket.completed_at, error=type(error).__name__
                    )
            self.metrics.record_batch(len(batch))
            for _ in batch.tickets:
                self.metrics.record_failure()
            return
        self.metrics.record_batch(len(batch))
        pop_pass_counts = getattr(predictor, "pop_pass_counts", None)
        if pop_pass_counts is not None:
            pass_counts = pop_pass_counts()
            if pass_counts is not None:
                self.metrics.record_adaptive(pass_counts, entry.n_samples)
        if traced:
            # The batch's queue residency splits at its youngest arrival:
            # request i waited [enqueued_i, e_last] for the batch to fill
            # (coalescing) and [e_last, exec_start] for dispatch.  Both
            # intervals plus the batch-level stack_build/inference and the
            # per-ticket respond tail are disjoint sub-intervals of each
            # request's [start, completed_at] window, so summed phases
            # never exceed wall time.
            e_last = max(
                (
                    span.marks.get("enqueued", span.start)
                    for span in (t.trace for t in batch.tickets)
                    if span is not None
                ),
                default=exec_start,
            )
            e_last = min(e_last, exec_start)
            stack_s = batch_phases.get("stack_build", 0.0)
            infer_s = batch_phases.get("inference", 0.0)
        respond_start = time.perf_counter()
        for row_index, ticket in enumerate(batch.tickets):
            row = probs[row_index]
            if self.cache.capacity:  # skip the per-row digest when disabled
                self.cache.put(
                    PredictionCache.key(
                        entry.name, entry.version, entry.n_samples, batch.rows[row_index]
                    ),
                    row,
                )
            ticket.set_result(row)
            self.metrics.record_latency(ticket.latency())
            if traced and ticket.trace is not None:
                span = ticket.trace
                enqueued = min(span.marks.get("enqueued", span.start), e_last)
                span.add_phase("batch_fill", e_last - enqueued)
                span.add_phase("queue_wait", exec_start - e_last)
                span.add_phase("stack_build", stack_s)
                span.add_phase("inference", infer_s)
                span.add_phase("respond", ticket.completed_at - respond_start)
                span.batch_size = len(batch)
                span.worker = self.index
                tracer.finish(span, end=ticket.completed_at)

    # ------------------------------------------------------------------
    def run(self) -> None:  # pragma: no cover - exercised via WorkerPool tests
        while True:
            batch = self.batcher.next_batch(timeout=_IDLE_POLL_S)
            if batch is not None:
                self.execute(batch)
            elif self.batcher.closed:
                return


class WorkerPool:
    """Owns ``workers`` serving threads over one shared batcher."""

    def __init__(
        self,
        registry: ModelRegistry,
        batcher: MicroBatcher,
        cache: PredictionCache,
        metrics: ServiceMetrics,
        workers: int = 2,
        stack_cache: WeightStackCache | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        check_positive("workers", workers)
        self.batcher = batcher
        self.workers = [
            ServingWorker(index, registry, batcher, cache, metrics, stack_cache, tracer)
            for index in range(workers)
        ]
        for worker in self.workers:
            worker.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Close the queue, let workers drain it, and join them."""
        # close() refuses new submissions but leaves queued batches
        # poppable, so in-flight tickets still resolve before the join.
        self.batcher.close()
        for worker in self.workers:
            worker.join(timeout)
