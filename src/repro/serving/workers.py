"""Worker pool: threads that turn queued batches into batched MC calls.

Each :class:`ServingWorker` owns a private predictor per model — built by
:meth:`~repro.serving.registry.ModelEntry.build_predictor` with the
worker's decorrelated GRNG stream (see
:func:`~repro.serving.registry.worker_stream_seed`) — so concurrent
workers never share generator state and every worker's epsilon stream is
individually reproducible.  Workers rebuild a predictor when the model's
registry version moves (a reload), which is how new posteriors and fresh
streams propagate without locks around the hot path.

The heavy lifting inside a batch is pure NumPy/BLAS, which releases the
GIL for the GEMMs, so a small pool genuinely overlaps compute with
queueing; the pool size is a throughput/latency knob, not a parallel-Python
workaround.  ``ServingWorker`` is also usable unstarted: the synchronous
service mode constructs worker 0 and calls :meth:`ServingWorker.execute`
on the caller's thread, so both modes run the identical execution path.

With a :class:`~repro.serving.resilience.ResilienceConfig` attached the
pool additionally supervises its threads (``docs/RESILIENCE.md``): a
supervisor thread watches heartbeats and per-batch residency, fails a
dead or stalled worker's tickets with a typed
:class:`~repro.errors.WorkerCrashed` (never a hang), and restarts the
slot with a bumped ``incarnation`` so the replacement draws a fresh,
decorrelated — yet deterministic — GRNG stream.  Workers re-check request
deadlines at execution time, shed expired tickets with
:class:`~repro.errors.DeadlineExceeded`, and step Monte-Carlo passes down
the overload ladder through the adaptive ``chunk_probs`` seam.
"""

from __future__ import annotations

import contextlib
import threading
import time

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    InjectedWorkerKill,
    WorkerCrashed,
)
from repro.obs import trace as _trace
from repro.obs.trace import Tracer
from repro.serving.batcher import Batch, MicroBatcher
from repro.serving.cache import PredictionCache
from repro.serving.metrics import ServiceMetrics
from repro.serving.registry import ModelRegistry
from repro.serving.resilience import (
    AdmissionController,
    FaultPlan,
    ResilienceConfig,
    chunk_seam,
)
from repro.serving.weight_stack import WeightStackCache
from repro.utils.validation import check_positive

#: How long an idle worker blocks on the queue before re-checking shutdown.
_IDLE_POLL_S = 0.05


def _fail_batch_tickets(
    batch: Batch,
    error: Exception,
    metrics: ServiceMetrics,
    tracer: Tracer | None,
) -> int:
    """Deliver ``error`` to every unresolved ticket of ``batch``.

    Covers both the live tickets and any deadline-expired ones the batcher
    attached (a crashed worker must resolve *everything* it was holding).
    First delivery wins — tickets already resolved elsewhere are skipped —
    and each actual delivery is counted as a failure and closes the
    request's span.  Returns the number of tickets actually failed.
    """
    failed = 0
    for ticket in list(batch.tickets) + list(batch.expired):
        if not ticket.set_exception(error):
            continue
        failed += 1
        metrics.record_failure()
        if tracer is not None and ticket.trace is not None:
            tracer.finish(
                ticket.trace, end=ticket.completed_at, error=type(error).__name__
            )
    return failed


def shed_expired_tickets(
    batch: Batch,
    metrics: ServiceMetrics,
    tracer: Tracer | None,
    worker_index: int,
) -> None:
    """Fail expired tickets (batcher-evicted + execution-time re-check).

    Each shed ticket — and every coalesced follower riding it, since
    followers share the ticket — fails exactly once with a typed
    :class:`~repro.errors.DeadlineExceeded`; its span gets a ``shed``
    phase covering the queue residency that expired it.  Shared by the
    thread workers and the process pool's dispatch threads, so both modes
    apply the identical deadline policy.
    """
    shed = list(batch.expired)
    batch.expired = []
    if batch.tickets and any(t.deadline is not None for t in batch.tickets):
        now = time.perf_counter()
        rows, tickets = [], []
        for row, ticket in zip(batch.rows, batch.tickets):
            if ticket.deadline is not None and now > ticket.deadline:
                shed.append(ticket)
            else:
                rows.append(row)
                tickets.append(ticket)
        batch.rows = rows
        batch.tickets = tickets
    for ticket in shed:
        error = DeadlineExceeded(
            f"{ticket.slo} request for model {ticket.model!r} expired "
            "in queue before a worker could serve it"
        )
        if not ticket.set_exception(error):
            continue
        metrics.record_deadline_eviction(ticket.slo)
        metrics.record_failure()
        if tracer is not None and ticket.trace is not None:
            span = ticket.trace
            enqueued = span.marks.get("enqueued", span.start)
            span.add_phase("shed", max(0.0, ticket.completed_at - enqueued))
            span.worker = worker_index
            tracer.finish(span, end=ticket.completed_at, error="DeadlineExceeded")


class ServingWorker(threading.Thread):
    """One serving thread (or the synchronous mode's inline executor).

    The supervision attributes (``last_beat``, ``busy_since``,
    ``current_batch``, ``retired``, ``crashed``) are deliberately plain,
    lock-free attributes: each is written by the worker thread and read as
    a single-word snapshot by the supervisor, so a slightly stale read
    only delays a supervision decision by one poll interval.
    """

    def __init__(
        self,
        index: int,
        registry: ModelRegistry,
        batcher: MicroBatcher,
        cache: PredictionCache,
        metrics: ServiceMetrics,
        stack_cache: WeightStackCache | None = None,
        tracer: Tracer | None = None,
        *,
        admission: AdmissionController | None = None,
        fault_plan: FaultPlan | None = None,
        incarnation: int = 0,
    ) -> None:
        super().__init__(name=f"bnn-serving-worker-{index}", daemon=True)
        self.index = index
        self.registry = registry
        self.batcher = batcher
        self.cache = cache
        self.metrics = metrics
        self.stack_cache = stack_cache
        self.tracer = tracer
        self.admission = admission
        self.fault_plan = fault_plan
        self.incarnation = incarnation
        # Supervision heartbeat/progress markers (see class docstring).
        self.last_beat = time.perf_counter()
        self.busy_since: float | None = None
        self.current_batch: Batch | None = None
        self.retired = False
        self.crashed = False
        # Per-worker predictor cache: model name -> (version, predictor).
        self._predictors: dict[str, tuple[int, object]] = {}

    # ------------------------------------------------------------------
    def _predictor_for(self, entry) -> object:
        cached = self._predictors.get(entry.name)
        if cached is not None and cached[0] == entry.version:
            return cached[1]
        predictor = entry.build_predictor(
            self.index, stack_cache=self.stack_cache, incarnation=self.incarnation
        )
        self._predictors[entry.name] = (entry.version, predictor)
        return predictor

    def _shed_expired(self, batch: Batch) -> None:
        shed_expired_tickets(batch, self.metrics, self.tracer, self.index)

    def execute(self, batch: Batch) -> None:
        """Run one coalesced batch and resolve every ticket in it.

        Any failure (unknown model after an eviction race, a bad row that
        slipped validation, a predictor returning a malformed result, ...)
        is delivered to the batch's tickets rather than killing the worker.
        The output-shape check lives *inside* the fault barrier, before the
        cache loop: a faulty predictor must never populate cache entries
        for any of the batch's rows (a short result would otherwise cache
        some rows before the per-row indexing blew up mid-loop).
        """
        plan = self.fault_plan
        if plan is not None:
            event = plan.fire(self.index, self.incarnation)
            if event is not None:
                if event.action in ("kill", "exit"):
                    # A thread cannot abruptly exit the way a process can;
                    # "exit" degrades to the injected kill in thread mode.
                    raise InjectedWorkerKill(
                        f"fault plan killed worker {self.index} "
                        f"(incarnation {self.incarnation})"
                    )
                # "stall" and "delay" only differ in magnitude: a stall is
                # long enough for the supervisor's batch timeout to fire.
                time.sleep(event.seconds)
        if batch.expired or any(t.deadline is not None for t in batch.tickets):
            self._shed_expired(batch)
        if len(batch) == 0:
            return  # whole batch expired: no inference, tickets already failed
        tracer = self.tracer
        traced = tracer is not None and any(
            ticket.trace is not None for ticket in batch.tickets
        )
        exec_start = time.perf_counter()
        admission = self.admission
        if admission is not None:
            # Queue pressure = how long the batch's youngest request sat
            # queued before execution started (perf_counter timebase, the
            # same clock the tracer stamps spans with).
            youngest = max(ticket.created_at for ticket in batch.tickets)
            admission.observe_queue_wait(exec_start - youngest)
        # Phase collection is installed only for traced batches; the inner
        # phase() calls degrade to a single thread-local read otherwise.
        batch_phases: dict[str, float] = {}
        collect = (
            _trace.collect_phases(batch_phases) if traced else contextlib.nullcontext()
        )
        degraded: int | None = None
        try:
            with collect:
                with _trace.phase("stack_build"):
                    entry = self.registry.get(batch.model)
                    predictor = self._predictor_for(entry)
                seam = None
                if admission is not None:
                    n_eff = admission.effective_passes(entry.n_samples)
                    if n_eff < entry.n_samples:
                        seam = chunk_seam(predictor)
                with _trace.phase("inference"):
                    if seam is not None:
                        # Overload ladder: serve only the first n_eff MC
                        # passes through the chunk seam — the same passes a
                        # full run would execute first, so degraded results
                        # are a matched-ensemble prefix (docs/RESILIENCE.md).
                        degraded = n_eff
                        probs = np.asarray(seam(batch.stack(), 0, n_eff)).mean(axis=0)
                    else:
                        probs = np.asarray(
                            predictor.predict_proba_batched(batch.stack())
                        )
            if probs.ndim != 2 or probs.shape != (len(batch), entry.out_features):
                raise ConfigurationError(
                    f"predictor for model {entry.name!r} returned shape "
                    f"{probs.shape}, expected ({len(batch)}, {entry.out_features})"
                )
        except Exception as error:  # noqa: BLE001 - fault barrier per batch
            self.metrics.record_batch(len(batch))
            for ticket in batch.tickets:
                if not ticket.set_exception(error):
                    continue
                self.metrics.record_failure()
                if traced and ticket.trace is not None:
                    span = ticket.trace
                    span.batch_size = len(batch)
                    span.worker = self.index
                    tracer.finish(
                        span, end=ticket.completed_at, error=type(error).__name__
                    )
            return
        self.metrics.record_batch(len(batch))
        if degraded is not None:
            self.metrics.record_degraded(len(batch))
        pop_pass_counts = getattr(predictor, "pop_pass_counts", None)
        if pop_pass_counts is not None and degraded is None:
            pass_counts = pop_pass_counts()
            if pass_counts is not None:
                self.metrics.record_adaptive(pass_counts, entry.n_samples)
        if traced:
            # The batch's queue residency splits at its youngest arrival:
            # request i waited [enqueued_i, e_last] for the batch to fill
            # (coalescing) and [e_last, exec_start] for dispatch.  Both
            # intervals plus the batch-level stack_build/inference and the
            # per-ticket respond tail are disjoint sub-intervals of each
            # request's [start, completed_at] window, so summed phases
            # never exceed wall time.
            e_last = max(
                (
                    span.marks.get("enqueued", span.start)
                    for span in (t.trace for t in batch.tickets)
                    if span is not None
                ),
                default=exec_start,
            )
            e_last = min(e_last, exec_start)
            stack_s = batch_phases.get("stack_build", 0.0)
            infer_s = batch_phases.get("inference", 0.0)
        respond_start = time.perf_counter()
        for row_index, ticket in enumerate(batch.tickets):
            if batch.cancelled:
                # The supervisor declared this worker stalled and already
                # failed the batch over; a late completion must not clobber
                # the typed error or write zombie cache rows.
                return
            row = probs[row_index]
            if self.cache.capacity:  # skip the per-row digest when disabled
                self.cache.put(
                    PredictionCache.key(
                        entry.name, entry.version, entry.n_samples, batch.rows[row_index]
                    ),
                    row,
                )
            ticket.degraded = degraded
            if not ticket.set_result(row):
                continue
            self.metrics.record_latency(ticket.latency())
            if traced and ticket.trace is not None:
                span = ticket.trace
                enqueued = min(span.marks.get("enqueued", span.start), e_last)
                span.add_phase("batch_fill", e_last - enqueued)
                span.add_phase("queue_wait", exec_start - e_last)
                span.add_phase("stack_build", stack_s)
                span.add_phase("inference", infer_s)
                span.add_phase("respond", ticket.completed_at - respond_start)
                span.batch_size = len(batch)
                span.worker = self.index
                tracer.finish(span, end=ticket.completed_at)

    # ------------------------------------------------------------------
    def run(self) -> None:  # pragma: no cover - exercised via WorkerPool tests
        while not self.retired:
            batch = self.batcher.next_batch(timeout=_IDLE_POLL_S)
            self.last_beat = time.perf_counter()
            if batch is not None:
                self.busy_since = time.perf_counter()
                self.current_batch = batch
                try:
                    self.execute(batch)
                except InjectedWorkerKill:
                    # Chaos kill: die holding the batch.  current_batch
                    # stays set so the supervisor fails its tickets over.
                    self.crashed = True
                    return
                self.current_batch = None
                self.busy_since = None
            elif self.batcher.closed:
                return


class WorkerPool:
    """Owns ``workers`` serving threads over one shared batcher.

    With ``resilience`` set, a supervisor thread polls the workers every
    ``heartbeat_interval_s``: a dead worker (chaos kill, unexpected thread
    death) or one stuck on a single batch past ``batch_timeout_s`` has its
    batch failed over with :class:`~repro.errors.WorkerCrashed` and its
    slot restarted with ``incarnation + 1`` — the replacement's GRNG
    stream is re-derived at the bumped position, so post-restart outputs
    are decorrelated from the dead worker's yet fully deterministic given
    the fault schedule.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        batcher: MicroBatcher,
        cache: PredictionCache,
        metrics: ServiceMetrics,
        workers: int = 2,
        stack_cache: WeightStackCache | None = None,
        tracer: Tracer | None = None,
        resilience: ResilienceConfig | None = None,
        admission: AdmissionController | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        check_positive("workers", workers)
        self.registry = registry
        self.batcher = batcher
        self.cache = cache
        self.metrics = metrics
        self.stack_cache = stack_cache
        self.tracer = tracer
        self.resilience = resilience
        self.admission = admission
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        self._restarts = 0
        self._stopping = threading.Event()
        self.workers = [self._make_worker(index, 0) for index in range(workers)]
        for worker in self.workers:
            worker.start()
        self._supervisor: threading.Thread | None = None
        if resilience is not None:
            self._supervisor = threading.Thread(
                target=self._supervise, name="bnn-serving-supervisor", daemon=True
            )
            self._supervisor.start()

    def _make_worker(self, index: int, incarnation: int) -> ServingWorker:
        return ServingWorker(
            index,
            self.registry,
            self.batcher,
            self.cache,
            self.metrics,
            self.stack_cache,
            self.tracer,
            admission=self.admission,
            fault_plan=self.fault_plan,
            incarnation=incarnation,
        )

    @property
    def restarts(self) -> int:
        """Supervised restarts performed over the pool's lifetime."""
        with self._lock:
            return self._restarts

    # ------------------------------------------------------------------
    def _supervise(self) -> None:  # pragma: no cover - exercised via chaos tests
        config = self.resilience
        while not self._stopping.wait(config.heartbeat_interval_s):
            with self._lock:
                snapshot = list(enumerate(self.workers))
            now = time.perf_counter()
            for slot, worker in snapshot:
                if self._stopping.is_set():
                    return
                if not worker.is_alive():
                    if not worker.retired:
                        self._failover(slot, worker, "died")
                    continue
                busy_since = worker.busy_since
                if busy_since is not None and now - busy_since > config.batch_timeout_s:
                    self._failover(slot, worker, "stalled")

    def _failover(self, slot: int, worker: ServingWorker, cause: str) -> None:
        """Fail a dead/stalled worker's batch over and restart its slot."""
        restarted = False
        with self._lock:
            if self.workers[slot] is not worker:
                return  # already failed over by an earlier poll
            if self._restarts < self.resilience.max_restarts:
                self._restarts += 1
                restarted = True
                replacement = self._make_worker(worker.index, worker.incarnation + 1)
                self.workers[slot] = replacement
                # Start inside the lock: is_alive() is True once start()
                # returns, so the next supervisor snapshot can never catch
                # a swapped-in-but-not-yet-started replacement and restart
                # it a second time.
                replacement.start()
        worker.retired = True
        batch = worker.current_batch
        if batch is not None:
            batch.cancelled = True
            error = WorkerCrashed(
                f"serving worker {worker.index} (incarnation "
                f"{worker.incarnation}) {cause} mid-batch; its requests "
                "were failed over"
            )
            _fail_batch_tickets(batch, error, self.metrics, self.tracer)
        if restarted:
            self.metrics.record_restart(cause)

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Close the queue, let workers drain it, and join them."""
        self._stopping.set()
        supervisor = self._supervisor
        if supervisor is not None:
            supervisor.join(timeout)
        # close() refuses new submissions but leaves queued batches
        # poppable, so in-flight tickets still resolve before the join.
        self.batcher.close()
        with self._lock:
            workers = list(self.workers)
        for worker in workers:
            worker.join(timeout)
        if self.resilience is not None:
            # No-hang sweep: a worker that died (or is still wedged past
            # the join timeout) must not leave tickets unresolved behind a
            # stopped pool.
            for worker in workers:
                batch = worker.current_batch
                if batch is None:
                    continue
                batch.cancelled = True
                _fail_batch_tickets(
                    batch,
                    WorkerCrashed(
                        f"serving worker {worker.index} shut down holding an "
                        "unfinished batch"
                    ),
                    self.metrics,
                    self.tracer,
                )
