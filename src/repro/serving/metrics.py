"""Service metrics: latency percentiles, batch histogram, queue/cache stats.

Everything a load test needs to judge the micro-batcher: request latency
(p50/p95/p99 over a bounded ring of recent samples), the batch-size
histogram (is coalescing actually happening, or is the service degenerating
into per-request calls?), queue depth (headroom before
:class:`~repro.errors.ServiceOverloaded`), cache hit rate, and overload
drops.  All counters are thread-safe; reading is done through
:meth:`ServiceMetrics.snapshot`, which returns plain Python values safe to
serialise or diff.

Since the observability PR, :class:`ServiceMetrics` is a *client* of the
unified :class:`~repro.obs.registry.MetricsRegistry`: every counter lives
in the registry (names below), so one Prometheus scrape or
``--metrics-json`` dump covers the whole service, while ``snapshot()`` /
``render()`` keep their exact legacy shape.  The weight-stack cache's
hits/misses/single-flight waits/evictions are folded into the snapshot via
:meth:`ServiceMetrics.attach_stack_cache`.

Registry metric names::

    service_requests_total{outcome}   served | failed
    service_overloads_total           queue-full drops
    service_cache_lookups_total{result}  hit | miss  (prediction cache)
    service_batches_total             dispatched batches
    service_batch_rows_total          rows across all batches
    service_batch_size_total{size}    batch-size histogram
    service_queue_depth               last observed depth (gauge)
    service_queue_depth_max           high-water mark (gauge)
    service_request_latency_seconds   request-latency histogram
    service_adaptive_rows_total / _passes_total / _pass_budget_total
    service_stack_cache_total{event}  hit | miss | wait | eviction
    service_shed_total{slo}           admission-control sheds by class
    service_deadline_evictions_total{slo}  expired requests evicted
    service_worker_restarts_total{cause}   supervised restarts (died | stalled)
    service_stale_serves_total        stale cache rows served under overload
    service_degraded_rows_total       rows served at reduced MC passes
    service_pressure_seconds          EWMA queue-wait pressure (gauge)
    service_degrade_level             overload-ladder position (gauge)
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry

#: Percentiles reported by :meth:`ServiceMetrics.latency_percentiles`.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)

#: Latency-histogram buckets (seconds): micro-batched requests live in the
#: 0.5ms–250ms range; the tail buckets catch overloaded configurations.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def percentile_dict(samples) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for a latency sample list.

    All zeros when ``samples`` is empty.  Shared by the service metrics
    and the load generator so both report the same percentile set.
    """
    if len(samples) == 0:
        return {f"p{int(p)}": 0.0 for p in LATENCY_PERCENTILES}
    values = np.percentile(samples, LATENCY_PERCENTILES)
    return {f"p{int(p)}": float(v) for p, v in zip(LATENCY_PERCENTILES, values)}


def format_latency(latency: dict[str, float]) -> str:
    """Render a :func:`percentile_dict` as ``p50=..ms p95=..ms p99=..ms``."""
    return "  ".join(
        f"p{int(p)}={latency[f'p{int(p)}'] * 1e3:.2f}ms" for p in LATENCY_PERCENTILES
    )


class ServiceMetrics:
    """Thread-safe accumulator for serving-side observability.

    Parameters
    ----------
    latency_window:
        Ring-buffer size for latency samples; percentiles are computed
        over the most recent ``latency_window`` requests.
    registry:
        The :class:`~repro.obs.registry.MetricsRegistry` the counters
        live in; a private one is created when omitted (the standalone
        configuration the unit tests use).
    """

    def __init__(
        self, latency_window: int = 8192, registry: MetricsRegistry | None = None
    ) -> None:
        if latency_window < 1:
            raise ConfigurationError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._latencies = np.zeros(latency_window)
        self._latency_count = 0
        self._stack_cache = None
        self._process_pool = None
        r = self.registry
        self._requests = r.counter(
            "service_requests_total", "Requests by outcome", labels=("outcome",)
        )
        self._overloads_c = r.counter(
            "service_overloads_total", "Requests dropped by queue backpressure"
        )
        self._cache_c = r.counter(
            "service_cache_lookups_total",
            "Prediction-cache lookups by result",
            labels=("result",),
        )
        self._batches_c = r.counter("service_batches_total", "Dispatched batches")
        self._batch_rows_c = r.counter(
            "service_batch_rows_total", "Rows across all dispatched batches"
        )
        self._batch_size_c = r.counter(
            "service_batch_size_total", "Batches by exact size", labels=("size",)
        )
        self._queue_depth_g = r.gauge(
            "service_queue_depth", "Queue depth at the last submit"
        )
        self._queue_depth_max_g = r.gauge(
            "service_queue_depth_max", "Maximum observed queue depth"
        )
        self._latency_h = r.histogram(
            "service_request_latency_seconds",
            "End-to-end request latency",
            buckets=LATENCY_BUCKETS,
        )
        self._adaptive_rows_c = r.counter(
            "service_adaptive_rows_total", "Rows served through the adaptive path"
        )
        self._adaptive_passes_c = r.counter(
            "service_adaptive_passes_total", "MC passes actually run for adaptive rows"
        )
        self._adaptive_budget_c = r.counter(
            "service_adaptive_pass_budget_total",
            "Fixed-N pass budget of the adaptive rows",
        )
        self._stack_c = r.counter(
            "service_stack_cache_total",
            "Weight-stack cache events",
            labels=("event",),
        )
        self._shed_c = r.counter(
            "service_shed_total",
            "Requests shed by the admission controller, by SLO class",
            labels=("slo",),
        )
        self._deadline_c = r.counter(
            "service_deadline_evictions_total",
            "Requests evicted past their deadline, by SLO class",
            labels=("slo",),
        )
        self._restarts_c = r.counter(
            "service_worker_restarts_total",
            "Supervised worker restarts by cause",
            labels=("cause",),
        )
        self._stale_c = r.counter(
            "service_stale_serves_total",
            "Version-stale cache rows served under overload",
        )
        self._degraded_c = r.counter(
            "service_degraded_rows_total",
            "Rows served at reduced MC passes (overload ladder)",
        )

    # ------------------------------------------------------------------
    # Legacy attribute views (the pre-registry public surface)
    # ------------------------------------------------------------------
    @property
    def requests_served(self) -> int:
        return int(self._requests.value(outcome="served"))

    @property
    def requests_failed(self) -> int:
        return int(self._requests.value(outcome="failed"))

    @property
    def overloads(self) -> int:
        return int(self._overloads_c.value())

    @property
    def cache_hits(self) -> int:
        return int(self._cache_c.value(result="hit"))

    @property
    def cache_misses(self) -> int:
        return int(self._cache_c.value(result="miss"))

    @property
    def batches(self) -> int:
        return int(self._batches_c.value())

    @property
    def batch_rows(self) -> int:
        return int(self._batch_rows_c.value())

    @property
    def max_queue_depth(self) -> int:
        return int(self._queue_depth_max_g.value())

    @property
    def last_queue_depth(self) -> int:
        return int(self._queue_depth_g.value())

    @property
    def shed(self) -> int:
        return int(sum(self._shed_c.series().values()))

    @property
    def deadline_evictions(self) -> int:
        return int(sum(self._deadline_c.series().values()))

    @property
    def worker_restarts(self) -> int:
        return int(sum(self._restarts_c.series().values()))

    @property
    def stale_serves(self) -> int:
        return int(self._stale_c.value())

    @property
    def degraded_rows(self) -> int:
        return int(self._degraded_c.value())

    @property
    def adaptive_rows(self) -> int:
        return int(self._adaptive_rows_c.value())

    @property
    def adaptive_passes(self) -> int:
        return int(self._adaptive_passes_c.value())

    @property
    def adaptive_pass_budget(self) -> int:
        return int(self._adaptive_budget_c.value())

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies[self._latency_count % self._latencies.size] = seconds
            self._latency_count += 1
        self._requests.inc(outcome="served")
        self._latency_h.observe(seconds)

    def record_failure(self) -> None:
        self._requests.inc(outcome="failed")

    def record_overload(self) -> None:
        self._overloads_c.inc()

    def record_cache(self, hit: bool) -> None:
        self._cache_c.inc(result="hit" if hit else "miss")

    def record_batch(self, size: int) -> None:
        self._batches_c.inc()
        self._batch_rows_c.inc(size)
        self._batch_size_c.inc(size=int(size))

    def record_adaptive(self, pass_counts, max_samples: int) -> None:
        """Account one adaptive batch's per-row MC pass counts.

        ``pass_counts`` is the per-row vector the early-exit predictor
        retains (:meth:`~repro.bnn.adaptive.AdaptivePredictor.pop_pass_counts`);
        ``max_samples`` is the fixed-``N`` budget those rows would have
        cost, so the snapshot's saved-pass fraction is
        ``1 - passes / budget``.
        """
        counts = np.asarray(pass_counts)
        self.record_adaptive_totals(int(counts.size), int(counts.sum()), max_samples)

    def record_adaptive_totals(self, rows: int, passes: int, max_samples: int) -> None:
        """Account adaptive work by pre-summed totals.

        The process-mode pool uses this: per-row pass counts stay in the
        worker process and only ``(rows, sum(passes))`` cross the response
        ring, so the parent folds totals instead of a vector.
        """
        if rows <= 0:
            return
        self._adaptive_rows_c.inc(int(rows))
        self._adaptive_passes_c.inc(int(passes))
        self._adaptive_budget_c.inc(int(rows) * int(max_samples))

    def record_shed(self, slo: str) -> None:
        self._shed_c.inc(slo=slo)

    def record_deadline_eviction(self, slo: str) -> None:
        self._deadline_c.inc(slo=slo)

    def record_restart(self, cause: str) -> None:
        self._restarts_c.inc(cause=cause)

    def record_stale(self) -> None:
        self._stale_c.inc()

    def record_degraded(self, rows: int) -> None:
        self._degraded_c.inc(int(rows))

    def record_queue_depth(self, depth: int) -> None:
        # The read-modify-write on the high-water mark needs the metrics
        # lock: two concurrent submits must not regress the maximum.
        with self._lock:
            self._queue_depth_g.set(depth)
            if depth > self.max_queue_depth:
                self._queue_depth_max_g.set(depth)

    # ------------------------------------------------------------------
    # Weight-stack cache fold-in
    # ------------------------------------------------------------------
    def attach_stack_cache(self, stack_cache) -> None:
        """Surface a :class:`~repro.serving.weight_stack.WeightStackCache`'s
        hits/misses/single-flight waits/evictions in the snapshot, the
        render block, and the registry exposition (live, at read time)."""
        self._stack_cache = stack_cache
        self.registry.gauge(
            "service_stack_cache_entries",
            "Cached weight-stack ensembles",
            fn=lambda: len(stack_cache),
        )

    def attach_admission(self, controller) -> None:
        """Expose an :class:`~repro.serving.resilience.AdmissionController`'s
        live pressure signal and overload-ladder position as registry
        gauges (read lazily at scrape time)."""
        self.registry.gauge(
            "service_pressure_seconds",
            "EWMA queue-wait pressure driving admission control",
            fn=controller.pressure,
        )
        self.registry.gauge(
            "service_degrade_level",
            "Overload-ladder position (0 full N, 1 half, 2 floor)",
            fn=lambda: float(controller.degrade_level()),
        )

    def attach_process_pool(self, pool) -> None:
        """Fold a :class:`~repro.serving.procpool.ProcessWorkerPool`'s
        cross-process control-block counters into the snapshot and expose
        its live-worker count as a registry gauge (read at scrape time)."""
        self._process_pool = pool
        self.registry.gauge(
            "service_process_workers_live",
            "Process workers currently alive",
            fn=lambda: float(pool.live_workers()),
        )
        self.registry.gauge(
            "service_process_inference_seconds",
            "Cumulative in-worker inference time across process workers",
            fn=lambda: float(pool.process_counters()["inference_s"]),
        )

    def _process_snapshot(self) -> dict[str, object]:
        pool = self._process_pool
        if pool is None:
            return {}
        counters = pool.process_counters()
        return {
            "process_workers_live": int(pool.live_workers()),
            "process_batches_done": int(counters["batches_done"]),
            "process_rows_done": int(counters["rows_done"]),
            "process_inference_s": float(counters["inference_s"]),
        }

    def _stack_snapshot(self) -> dict[str, int]:
        cache = self._stack_cache
        if cache is None:
            return {
                "stack_cache_hits": 0,
                "stack_cache_misses": 0,
                "stack_cache_waits": 0,
                "stack_cache_evictions": 0,
            }
        # Mirror the live values into the registry counter so a scrape
        # sees them without the cache holding a registry reference.
        for event, value in (
            ("hit", cache.hits),
            ("miss", cache.misses),
            ("wait", cache.waits),
            ("eviction", cache.evictions),
        ):
            current = self._stack_c.value(event=event)
            if value > current:
                self._stack_c.inc(value - current, event=event)
        return {
            "stack_cache_hits": int(cache.hits),
            "stack_cache_misses": int(cache.misses),
            "stack_cache_waits": int(cache.waits),
            "stack_cache_evictions": int(cache.evictions),
        }

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latency_percentiles(self) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` in seconds (0.0 if empty)."""
        with self._lock:
            filled = min(self._latency_count, self._latencies.size)
            window = self._latencies[:filled].copy()
        return percentile_dict(window)

    def batch_histogram(self) -> dict[int, int]:
        """Batch size → number of batches dispatched at that size."""
        return dict(
            sorted(
                (int(size), int(count))
                for (size,), count in self._batch_size_c.series().items()
            )
        )

    def mean_batch_size(self) -> float:
        batches = self.batches
        return self.batch_rows / batches if batches else 0.0

    def cache_hit_rate(self) -> float:
        hits, misses = self.cache_hits, self.cache_misses
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict[str, object]:
        """Plain-value view of every counter plus derived statistics."""
        percentiles = self.latency_percentiles()
        histogram = self.batch_histogram()
        mean_batch = self.mean_batch_size()
        hit_rate = self.cache_hit_rate()
        adaptive_rows = self.adaptive_rows
        adaptive_passes = self.adaptive_passes
        adaptive_budget = self.adaptive_pass_budget
        mean_passes = adaptive_passes / adaptive_rows if adaptive_rows else 0.0
        saved = 1.0 - adaptive_passes / adaptive_budget if adaptive_budget else 0.0
        snap: dict[str, object] = {
            "requests_served": self.requests_served,
            "requests_failed": self.requests_failed,
            "overloads": self.overloads,
            "batches": self.batches,
            "mean_batch_size": mean_batch,
            "batch_histogram": histogram,
            "latency_s": percentiles,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": hit_rate,
            "max_queue_depth": self.max_queue_depth,
            "last_queue_depth": self.last_queue_depth,
            "adaptive_rows": adaptive_rows,
            "adaptive_passes": adaptive_passes,
            "adaptive_mean_passes": mean_passes,
            "adaptive_saved_fraction": saved,
            "shed": self.shed,
            "shed_by_class": {
                slo: int(count)
                for (slo,), count in sorted(self._shed_c.series().items())
            },
            "deadline_evictions": self.deadline_evictions,
            "worker_restarts": self.worker_restarts,
            "stale_serves": self.stale_serves,
            "degraded_rows": self.degraded_rows,
        }
        snap.update(self._stack_snapshot())
        snap.update(self._process_snapshot())
        return snap

    def render(self) -> str:
        """Aligned text block of :meth:`snapshot` for CLI output."""
        snap = self.snapshot()
        latency = snap["latency_s"]
        histogram = ", ".join(
            f"{size}x{count}" for size, count in snap["batch_histogram"].items()
        )
        lines = [
            f"requests served : {snap['requests_served']}",
            f"requests failed : {snap['requests_failed']}",
            f"overload drops  : {snap['overloads']}",
            f"batches         : {snap['batches']} (mean size {snap['mean_batch_size']:.1f})",
            f"batch histogram : {histogram or '(none)'}",
            f"latency         : {format_latency(latency)}",
            f"cache           : {snap['cache_hits']} hits / {snap['cache_misses']} misses "
            f"({snap['cache_hit_rate'] * 100.0:.1f}% hit rate)",
            f"queue depth     : max {snap['max_queue_depth']}, last {snap['last_queue_depth']}",
        ]
        if self._stack_cache is not None:
            lines.append(
                f"stack cache     : {snap['stack_cache_hits']} hits / "
                f"{snap['stack_cache_misses']} misses, "
                f"{snap['stack_cache_waits']} single-flight waits, "
                f"{snap['stack_cache_evictions']} evictions"
            )
        if snap["adaptive_rows"]:
            lines.append(
                f"adaptive        : {snap['adaptive_rows']} rows, "
                f"mean {snap['adaptive_mean_passes']:.1f} passes "
                f"({snap['adaptive_saved_fraction'] * 100.0:.1f}% passes saved)"
            )
        if snap["shed"] or snap["deadline_evictions"]:
            by_class = ", ".join(
                f"{slo}x{count}" for slo, count in snap["shed_by_class"].items()
            )
            lines.append(
                f"resilience      : {snap['shed']} shed ({by_class or 'none'}), "
                f"{snap['deadline_evictions']} deadline evictions"
            )
        if self._process_pool is not None:
            lines.append(
                f"process pool    : {snap['process_workers_live']} live workers, "
                f"{snap['process_batches_done']} batches / "
                f"{snap['process_rows_done']} rows in-worker, "
                f"{snap['process_inference_s']:.2f}s inference"
            )
        if snap["worker_restarts"] or snap["stale_serves"] or snap["degraded_rows"]:
            lines.append(
                f"degradation     : {snap['worker_restarts']} worker restarts, "
                f"{snap['stale_serves']} stale serves, "
                f"{snap['degraded_rows']} degraded rows"
            )
        return "\n".join(lines)
