"""Service metrics: latency percentiles, batch histogram, queue/cache stats.

Everything a load test needs to judge the micro-batcher: request latency
(p50/p95/p99 over a bounded ring of recent samples), the batch-size
histogram (is coalescing actually happening, or is the service degenerating
into per-request calls?), queue depth (headroom before
:class:`~repro.errors.ServiceOverloaded`), cache hit rate, and overload
drops.  All counters are thread-safe; reading is done through
:meth:`ServiceMetrics.snapshot`, which returns plain Python values safe to
serialise or diff.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ConfigurationError

#: Percentiles reported by :meth:`ServiceMetrics.latency_percentiles`.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


def percentile_dict(samples) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for a latency sample list.

    All zeros when ``samples`` is empty.  Shared by the service metrics
    and the load generator so both report the same percentile set.
    """
    if len(samples) == 0:
        return {f"p{int(p)}": 0.0 for p in LATENCY_PERCENTILES}
    values = np.percentile(samples, LATENCY_PERCENTILES)
    return {f"p{int(p)}": float(v) for p, v in zip(LATENCY_PERCENTILES, values)}


def format_latency(latency: dict[str, float]) -> str:
    """Render a :func:`percentile_dict` as ``p50=..ms p95=..ms p99=..ms``."""
    return "  ".join(
        f"p{int(p)}={latency[f'p{int(p)}'] * 1e3:.2f}ms" for p in LATENCY_PERCENTILES
    )


class ServiceMetrics:
    """Thread-safe accumulator for serving-side observability.

    Parameters
    ----------
    latency_window:
        Ring-buffer size for latency samples; percentiles are computed
        over the most recent ``latency_window`` requests.
    """

    def __init__(self, latency_window: int = 8192) -> None:
        if latency_window < 1:
            raise ConfigurationError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self._lock = threading.Lock()
        self._latencies = np.zeros(latency_window)
        self._latency_count = 0
        self.requests_served = 0
        self.requests_failed = 0
        self.overloads = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.batch_rows = 0
        self._batch_histogram: dict[int, int] = {}
        self.max_queue_depth = 0
        self.last_queue_depth = 0
        # Adaptive early exit: rows served adaptively, MC passes actually
        # run for them, and the fixed-N pass budget they would have cost.
        self.adaptive_rows = 0
        self.adaptive_passes = 0
        self.adaptive_pass_budget = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies[self._latency_count % self._latencies.size] = seconds
            self._latency_count += 1
            self.requests_served += 1

    def record_failure(self) -> None:
        with self._lock:
            self.requests_failed += 1

    def record_overload(self) -> None:
        with self._lock:
            self.overloads += 1

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batch_rows += size
            self._batch_histogram[size] = self._batch_histogram.get(size, 0) + 1

    def record_adaptive(self, pass_counts, max_samples: int) -> None:
        """Account one adaptive batch's per-row MC pass counts.

        ``pass_counts`` is the per-row vector the early-exit predictor
        retains (:meth:`~repro.bnn.adaptive.AdaptivePredictor.pop_pass_counts`);
        ``max_samples`` is the fixed-``N`` budget those rows would have
        cost, so the snapshot's saved-pass fraction is
        ``1 - passes / budget``.
        """
        counts = np.asarray(pass_counts)
        with self._lock:
            self.adaptive_rows += int(counts.size)
            self.adaptive_passes += int(counts.sum())
            self.adaptive_pass_budget += int(counts.size) * int(max_samples)

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.last_queue_depth = depth
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latency_percentiles(self) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` in seconds (0.0 if empty)."""
        with self._lock:
            filled = min(self._latency_count, self._latencies.size)
            window = self._latencies[:filled].copy()
        return percentile_dict(window)

    def batch_histogram(self) -> dict[int, int]:
        """Batch size → number of batches dispatched at that size."""
        with self._lock:
            return dict(sorted(self._batch_histogram.items()))

    def mean_batch_size(self) -> float:
        with self._lock:
            return self.batch_rows / self.batches if self.batches else 0.0

    def cache_hit_rate(self) -> float:
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def snapshot(self) -> dict[str, object]:
        """Plain-value view of every counter plus derived statistics."""
        percentiles = self.latency_percentiles()
        histogram = self.batch_histogram()
        mean_batch = self.mean_batch_size()
        hit_rate = self.cache_hit_rate()
        with self._lock:
            mean_passes = (
                self.adaptive_passes / self.adaptive_rows if self.adaptive_rows else 0.0
            )
            saved = (
                1.0 - self.adaptive_passes / self.adaptive_pass_budget
                if self.adaptive_pass_budget
                else 0.0
            )
            return {
                "requests_served": self.requests_served,
                "requests_failed": self.requests_failed,
                "overloads": self.overloads,
                "batches": self.batches,
                "mean_batch_size": mean_batch,
                "batch_histogram": histogram,
                "latency_s": percentiles,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": hit_rate,
                "max_queue_depth": self.max_queue_depth,
                "last_queue_depth": self.last_queue_depth,
                "adaptive_rows": self.adaptive_rows,
                "adaptive_passes": self.adaptive_passes,
                "adaptive_mean_passes": mean_passes,
                "adaptive_saved_fraction": saved,
            }

    def render(self) -> str:
        """Aligned text block of :meth:`snapshot` for CLI output."""
        snap = self.snapshot()
        latency = snap["latency_s"]
        histogram = ", ".join(
            f"{size}x{count}" for size, count in snap["batch_histogram"].items()
        )
        lines = [
            f"requests served : {snap['requests_served']}",
            f"requests failed : {snap['requests_failed']}",
            f"overload drops  : {snap['overloads']}",
            f"batches         : {snap['batches']} (mean size {snap['mean_batch_size']:.1f})",
            f"batch histogram : {histogram or '(none)'}",
            f"latency         : {format_latency(latency)}",
            f"cache           : {snap['cache_hits']} hits / {snap['cache_misses']} misses "
            f"({snap['cache_hit_rate'] * 100.0:.1f}% hit rate)",
            f"queue depth     : max {snap['max_queue_depth']}, last {snap['last_queue_depth']}",
        ]
        if snap["adaptive_rows"]:
            lines.append(
                f"adaptive        : {snap['adaptive_rows']} rows, "
                f"mean {snap['adaptive_mean_passes']:.1f} passes "
                f"({snap['adaptive_saved_fraction'] * 100.0:.1f}% passes saved)"
            )
        return "\n".join(lines)
