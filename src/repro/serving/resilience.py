"""Resilience layer: SLO classes, admission control, degradation, chaos.

The serving stack's overload story before this module was a single bit:
the bounded queue either accepts a request or raises
:class:`~repro.errors.ServiceOverloaded`.  This module turns that bit
into a policy surface (see ``docs/RESILIENCE.md``):

* **SLO classes** — every request carries one of :data:`SLO_CLASSES`
  (``interactive`` / ``batch`` / ``best_effort``) and an optional
  deadline.  Expired requests are *evicted*, not served late: the batcher
  drops them at pop time and workers re-check at execution time, failing
  the ticket (and every coalesced follower riding it) with a typed
  :class:`~repro.errors.DeadlineExceeded`.
* **Admission control** — :class:`AdmissionController` measures queue
  pressure as an EWMA of observed queue-wait seconds (perf_counter
  timebase, the same clock the tracer uses) and sheds the cheap classes
  first: ``best_effort`` at a low pressure threshold, ``batch`` at a
  higher one, ``interactive`` never — until the queue's physical capacity
  (the hard cap the batcher already enforces).  A token bucket per shed
  class keeps a trickle of admissions flowing so a shed class still makes
  progress and the pressure signal stays fresh.
* **Graceful degradation** — the same pressure signal drives an overload
  ladder over Monte-Carlo pass counts: level 0 serves the configured
  ``N``, level 1 serves ``N/2``, level 2 serves ``min_passes`` — all
  through the adaptive ``chunk_probs`` seam, so a degraded batch runs the
  *same first passes* the full batch would (matched ensembles under
  shared weight stacks, which is what bounds the accuracy delta).  At the
  top of the ladder a service may also answer from version-stale cache
  rows (flagged on the ticket) instead of computing at all.
* **Chaos** — :class:`FaultPlan` is a scripted, seedable schedule of
  worker faults (kill / stall / delay at the k-th batch of a worker
  slot) plus open-loop arrival bursts, so supervision and shedding are
  reproducibly testable; ``benchmarks/bench_serving.py --chaos`` gates
  "no hung requests, bounded interactive p99, goodput floor" on it.

Everything here is **off by default**: ``ServiceConfig.resilience=None``
keeps the request path bit-for-bit identical to the pre-resilience
service.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import AdmissionShed, ConfigurationError, InjectedWorkerKill
from repro.utils.seeding import spawn_generator

__all__ = [
    "SLO_CLASSES",
    "FAULT_ACTIONS",
    "InjectedWorkerKill",
    "ResilienceConfig",
    "AdmissionController",
    "chunk_seam",
    "FaultEvent",
    "FaultPlan",
]

#: Request classes, in shed order (last shed first).
SLO_CLASSES = ("interactive", "batch", "best_effort")

#: Fault actions a :class:`FaultPlan` may script.  ``kill`` and ``stall``
#: exist in both worker modes (thread mode raises
#: :class:`~repro.errors.InjectedWorkerKill`; process mode delivers a real
#: ``SIGKILL``); ``exit`` is process-level only in effect — an abrupt
#: ``os._exit`` that skips finalizers, the "worker segfaulted" rehearsal —
#: and degrades to a kill in thread mode (a thread cannot exit abruptly
#: without taking the process with it).
FAULT_ACTIONS = ("kill", "stall", "delay", "exit")


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs of the resilience layer (``docs/RESILIENCE.md``).

    Attached to :class:`~repro.serving.service.ServiceConfig` via its
    ``resilience`` field; ``None`` there disables every behavior in this
    module.
    """

    #: Per-class default deadlines (seconds after submit); ``None`` means
    #: no deadline unless the caller passes one explicitly.
    interactive_deadline_s: float | None = None
    batch_deadline_s: float | None = None
    best_effort_deadline_s: float | None = None
    #: EWMA smoothing factor of the queue-pressure signal.
    ewma_alpha: float = 0.3
    #: Pressure (EWMA queue-wait seconds) above which each class sheds.
    #: ``interactive`` has no threshold — only the queue's hard cap.
    best_effort_shed_s: float = 0.05
    batch_shed_s: float = 0.25
    #: Queue-depth fractions (of capacity) that also trigger shedding,
    #: covering total-wedge scenarios where no batches complete and the
    #: EWMA goes stale.
    best_effort_depth_frac: float = 0.5
    batch_depth_frac: float = 0.85
    #: Token-bucket trickle for shed classes: admissions per second and
    #: burst size that pass even under pressure (0 disables the trickle).
    trickle_rps: float = 2.0
    trickle_burst: float = 2.0
    #: Overload ladder: pressure above ``degrade_half_s`` serves N/2
    #: passes, above ``degrade_floor_s`` serves ``min_passes``.
    degrade_half_s: float = 0.08
    degrade_floor_s: float = 0.35
    min_passes: int = 4
    #: At ladder level 2, answer from the previous model version's cached
    #: rows when available (flagged ``stale`` on the ticket).
    serve_stale: bool = True
    #: Supervision: a worker holding one batch longer than this is
    #: declared stalled, its tickets failed over, and its slot restarted.
    batch_timeout_s: float = 5.0
    #: Supervisor poll cadence (also the heartbeat granularity).
    heartbeat_interval_s: float = 0.05
    #: Ceiling on supervised restarts over the pool's lifetime.
    max_restarts: int = 16

    def __post_init__(self) -> None:
        for name in (
            "interactive_deadline_s", "batch_deadline_s", "best_effort_deadline_s",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be > 0, got {value}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        for name in (
            "best_effort_shed_s", "batch_shed_s",
            "degrade_half_s", "degrade_floor_s",
            "batch_timeout_s", "heartbeat_interval_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        for name in ("best_effort_depth_frac", "batch_depth_frac"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
        if self.trickle_rps < 0 or self.trickle_burst < 0:
            raise ConfigurationError("trickle_rps/trickle_burst must be >= 0")
        if self.min_passes < 1:
            raise ConfigurationError(
                f"min_passes must be >= 1, got {self.min_passes}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.degrade_floor_s < self.degrade_half_s:
            raise ConfigurationError(
                "degrade_floor_s must be >= degrade_half_s "
                f"({self.degrade_floor_s} < {self.degrade_half_s})"
            )

    def class_deadline_s(self, slo: str) -> float | None:
        """Default deadline of ``slo`` (``None`` = no deadline)."""
        if slo == "interactive":
            return self.interactive_deadline_s
        if slo == "batch":
            return self.batch_deadline_s
        if slo == "best_effort":
            return self.best_effort_deadline_s
        raise ConfigurationError(
            f"unknown SLO class {slo!r}; expected one of {', '.join(SLO_CLASSES)}"
        )


class _TokenBucket:
    """Plain token bucket; the owning controller's lock serialises access."""

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp: float | None = None

    def try_take(self, now: float) -> bool:
        if self.rate <= 0:
            return False
        if self.stamp is None:
            self.stamp = now
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Pressure-driven per-class admission and the degradation ladder.

    Pressure is an EWMA of queue-wait samples reported by workers (the
    gap between a batch's youngest arrival and its execution start, on
    the perf_counter timebase).  ``admit`` sheds ``best_effort`` first,
    then ``batch``; ``interactive`` is only ever rejected by the queue's
    physical capacity.  The same signal positions the overload ladder
    that :meth:`effective_passes` exposes to workers.
    """

    def __init__(
        self,
        config: ResilienceConfig,
        capacity: int,
        clock=time.perf_counter,
    ) -> None:
        self.config = config
        self.capacity = int(capacity)
        self.clock = clock
        self._lock = threading.Lock()
        self._pressure = 0.0
        self._forced_level: int | None = None
        self._buckets = {
            "best_effort": _TokenBucket(config.trickle_rps, config.trickle_burst),
            "batch": _TokenBucket(config.trickle_rps, config.trickle_burst),
        }

    # ------------------------------------------------------------------
    def observe_queue_wait(self, seconds: float) -> None:
        """Fold one measured queue-wait sample into the pressure EWMA."""
        sample = max(0.0, float(seconds))
        alpha = self.config.ewma_alpha
        with self._lock:
            self._pressure += alpha * (sample - self._pressure)

    def pressure(self) -> float:
        """Current EWMA queue-wait estimate (seconds)."""
        with self._lock:
            return self._pressure

    # ------------------------------------------------------------------
    def _class_limits(self, slo: str) -> tuple[float, float] | None:
        """(pressure threshold, depth fraction) for a shed-able class."""
        config = self.config
        if slo == "best_effort":
            return config.best_effort_shed_s, config.best_effort_depth_frac
        if slo == "batch":
            return config.batch_shed_s, config.batch_depth_frac
        return None  # interactive: hard cap only

    def admit(self, slo: str, queue_depth: int) -> None:
        """Admit or shed one request of class ``slo``.

        Raises :class:`~repro.errors.AdmissionShed` when the class's
        pressure (or depth) threshold is exceeded and its trickle bucket
        is empty; returns silently otherwise.
        """
        limits = self._class_limits(slo)
        if limits is None:
            return
        threshold_s, depth_frac = limits
        with self._lock:
            pressure = self._pressure
            pressured = (
                pressure > threshold_s
                or queue_depth >= depth_frac * self.capacity
            )
            if not pressured:
                return
            if self._buckets[slo].try_take(self.clock()):
                return
        raise AdmissionShed(
            f"{slo} request shed under queue pressure "
            f"(EWMA wait {pressure * 1e3:.1f}ms, threshold "
            f"{threshold_s * 1e3:.0f}ms, depth {queue_depth}); back off"
        )

    # ------------------------------------------------------------------
    def force_level(self, level: int | None) -> None:
        """Pin the ladder (tests/benchmarks); ``None`` resumes tracking."""
        if level is not None and not 0 <= level <= 2:
            raise ConfigurationError(f"ladder level must be 0..2, got {level}")
        with self._lock:
            self._forced_level = level

    def degrade_level(self) -> int:
        """Current overload-ladder position: 0 (full N), 1 (N/2), 2 (floor)."""
        with self._lock:
            if self._forced_level is not None:
                return self._forced_level
            pressure = self._pressure
        if pressure > self.config.degrade_floor_s:
            return 2
        if pressure > self.config.degrade_half_s:
            return 1
        return 0

    def effective_passes(self, n_samples: int) -> int:
        """MC passes to run at the current ladder level (never > ``n_samples``)."""
        level = self.degrade_level()
        if level == 0:
            return n_samples
        floor = max(1, min(self.config.min_passes, n_samples))
        if level == 1:
            return max(n_samples // 2, floor)
        return floor


def chunk_seam(predictor):
    """The ``chunk_probs(x, start, size)`` seam of ``predictor``, if any.

    Direct predictors expose it themselves; an
    :class:`~repro.bnn.adaptive.AdaptivePredictor` wraps a base that does.
    Returns ``None`` when the predictor cannot serve partial passes (the
    worker then serves full ``N`` even under overload).
    """
    seam = getattr(predictor, "chunk_probs", None)
    if seam is not None:
        return seam
    base = getattr(predictor, "base", None)
    if base is not None:
        return getattr(base, "chunk_probs", None)
    return None


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault: ``action`` at the ``at_batch``-th batch of a slot.

    ``at_batch`` counts batches executed on the worker *slot* (across
    restarts) starting at 1, so a schedule stays meaningful after a
    supervised restart; ``incarnation`` optionally pins the event to one
    incarnation of the slot.
    """

    worker: int
    at_batch: int
    action: str
    seconds: float = 0.0
    incarnation: int | None = None

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {', '.join(FAULT_ACTIONS)}"
            )
        if self.at_batch < 1:
            raise ConfigurationError(
                f"at_batch must be >= 1, got {self.at_batch}"
            )
        if self.action in ("stall", "delay") and self.seconds <= 0:
            raise ConfigurationError(
                f"{self.action} events need seconds > 0, got {self.seconds}"
            )


class FaultPlan:
    """Deterministic chaos schedule for workers and the load generator.

    ``events`` script worker faults (see :class:`FaultEvent`); ``bursts``
    are ``(start_s, end_s, multiplier)`` windows the open-loop generator
    applies to its arrival rate (burst overload).  The plan keeps one
    batch counter per worker slot, so two runs against the same seed and
    plan fire faults at identical points — the property the restart-
    determinism test asserts.
    """

    def __init__(self, events=(), bursts=()) -> None:
        self.events = tuple(events)
        self.bursts = tuple(
            (float(start), float(end), float(mult)) for start, end, mult in bursts
        )
        for start, end, mult in self.bursts:
            if end <= start or mult <= 0:
                raise ConfigurationError(
                    f"burst windows need end > start and multiplier > 0, "
                    f"got ({start}, {end}, {mult})"
                )
        self._lock = threading.Lock()
        self._counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    def event_at(self, worker: int, count: int, incarnation: int) -> FaultEvent | None:
        """The event scheduled for the ``count``-th batch of a slot, if any.

        Pure lookup — no counter state.  Process-mode workers use this
        directly: each worker derives ``count`` from its slot's cumulative
        batches-started counter (persisted in the parent-owned control
        block across restarts), so the schedule keeps the thread-mode
        "``at_batch`` counts across restarts" semantics even though every
        incarnation rebuilds the plan object from plain tuples.
        """
        for event in self.events:
            if (
                event.worker == worker
                and event.at_batch == count
                and (event.incarnation is None or event.incarnation == incarnation)
            ):
                return event
        return None

    def fire(self, worker: int, incarnation: int) -> FaultEvent | None:
        """Advance the slot's batch counter; return the matching event, if any."""
        with self._lock:
            count = self._counts.get(worker, 0) + 1
            self._counts[worker] = count
        return self.event_at(worker, count, incarnation)

    def plain_events(self) -> tuple[tuple[int, int, str, float, int | None], ...]:
        """The schedule as plain tuples — what crosses the process seam.

        A :class:`FaultPlan` itself holds a ``threading.Lock`` and must
        not be shipped to (or captured by) a worker process entry
        function; the worker rebuilds an equivalent plan from these tuples
        via :meth:`from_plain_events`.
        """
        return tuple(
            (e.worker, e.at_batch, e.action, e.seconds, e.incarnation)
            for e in self.events
        )

    @classmethod
    def from_plain_events(cls, plain) -> "FaultPlan":
        """Rebuild a plan from :meth:`plain_events` tuples (worker side)."""
        return cls(
            events=[
                FaultEvent(worker, at_batch, action, seconds, incarnation)
                for worker, at_batch, action, seconds, incarnation in plain
            ]
        )

    def rate_multiplier(self, elapsed_s: float) -> float:
        """Open-loop arrival-rate multiplier at ``elapsed_s`` into the run."""
        for start, end, mult in self.bursts:
            if start <= elapsed_s < end:
                return mult
        return 1.0

    def reset(self) -> None:
        """Rewind the per-slot batch counters (for replaying the plan)."""
        with self._lock:
            self._counts.clear()

    # ------------------------------------------------------------------
    @classmethod
    def random_plan(
        cls,
        seed: int,
        *,
        workers: int,
        horizon_batches: int = 32,
        kill_prob: float = 0.05,
        stall_prob: float = 0.05,
        stall_s: float = 0.5,
    ) -> "FaultPlan":
        """Seeded random schedule over ``workers`` slots (chaos sweeps)."""
        rng = spawn_generator(seed, "fault-plan")
        events = []
        for worker in range(workers):
            for batch_index in range(1, horizon_batches + 1):
                draw = rng.random()
                if draw < kill_prob:
                    events.append(FaultEvent(worker, batch_index, "kill"))
                elif draw < kill_prob + stall_prob:
                    events.append(
                        FaultEvent(worker, batch_index, "stall", seconds=stall_s)
                    )
        return cls(events=events)
