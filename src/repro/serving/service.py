"""`BnnService`: the synchronous request/response façade over the stack.

Wiring::

    submit(model, image) ──► PredictionCache ──hit──► resolved ticket
                                  │ miss
                                  ▼
                            MicroBatcher (bounded queue, ServiceOverloaded)
                                  │ coalesce ≤ max_batch same-model rows
                                  ▼
                 WorkerPool / caller thread (ServingWorker.execute)
                                  │ one predict_proba_batched call
                                  ▼
                     tickets resolved + cache filled + metrics recorded

Two execution modes share that path:

* ``workers >= 1`` — a :class:`~repro.serving.workers.WorkerPool` drains
  the queue in the background; ``submit`` returns immediately and the
  ticket resolves concurrently.  This is the serving mode the open-loop
  load generator targets.
* ``workers == 0`` — **synchronous mode**: no threads; the queue drains on
  the caller's thread whenever a full batch accumulates or
  :meth:`BnnService.flush` / :meth:`BnnService.predict_many` runs.
  Deterministic by construction (one worker stream, one dispatch order),
  which is what the bit-for-bit equivalence tests and the closed-loop
  benchmark use.
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.bnn.bayesian import BayesianNetwork
from repro.errors import AdmissionShed, ConfigurationError, ServiceOverloaded
from repro.obs.trace import Tracer
from repro.serving.batcher import MicroBatcher, PredictionTicket
from repro.serving.cache import PredictionCache
from repro.serving.metrics import ServiceMetrics
from repro.serving.registry import ModelEntry, ModelRegistry
from repro.serving.resilience import (
    SLO_CLASSES,
    AdmissionController,
    FaultPlan,
    ResilienceConfig,
)
from repro.serving.procpool import ProcessWorkerPool
from repro.serving.weight_stack import WeightStackCache
from repro.serving.workers import ServingWorker, WorkerPool

#: Default ceiling on how long a caller waits for one prediction.
DEFAULT_RESULT_TIMEOUT_S = 60.0


@dataclass
class ServiceConfig:
    """Tuning knobs of the serving stack (see ``docs/SERVING.md``)."""

    #: Micro-batching window: rows coalesced into one MC call.
    max_batch: int = 64
    #: How long a worker holds a partial batch open waiting for more rows.
    max_wait_ms: float = 2.0
    #: Bounded queue size; beyond it ``submit`` raises ``ServiceOverloaded``.
    queue_capacity: int = 1024
    #: Background serving workers; 0 = synchronous caller-driven mode.
    workers: int = 2
    #: ``"thread"`` (default, bit-for-bit the historical stack) or
    #: ``"process"`` — crash-isolated OS-process workers over shared
    #: memory (:mod:`repro.serving.procpool`).  Process mode requires
    #: ``workers >= 1``.
    worker_mode: str = "thread"
    #: Process-mode start method (``None`` = ``"spawn"``, the only method
    #: safe regardless of the service's own threads).
    process_start_method: str | None = None
    #: Process-mode ring depth (messages in flight per worker direction).
    ring_slots: int = 4
    #: Process-mode ring slot payload capacity; must fit one batch of
    #: ``max_batch`` float64 rows (and the result rows coming back).
    ring_slot_bytes: int = 1 << 20
    #: Prediction-cache rows; 0 disables caching.
    cache_capacity: int = 4096
    #: Shared sampled weight-stack ensembles kept live; 0 makes any
    #: ``share_weight_stacks`` model a configuration error.
    stack_cache_capacity: int = 8
    #: Latency ring-buffer length for the percentile metrics.
    latency_window: int = 8192
    #: Request-tracing span ring size; 0 disables tracing entirely (no
    #: spans are allocated and the request path pays nothing).
    trace_capacity: int = 0
    #: Resilience layer (SLO deadlines, admission control, degradation,
    #: worker supervision — see ``docs/RESILIENCE.md``); ``None`` keeps
    #: the request path bit-for-bit identical to the pre-resilience stack.
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.trace_capacity < 0:
            raise ConfigurationError(
                f"trace_capacity must be >= 0, got {self.trace_capacity}"
            )
        if self.worker_mode not in ("thread", "process"):
            raise ConfigurationError(
                f"unknown worker_mode {self.worker_mode!r}; "
                "expected 'thread' or 'process'"
            )
        if self.worker_mode == "process" and self.workers == 0:
            raise ConfigurationError(
                "worker_mode='process' needs workers >= 1 (the synchronous "
                "mode runs on the caller's thread by definition)"
            )
        if self.ring_slots < 2:
            raise ConfigurationError(
                f"ring_slots must be >= 2, got {self.ring_slots}"
            )
        if self.ring_slot_bytes < 64:
            raise ConfigurationError(
                f"ring_slot_bytes must be >= 64, got {self.ring_slot_bytes}"
            )


class BnnService:
    """High-throughput BNN prediction service over a model registry."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        config: ServiceConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry()
        self.config = config if config is not None else ServiceConfig()
        if fault_plan is not None and self.config.resilience is None:
            raise ConfigurationError(
                "a FaultPlan requires ServiceConfig.resilience (the chaos "
                "harness exercises the supervision it configures)"
            )
        self.fault_plan = fault_plan
        self.metrics = ServiceMetrics(latency_window=self.config.latency_window)
        self.cache = PredictionCache(capacity=self.config.cache_capacity)
        self.stack_cache = WeightStackCache(capacity=self.config.stack_cache_capacity)
        self.metrics.attach_stack_cache(self.stack_cache)
        self.admission: AdmissionController | None = None
        if self.config.resilience is not None:
            self.admission = AdmissionController(
                self.config.resilience, capacity=self.config.queue_capacity
            )
            self.metrics.attach_admission(self.admission)
        self.tracer: Tracer | None = (
            Tracer(capacity=self.config.trace_capacity)
            if self.config.trace_capacity > 0
            else None
        )
        self.batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            capacity=self.config.queue_capacity,
        )
        if self.config.worker_mode == "process":
            self._pool: "WorkerPool | ProcessWorkerPool | None" = ProcessWorkerPool(
                self.registry,
                self.batcher,
                self.cache,
                self.metrics,
                workers=self.config.workers,
                stack_cache=self.stack_cache,
                tracer=self.tracer,
                resilience=self.config.resilience,
                admission=self.admission,
                fault_plan=fault_plan,
                ring_slots=self.config.ring_slots,
                ring_slot_bytes=self.config.ring_slot_bytes,
                start_method=self.config.process_start_method,
            )
            self.metrics.attach_process_pool(self._pool)
            self._sync_worker = None
        elif self.config.workers > 0:
            self._pool = WorkerPool(
                self.registry,
                self.batcher,
                self.cache,
                self.metrics,
                workers=self.config.workers,
                stack_cache=self.stack_cache,
                tracer=self.tracer,
                resilience=self.config.resilience,
                admission=self.admission,
                fault_plan=fault_plan,
            )
            self._sync_worker = None
        else:
            self._pool = None
            # Unstarted thread object used purely as the inline executor,
            # so both modes run the identical batch path with worker 0's
            # reproducible stream.
            self._sync_worker = ServingWorker(
                0, self.registry, self.batcher, self.cache, self.metrics,
                self.stack_cache, self.tracer,
                admission=self.admission, fault_plan=fault_plan,
            )
        # Previous registry version per model whose cache rows were kept
        # alive for stale serving (reload() under serve_stale).  Plain
        # dict: GIL-atomic get/set, written only by reload()/evict().
        self._stale_versions: dict[str, int] = {}
        # In-flight coalescing (cache-enabled services only): cache key ->
        # the pending primary ticket, so identical concurrent requests
        # share one computed row instead of racing for the cache slot.
        self._pending_lock = threading.Lock()
        self._pending: dict[tuple, PredictionTicket] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Registration passthroughs (cache-coherent wrappers over the registry)
    # ------------------------------------------------------------------
    def register_network(self, name: str, network: BayesianNetwork, **kwargs) -> ModelEntry:
        return self.registry.register_network(name, network, **kwargs)

    def register_file(self, name: str, path: "str | pathlib.Path", **kwargs) -> ModelEntry:
        return self.registry.register_file(name, path, **kwargs)

    def register_quantized(self, name: str, posterior, **kwargs) -> ModelEntry:
        """Serve exported parameters through the fixed-point hardware model."""
        return self.registry.register_quantized(name, posterior, **kwargs)

    def register_quantized_file(
        self, name: str, path: "str | pathlib.Path", **kwargs
    ) -> ModelEntry:
        return self.registry.register_quantized_file(name, path, **kwargs)

    def reload(self, name: str) -> ModelEntry:
        """Re-read a file-backed model; eagerly drops its cached rows
        and shared weight stacks.

        Under a resilience config with ``serve_stale`` the previous
        version's cached rows are *kept*: at the top of the overload
        ladder the service may answer from them (flagged ``stale`` on the
        ticket) instead of computing.  Version-keyed cache keys make the
        old rows unreachable by the normal lookup path, so correctness of
        fresh serving is unaffected.
        """
        resilience = self.config.resilience
        keep_stale = resilience is not None and resilience.serve_stale
        if keep_stale:
            self._stale_versions[name] = self.registry.get(name).version
        entry = self.registry.reload(name)
        if not keep_stale:
            self.cache.invalidate_model(name)
        self.stack_cache.invalidate_model(name)
        return entry

    def evict(self, name: str) -> None:
        self.registry.evict(name)
        self.cache.invalidate_model(name)
        self.stack_cache.invalidate_model(name)
        self._stale_versions.pop(name, None)
        if isinstance(self._pool, ProcessWorkerPool):
            # Release the parent-side shm bundles and (lazily) the
            # worker-side copies; versions are monotonic per name, so
            # correctness never depends on the notification landing.
            self._pool.evict_model(name)

    def refresh_weight_stacks(self, name: str) -> int:
        """Advance a shared-stack model to a fresh sampled ensemble.

        Bumps the model's weight-stack stream position (the next batch
        draws new epsilons at the advanced position) and drops its cached
        prediction rows, which were computed under the old ensemble.
        Returns the number of stream positions advanced (0 if the model
        has not served a shared batch yet).
        """
        advanced = self.stack_cache.advance(name)
        self.cache.invalidate_model(name)
        return advanced

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _check_row(self, entry: ModelEntry, x: np.ndarray) -> np.ndarray:
        # Always a private copy: submission is asynchronous, so a queued
        # row must not alias a caller buffer that may be reused before the
        # batch executes.
        row = np.array(x, dtype=np.float64)
        if row.ndim != 1 or row.shape[0] != entry.in_features:
            raise ConfigurationError(
                f"model {entry.name!r} expects a flat ({entry.in_features},) "
                f"input row, got shape {row.shape}"
            )
        return row

    def _coalesce_pending(self, key: tuple, ticket: PredictionTicket) -> PredictionTicket | None:
        """Return an in-flight ticket for ``key``, or register ``ticket``.

        With the cache enabled, the service promises that identical
        requests return identical rows between reloads; for *concurrent*
        identical requests the cache alone cannot keep that promise (both
        would miss and land in a batch as separate rows with different MC
        sample positions).  Coalescing onto the first pending ticket
        closes that window.  Counted as a cache hit in the metrics; the
        latency sample is recorded once, for the primary.
        """
        with self._pending_lock:
            existing = self._pending.get(key)
            if existing is not None and not existing.done():
                return existing
            self._pending[key] = ticket
            if len(self._pending) > 2 * self.config.queue_capacity:
                for done_key in [k for k, t in self._pending.items() if t.done()]:
                    del self._pending[done_key]
        return None

    def submit(
        self,
        model: str,
        x: np.ndarray,
        *,
        slo: str | None = None,
        deadline_s: float | None = None,
    ) -> PredictionTicket:
        """Enqueue one prediction request; returns a resolvable ticket.

        Raises :class:`~repro.errors.UnknownModelError` for unregistered
        models, :class:`~repro.errors.ConfigurationError` for shape
        mismatches, and :class:`~repro.errors.ServiceOverloaded` when the
        bounded queue is full (recorded in the metrics).  On a
        cache-enabled service, a request identical to one already in
        flight returns the in-flight ticket instead of queueing a
        duplicate row.

        On a resilience-enabled service (``ServiceConfig.resilience``) a
        request may carry an SLO class (default ``interactive``) and a
        deadline in seconds from now (default: the class deadline from the
        config).  Expired requests fail with
        :class:`~repro.errors.DeadlineExceeded`; shed ones with
        :class:`~repro.errors.AdmissionShed` (recorded per class).
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        resilience = self.config.resilience
        if resilience is None and (slo is not None or deadline_s is not None):
            raise ConfigurationError(
                "slo/deadline_s require ServiceConfig.resilience to be set"
            )
        slo_class = slo if slo is not None else "interactive"
        if slo_class not in SLO_CLASSES:
            raise ConfigurationError(
                f"unknown SLO class {slo_class!r}; "
                f"expected one of {', '.join(SLO_CLASSES)}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError(f"deadline_s must be > 0, got {deadline_s}")
        entry = self.registry.get(model)
        row = self._check_row(entry, x)
        ticket = PredictionTicket(model, slo=slo_class)
        if resilience is not None:
            limit = (
                deadline_s
                if deadline_s is not None
                else resilience.class_deadline_s(slo_class)
            )
            if limit is not None:
                ticket.deadline = ticket.created_at + limit
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(model, start=ticket.created_at)
            ticket.trace = span
        key: tuple | None = None
        if self.cache.capacity > 0:
            # Digesting the row and consulting the cache only matter on a
            # cache-enabled service; a disabled cache skips the whole path
            # (no per-request hashing, no misleading 0% hit-rate stream).
            lookup_start = time.perf_counter()
            key = PredictionCache.key(entry.name, entry.version, entry.n_samples, row)
            cached = self.cache.get(key)
            if cached is not None:
                self.metrics.record_cache(True)
                ticket.set_result(cached)
                self.metrics.record_latency(ticket.latency())
                if span is not None:
                    # A hit's whole lifetime IS the lookup: anchor the
                    # phase to the span window so coverage is exact even
                    # at microsecond scale.
                    span.add_phase("cache_lookup", ticket.completed_at - span.start)
                    span.cache_hit = True
                    tracer.finish(span, end=ticket.completed_at)
                return ticket
            in_flight = self._coalesce_pending(key, ticket)
            if in_flight is not None:
                self.metrics.record_cache(True)
                if span is not None:
                    # The caller rides the in-flight primary's ticket; this
                    # span covers only the submit-side lookup that found it.
                    now = time.perf_counter()
                    span.add_phase("cache_lookup", now - span.start)
                    span.cache_hit = True
                    span.mark("coalesced")
                    tracer.finish(span, end=now)
                return in_flight
            # We are now the pending primary — but a previous primary may
            # have completed (cache.put happens before its ticket resolves)
            # between the cache lookup above and the registration.  Re-read
            # the cache so a just-computed row is reused instead of being
            # recomputed and overwritten by a different MC draw.
            fresh = self.cache.peek(key)
            if fresh is not None:
                with self._pending_lock:
                    if self._pending.get(key) is ticket:
                        del self._pending[key]
                self.metrics.record_cache(True)
                ticket.set_result(fresh)
                self.metrics.record_latency(ticket.latency())
                if span is not None:
                    span.add_phase("cache_lookup", ticket.completed_at - span.start)
                    span.cache_hit = True
                    tracer.finish(span, end=ticket.completed_at)
                return ticket
            if (
                self.admission is not None
                and resilience.serve_stale
                and self.admission.degrade_level() >= 2
            ):
                # Top of the overload ladder: answer from the previous
                # model version's cached row (kept alive by reload()) if
                # one exists, flagged stale, instead of computing at all.
                stale_version = self._stale_versions.get(entry.name)
                if stale_version is not None:
                    stale_row = self.cache.peek(
                        PredictionCache.key(
                            entry.name, stale_version, entry.n_samples, row
                        )
                    )
                    if stale_row is not None:
                        with self._pending_lock:
                            if self._pending.get(key) is ticket:
                                del self._pending[key]
                        ticket.stale = True
                        self.metrics.record_stale()
                        self.metrics.record_cache(True)
                        ticket.set_result(stale_row)
                        self.metrics.record_latency(ticket.latency())
                        if span is not None:
                            span.add_phase(
                                "cache_lookup", ticket.completed_at - span.start
                            )
                            span.cache_hit = True
                            tracer.finish(span, end=ticket.completed_at)
                        return ticket
            self.metrics.record_cache(False)
            if span is not None:
                span.add_phase("cache_lookup", time.perf_counter() - lookup_start)
        try:
            if self.admission is not None:
                self.admission.admit(slo_class, self.batcher.pending())
            depth = self.batcher.submit(row, ticket)
        except Exception as error:
            # Fail the ticket too: a concurrent identical request may
            # already have coalesced onto it, and that caller must see the
            # rejection rather than block until its result() timeout.
            if key is not None:
                with self._pending_lock:
                    if self._pending.get(key) is ticket:
                        del self._pending[key]
            ticket.set_exception(error)
            if span is not None:
                tracer.finish(
                    span, end=ticket.completed_at, error=type(error).__name__
                )
            if isinstance(error, AdmissionShed):
                self.metrics.record_shed(slo_class)
            elif isinstance(error, ServiceOverloaded):
                self.metrics.record_overload()
            raise
        self.metrics.record_queue_depth(depth)
        if self._sync_worker is not None:
            while self.batcher.full_batch_ready():
                self._drain_one()
        return ticket

    def _drain_one(self) -> bool:
        assert self._sync_worker is not None
        batch = self.batcher.drain_tick()
        if batch is None:
            return False
        self._sync_worker.execute(batch)
        return True

    def flush(self) -> None:
        """Synchronous mode: run queued batches on the caller's thread.

        A no-op when the queue is empty or when a worker pool owns the
        drain (threaded mode).
        """
        if self._sync_worker is None:
            return
        while self._drain_one():
            pass

    def predict_many(
        self,
        model: str,
        x: np.ndarray,
        *,
        timeout: float = DEFAULT_RESULT_TIMEOUT_S,
        slo: str | None = None,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Submit every row of ``x`` and return stacked probability rows.

        The convenience bulk path: in synchronous mode this is exactly the
        micro-batched fast path (full batches dispatch during submission,
        the remainder on the final flush); in threaded mode it is a
        closed-loop client of the worker pool.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ConfigurationError(
                f"predict_many expects a (batch, features) array, got {x.shape}"
            )
        tickets = []
        for row in x:
            # A bulk caller is closed-loop by definition: on backpressure
            # it waits for the service to drain instead of dropping, so
            # inputs larger than queue_capacity still complete.
            while True:
                try:
                    tickets.append(
                        self.submit(model, row, slo=slo, deadline_s=deadline_s)
                    )
                    break
                except ServiceOverloaded:
                    self.flush()  # sync mode: drain on this thread
                    time.sleep(0.001)  # threaded mode: let workers drain
        self.flush()
        return np.stack([ticket.result(timeout) for ticket in tickets])

    def predict_proba(
        self,
        model: str,
        x: np.ndarray,
        *,
        timeout: float = DEFAULT_RESULT_TIMEOUT_S,
        slo: str | None = None,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Single-request convenience wrapper returning one probability row."""
        ticket = self.submit(model, x, slo=slo, deadline_s=deadline_s)
        self.flush()
        return ticket.result(timeout)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Metrics snapshot plus live queue/cache/registry gauges."""
        snap = self.metrics.snapshot()
        snap["worker_mode"] = self.config.worker_mode if self.config.workers else "sync"
        snap["queue_pending"] = self.batcher.pending()
        snap["cache_entries"] = len(self.cache)
        snap["stack_cache_entries"] = len(self.stack_cache)
        snap["models"] = self.registry.names()
        return snap

    def close(self) -> None:
        """Stop accepting work and shut the worker pool down.

        Idempotent: in-flight batches drain, every held ticket resolves
        (result or typed error), and — in process mode — every shared-
        memory segment the service created is unlinked.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.stop()
        else:
            self.flush()
            self.batcher.close()

    def stop(self) -> None:
        """Alias of :meth:`close` (the worker pools' verb); idempotent."""
        self.close()

    def __enter__(self) -> "BnnService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
