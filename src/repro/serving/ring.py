"""Pickle-free fixed-slot shared-memory rings for process-mode serving.

One :class:`Ring` is a single-producer / single-consumer message channel
over a shared-memory segment: the service process writes request batches
into a worker's request ring and the worker writes results into its
response ring.  No pickle anywhere — every message is a fixed struct
header plus raw payload bytes (float64 rows for batches, UTF-8 JSON for
the model-load control messages).

Torn-write detection
--------------------
Each slot carries a **sequence number** published *last*: the producer
writes payload and header fields first, then stamps the slot with the
message's monotonic sequence.  The consumer only accepts a slot whose
sequence equals exactly the next expected value, then re-validates the
payload against a CRC32 recorded in the header.  A worker SIGKILLed
mid-publish leaves either an old sequence (the message simply never
happened) or a stamped slot with a mismatched CRC — which raises a typed
:class:`~repro.errors.RingIntegrityError`, never yields corrupt rows.
A sequence *ahead* of the expected value means the producer lapped the
consumer (impossible under the flow control below) or foreign writes
landed in the segment; both are integrity errors too.

Flow control is Disruptor-style: the consumer advances a cursor in the
ring header after each pop; the producer refuses to write more than
``slots`` messages ahead of that cursor (bounded wait, typed
:class:`~repro.errors.ServingError` on timeout — the serving no-hang
invariant applies to the rings too).
"""

from __future__ import annotations

import struct
import time
import zlib

import numpy as np

from repro.errors import ConfigurationError, RingIntegrityError, ServingError
from repro.serving import shm as _shm

__all__ = [
    "RING_LAYOUT_VERSION",
    "MSG_REQUEST",
    "MSG_RESULT",
    "MSG_ERROR",
    "MSG_LOAD_MODEL",
    "MSG_EVICT_MODEL",
    "MSG_SHUTDOWN",
    "Message",
    "Ring",
]

#: Bump on any change to the header/slot structs below.
RING_LAYOUT_VERSION = 1

# Message kinds (the ``kind`` header field).
MSG_REQUEST = 1      #: parent -> worker: one batch of float64 rows
MSG_RESULT = 2       #: worker -> parent: probability rows for a batch
MSG_ERROR = 3        #: worker -> parent: typed failure for a batch
MSG_LOAD_MODEL = 4   #: parent -> worker: JSON model metadata (+ shm names)
MSG_EVICT_MODEL = 5  #: parent -> worker: drop a model by name
MSG_SHUTDOWN = 6     #: parent -> worker: drain and exit

#: magic | layout version | slots | slot payload bytes | head | tail.
_RING_HEADER = struct.Struct("<4sIIIQQ")
_RING_MAGIC = b"RING"
#: seq | kind | rows | cols | version | msg id | payload nbytes | crc32 |
#: three signed aux fields (n_eff passes, stack position, adaptive sum).
_SLOT_HEADER = struct.Struct("<QIIIIQQQqqq")

#: Producer/consumer poll cadence while waiting on the peer.
_POLL_S = 0.0005


class Message:
    """One decoded ring message (header fields + a private payload copy)."""

    __slots__ = ("kind", "rows", "cols", "version", "msg_id", "payload",
                 "aux1", "aux2", "aux3")

    def __init__(self, kind, rows, cols, version, msg_id, payload, aux1, aux2, aux3):
        self.kind = kind
        self.rows = rows
        self.cols = cols
        self.version = version
        self.msg_id = msg_id
        self.payload = payload
        self.aux1 = aux1
        self.aux2 = aux2
        self.aux3 = aux3

    def rows_array(self) -> np.ndarray:
        """Decode the payload as the ``(rows, cols)`` float64 matrix it is."""
        expected = self.rows * self.cols * 8
        if len(self.payload) != expected:
            raise RingIntegrityError(
                f"message declares {self.rows}x{self.cols} float64 rows "
                f"({expected} bytes) but carries {len(self.payload)}"
            )
        return np.frombuffer(self.payload, dtype=np.float64).reshape(
            self.rows, self.cols
        )


class Ring:
    """SPSC message ring over one shared-memory segment.

    Exactly one process calls :meth:`push` and exactly one calls
    :meth:`pop`; each side keeps its own local cursor, and the shared
    header's head/tail fields exist for flow control and diagnostics.
    """

    def __init__(self, segment, slots: int, slot_bytes: int, owner: bool) -> None:
        self._segment = segment
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.owner = owner
        self._slot_stride = _SLOT_HEADER.size + slot_bytes
        self._head = 0  # producer-local: messages pushed
        self._tail = 0  # consumer-local: messages popped
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, *, slots: int = 4, slot_bytes: int = 1 << 20,
               name_prefix: str = "ring") -> "Ring":
        """Allocate a new ring segment (parent side, which owns unlink)."""
        if slots < 2:
            raise ConfigurationError(f"a ring needs >= 2 slots, got {slots}")
        if slot_bytes < 64:
            raise ConfigurationError(
                f"slot_bytes must be >= 64, got {slot_bytes}"
            )
        size = _RING_HEADER.size + slots * (_SLOT_HEADER.size + slot_bytes)
        from multiprocessing import shared_memory
        segment = shared_memory.SharedMemory(
            create=True, size=size, name=_shm.segment_name(name_prefix)
        )
        segment.buf[:size] = b"\0" * size
        _RING_HEADER.pack_into(
            segment.buf, 0, _RING_MAGIC, RING_LAYOUT_VERSION, slots, slot_bytes, 0, 0
        )
        ring = cls(_shm.OwnedSegment(segment), slots, slot_bytes, owner=True)
        ring._buf = segment.buf
        ring._raw = segment
        return ring

    @classmethod
    def attach(cls, name: str) -> "Ring":
        """Map an existing ring by segment name (worker side)."""
        segment = _shm.attach_raw(name)
        if segment.size < _RING_HEADER.size:
            segment.close()
            raise RingIntegrityError(
                f"segment {name!r} is too short to hold a ring header"
            )
        magic, layout, slots, slot_bytes, _head, _tail = _RING_HEADER.unpack_from(
            segment.buf, 0
        )
        if magic != _RING_MAGIC:
            segment.close()
            raise RingIntegrityError(
                f"segment {name!r} is not a ring (magic {magic!r})"
            )
        if layout != RING_LAYOUT_VERSION:
            segment.close()
            raise RingIntegrityError(
                f"ring {name!r} uses layout version {layout}, this build "
                f"reads version {RING_LAYOUT_VERSION}"
            )
        expected = _RING_HEADER.size + slots * (_SLOT_HEADER.size + slot_bytes)
        if segment.size < expected:
            segment.close()
            raise RingIntegrityError(
                f"ring {name!r} declares {slots}x{slot_bytes}-byte slots but "
                f"the segment holds only {segment.size} bytes"
            )
        ring = cls(segment, slots, slot_bytes, owner=False)
        ring._buf = segment.buf
        ring._raw = segment
        return ring

    @property
    def name(self) -> str:
        return self._segment.name

    # ------------------------------------------------------------------
    def _slot_offset(self, index: int) -> int:
        return _RING_HEADER.size + (index % self.slots) * self._slot_stride

    def _read_shared_tail(self) -> int:
        return struct.unpack_from("<Q", self._buf, _RING_HEADER.size - 8)[0]

    def _write_shared_tail(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, _RING_HEADER.size - 8, value)

    def _write_shared_head(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, _RING_HEADER.size - 16, value)

    # ------------------------------------------------------------------
    def push(
        self,
        kind: int,
        payload: bytes = b"",
        *,
        rows: int = 0,
        cols: int = 0,
        version: int = 0,
        msg_id: int = 0,
        aux1: int = 0,
        aux2: int = 0,
        aux3: int = 0,
        timeout_s: float = 5.0,
        should_abort=None,
    ) -> None:
        """Publish one message; blocks (bounded) while the ring is full.

        Raises :class:`~repro.errors.ConfigurationError` when the payload
        exceeds the slot capacity and :class:`~repro.errors.ServingError`
        when the consumer made no room within ``timeout_s`` (or
        ``should_abort()`` turned true).
        """
        if len(payload) > self.slot_bytes:
            raise ConfigurationError(
                f"message payload of {len(payload)} bytes exceeds the ring's "
                f"slot capacity of {self.slot_bytes}; raise "
                "ServiceConfig.ring_slot_bytes"
            )
        deadline = time.perf_counter() + timeout_s
        while self._head - self._read_shared_tail() >= self.slots:
            if should_abort is not None and should_abort():
                raise ServingError("ring push aborted: peer is being torn down")
            if time.perf_counter() > deadline:
                raise ServingError(
                    f"ring full for {timeout_s}s ({self.slots} unconsumed "
                    "messages); the consumer is wedged or dead"
                )
            time.sleep(_POLL_S)
        offset = self._slot_offset(self._head)
        body = offset + _SLOT_HEADER.size
        self._buf[body:body + len(payload)] = payload
        # Header first with a zero sequence, then the real sequence as the
        # publish stamp: a reader can only observe seq == head+1 after every
        # other field (and the payload) landed.
        _SLOT_HEADER.pack_into(
            self._buf, offset,
            0, kind, rows, cols, version, msg_id,
            len(payload), zlib.crc32(payload), aux1, aux2, aux3,
        )
        struct.pack_into("<Q", self._buf, offset, self._head + 1)
        self._head += 1
        self._write_shared_head(self._head)

    def pop(self, timeout_s: float = 0.05, should_abort=None) -> Message | None:
        """Consume the next message, or ``None`` after ``timeout_s``.

        Validates the slot's sequence and payload CRC; a stamped slot that
        fails either check raises
        :class:`~repro.errors.RingIntegrityError` (torn write — detected,
        never silently consumed).
        """
        expected = self._tail + 1
        offset = self._slot_offset(self._tail)
        deadline = time.perf_counter() + timeout_s
        while True:
            seq = struct.unpack_from("<Q", self._buf, offset)[0]
            if seq == expected:
                break
            if seq > expected and seq != 0:
                raise RingIntegrityError(
                    f"ring slot holds sequence {seq}, expected {expected} — "
                    "the producer lapped the consumer or the slot was torn"
                )
            if should_abort is not None and should_abort():
                return None
            if time.perf_counter() > deadline:
                return None
            time.sleep(_POLL_S)
        (_seq, kind, rows, cols, version, msg_id, nbytes, crc,
         aux1, aux2, aux3) = _SLOT_HEADER.unpack_from(self._buf, offset)
        if nbytes > self.slot_bytes:
            raise RingIntegrityError(
                f"ring slot declares {nbytes} payload bytes in a "
                f"{self.slot_bytes}-byte slot — torn write detected"
            )
        body = offset + _SLOT_HEADER.size
        payload = bytes(self._buf[body:body + nbytes])
        if zlib.crc32(payload) != crc:
            raise RingIntegrityError(
                "ring slot payload failed its CRC — torn write detected, "
                "refusing to consume it"
            )
        self._tail += 1
        self._write_shared_tail(self._tail)
        return Message(kind, rows, cols, version, msg_id, payload, aux1, aux2, aux3)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this side's mapping (and unlink when this side owns it)."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        if self.owner:
            self._segment.unlink()
        else:
            self._segment.close()
