"""Shared-weight-stack predictors: serve off a cached sampled ensemble.

The per-worker predictors built by
:meth:`~repro.serving.registry.ModelEntry.build_predictor` redraw every
epsilon for every batch.  The predictors here instead *read* their sampled
weights from the service-wide
:class:`~repro.serving.weight_stack.WeightStackCache`, so concurrent
requests against the same ``(model, version, N)`` cost one stream draw
total — the throughput lever ``share_weight_stacks`` turns on.

Both predictors expose the two surfaces the rest of the stack drives:

* ``predict_proba_batched(x)`` — the worker surface
  (:meth:`~repro.serving.workers.ServingWorker.execute`), one fixed-``N``
  MC-averaged call;
* ``chunk_probs(x, start, size)`` — the adaptive chunk seam
  (:mod:`repro.bnn.adaptive`).  Stack-backed implementations *use*
  ``start``: chunk ``k`` slices passes ``start .. start+size`` out of the
  cached ensemble, so chunked consumption visits exactly the passes the
  fixed path stacks — the bit-exact-fallback contract holds here just as
  it does for live streams.

The stacks are fetched from the cache on **every** call, never pinned at
construction: a reload (version bump) or
:meth:`~repro.serving.service.BnnService.refresh_weight_stacks` (position
bump) is picked up by the next batch without rebuilding predictors.
"""

from __future__ import annotations

import numpy as np

from repro.bnn.activations import softmax
from repro.bnn.inference import stacked_forward_stacks, stacked_softmax_average
from repro.bnn.quantized import QuantizedBayesianNetwork


def slice_stacks(stacks, start: int, size: int):
    """Per-layer ``(w, b)`` views of passes ``start .. start+size``.

    Works for both stack flavours (float tensors and fixed-point codes):
    the sample axis is leading in each.
    """
    return [(w[start : start + size], b[start : start + size]) for w, b in stacks]


class SharedStackPredictor:
    """Float-path predictor reading its sampled weights from the stack cache."""

    def __init__(self, entry, stack_cache) -> None:
        self.entry = entry
        self.stack_cache = stack_cache
        self.n_samples = entry.n_samples

    def _stacks(self):
        return self.stack_cache.get_or_create(self.entry)

    def predict_proba_batched(self, x: np.ndarray) -> np.ndarray:
        """Eq. (6) off the shared ensemble: no epsilon draw on this path."""
        x = np.asarray(x, dtype=np.float64)
        return stacked_softmax_average(stacked_forward_stacks(self._stacks(), x))

    def chunk_probs(self, x: np.ndarray, start: int, size: int) -> np.ndarray:
        """Adaptive chunk seam: slice passes ``start..start+size`` of the stack."""
        stacks = slice_stacks(self._stacks(), start, size)
        return softmax(stacked_forward_stacks(stacks, np.asarray(x, dtype=np.float64)))


class QuantizedSharedStackPredictor:
    """Fixed-point predictor reading sampled weight codes from the stack cache.

    ``network`` supplies the datapath (formats, MAC tree) only — its own
    epsilon source is never consulted because every call passes ``sampled``
    stacks into
    :meth:`~repro.bnn.quantized.QuantizedBayesianNetwork.forward_stacked_codes`.
    """

    def __init__(
        self, entry, stack_cache, network: QuantizedBayesianNetwork
    ) -> None:
        self.entry = entry
        self.stack_cache = stack_cache
        self.network = network
        self.n_samples = entry.n_samples

    def _stacks(self):
        return self.stack_cache.get_or_create(self.entry)

    def predict_proba_batched(self, x: np.ndarray) -> np.ndarray:
        x_codes = self.network.act_fmt.quantize(np.asarray(x, dtype=np.float64))
        logits_codes = self.network.forward_stacked_codes(
            x_codes, self.n_samples, sampled=self._stacks()
        )
        total = np.zeros((x_codes.shape[0], self.network.layer_sizes[-1]))
        # Sample-sequential accumulation, bit-identical to the fixed path.
        for sample in range(self.n_samples):
            total += softmax(self.network.act_fmt.dequantize(logits_codes[sample]))
        return total / self.n_samples

    def chunk_probs(self, x: np.ndarray, start: int, size: int) -> np.ndarray:
        x_codes = self.network.act_fmt.quantize(np.asarray(x, dtype=np.float64))
        sampled = slice_stacks(self._stacks(), start, size)
        logits_codes = self.network.forward_stacked_codes(x_codes, size, sampled=sampled)
        return softmax(self.network.act_fmt.dequantize(logits_codes))
