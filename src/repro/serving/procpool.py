"""Process-level worker pool: crash-isolated serving over shared memory.

The thread pool (:mod:`repro.serving.workers`) shares one address space
with the service, so a worker that segfaults — or is SIGKILLed by the
chaos harness — takes the whole service down.  This module runs each
worker slot as an OS **process** behind the same
:class:`~repro.serving.service.BnnService` façade
(``ServiceConfig(worker_mode="process")``): a crash costs exactly the
batch that worker held, failed over with a typed
:class:`~repro.errors.WorkerCrashed`, while the service and its sibling
workers keep serving.

Transport (no pickle on the request path)
-----------------------------------------
* Model tensors cross the seam once per ``(model, version)`` through
  checksummed :mod:`repro.serving.shm` segments.  Float models ship the
  network's internal ``mu``/``rho`` arrays *verbatim* — not the exported
  ``(mu, sigma)`` posterior — because rebuilding sigma through the
  softplus round-trip is not guaranteed bitwise; the worker constructs
  a :class:`~repro.bnn.bayesian.BayesianNetwork` and assigns the arrays
  directly, so its predictor is bit-identical to the parent's.
* Requests and results flow through fixed-slot
  :class:`~repro.serving.ring.Ring` pairs — struct headers plus raw
  float64 rows, sequence-stamped so a SIGKILL mid-publish is a typed
  :class:`~repro.errors.RingIntegrityError`, never silently consumed.
* A small parent-owned **control block** (one float64 row per slot)
  carries heartbeats and cumulative progress counters.  The
  batches-started counter is the fault schedule's clock: it persists
  across SIGKILL, so a replacement incarnation keeps the thread-mode
  "``at_batch`` counts across restarts" semantics.

Determinism
-----------
Workers build predictors with the *same* derivations as thread mode
(:func:`~repro.serving.registry.worker_stream_seed`, weight-stack seeds
keyed ``(model, version, N, position)``), and each request ships the
parent's current stack position — so a process-mode run is bit-identical
to the thread-mode (and synchronous) run on the same seeds, which the
equivalence gates in ``benches/bench_serving.py`` assert.

Supervision
-----------
A supervisor thread extends PR 9's policy across the process boundary:
``Process.is_alive()`` plus per-batch residency against
``batch_timeout_s``.  Failover SIGKILLs the incarnation, resolves every
ticket it held with :class:`~repro.errors.WorkerCrashed` (the accounting
invariant ``completed + failed + shed == offered`` survives any chaos
schedule), builds **fresh** rings, and restarts the slot with
``incarnation + 1``.  Every shared-memory object is parent-owned and
unlinked on ``stop()``/failover/atexit — ``shm.live_segments()`` is empty
after a clean stop, chaos or not.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import struct
import threading
import time
from multiprocessing import shared_memory

import numpy as np

from repro import errors as _errors
from repro.bnn.adaptive import AdaptiveConfig
from repro.bnn.bayesian import BayesianNetwork
from repro.errors import (
    ConfigurationError,
    RingIntegrityError,
    ServingError,
    WorkerCrashed,
)
from repro.obs.trace import Tracer
from repro.serving import shm as _shm
from repro.serving.batcher import Batch, MicroBatcher
from repro.serving.cache import PredictionCache
from repro.serving.metrics import ServiceMetrics
from repro.serving.registry import ModelEntry, ModelRegistry
from repro.serving.resilience import (
    AdmissionController,
    FaultPlan,
    ResilienceConfig,
    chunk_seam,
)
from repro.serving.ring import (
    MSG_ERROR,
    MSG_EVICT_MODEL,
    MSG_LOAD_MODEL,
    MSG_REQUEST,
    MSG_RESULT,
    MSG_SHUTDOWN,
    Ring,
)
from repro.serving.weight_stack import WeightStackCache
from repro.serving.workers import _fail_batch_tickets, shed_expired_tickets
from repro.utils.validation import check_positive

__all__ = ["ProcessWorkerPool", "export_entry_meta", "entry_from_meta"]

#: Channel threads poll at the same cadence as the thread workers.
_IDLE_POLL_S = 0.05
#: Stall ceiling when no ResilienceConfig is attached: the supervisor
#: still fails over a wedged process (the no-hang invariant is not
#: optional in process mode), just with a generous budget.
_DEFAULT_BATCH_TIMEOUT_S = 60.0
_DEFAULT_HEARTBEAT_S = 0.05
_DEFAULT_MAX_RESTARTS = 16
#: Slot state while a failover is mid-flight: the old incarnation is dead
#: but its replacement has not been spawned yet.  Channel threads wait
#: this state out instead of misreading it as a retired slot.
_RESTARTING = object()

# ----------------------------------------------------------------------
# Control block: one float64 row per worker slot, parent-owned.
# ----------------------------------------------------------------------
_CTRL_FIELDS = 8
(
    _F_HEARTBEAT,        #: monotonically bumped each worker loop turn
    _F_BATCHES_STARTED,  #: cumulative across incarnations — the fault clock
    _F_BATCHES_DONE,
    _F_ROWS_DONE,
    _F_ADAPTIVE_ROWS,
    _F_ADAPTIVE_PASSES,
    _F_INFERENCE_S,
    _F_INCARNATION,
) = range(_CTRL_FIELDS)

_CTRL_COUNTER_NAMES = {
    "batches_started": _F_BATCHES_STARTED,
    "batches_done": _F_BATCHES_DONE,
    "rows_done": _F_ROWS_DONE,
    "adaptive_rows": _F_ADAPTIVE_ROWS,
    "adaptive_passes": _F_ADAPTIVE_PASSES,
    "inference_s": _F_INFERENCE_S,
}


def _ctrl_get(buf, worker: int, field: int) -> float:
    return struct.unpack_from("<d", buf, (worker * _CTRL_FIELDS + field) * 8)[0]


def _ctrl_set(buf, worker: int, field: int, value: float) -> None:
    struct.pack_into("<d", buf, (worker * _CTRL_FIELDS + field) * 8, float(value))


def _ctrl_add(buf, worker: int, field: int, delta: float) -> None:
    _ctrl_set(buf, worker, field, _ctrl_get(buf, worker, field) + delta)


# ----------------------------------------------------------------------
# Model marshalling (parent publishes, worker rebuilds)
# ----------------------------------------------------------------------
#: Float models ship the network internals verbatim (bit-exact rebuild).
_FLOAT_KEYS = ("mu_weights", "rho_weights", "mu_bias", "rho_bias")
#: Quantized models ship their exported posterior verbatim.
_QUANT_KEYS = ("mu_weights", "sigma_weights", "mu_bias", "sigma_bias")


def export_entry_meta(
    entry: ModelEntry, model_id: int
) -> tuple[bytes, list[_shm.OwnedSegment]]:
    """Publish ``entry``'s tensors to shared memory; return (JSON meta, segments).

    The JSON payload is everything a worker needs to rebuild an
    equivalent :class:`~repro.serving.registry.ModelEntry` — serving
    parameters by value, tensors by checksummed segment name.  The
    returned segments are parent-owned; the pool caches them per
    ``(name, version)`` and unlinks them on replacement and at stop.
    """
    if entry.kind == "quantized":
        keys = _QUANT_KEYS
        layers = entry.posterior
    else:
        keys = _FLOAT_KEYS
        layers = [
            {
                "mu_weights": layer.mu_weights,
                "rho_weights": layer.rho_weights,
                "mu_bias": layer.mu_bias,
                "rho_bias": layer.rho_bias,
            }
            for layer in entry.network.layers
        ]
    segments: list[_shm.OwnedSegment] = []
    layers_meta: list[dict[str, str]] = []
    for params in layers:
        layer_meta = {}
        for key in keys:
            segment = _shm.publish_array(np.asarray(params[key]), name_prefix="model")
            segments.append(segment)
            layer_meta[key] = segment.name
        layers_meta.append(layer_meta)
    adaptive = None
    if entry.adaptive is not None:
        adaptive = {
            "chunk": entry.adaptive.chunk,
            "exit_delta": entry.adaptive.exit_delta,
            "min_passes": entry.adaptive.min_passes,
        }
    meta = {
        "model_id": int(model_id),
        "name": entry.name,
        "version": int(entry.version),
        "kind": entry.kind,
        "n_samples": int(entry.n_samples),
        "grng_name": entry.grng_name,
        "seed": int(entry.seed),
        "bit_length": int(entry.bit_length),
        "variance_reduction": entry.variance_reduction,
        "share_weight_stacks": bool(entry.share_weight_stacks),
        "adaptive": adaptive,
        "layers": layers_meta,
    }
    return json.dumps(meta).encode("utf-8"), segments


def entry_from_meta(meta: dict) -> ModelEntry:
    """Rebuild a worker-local :class:`ModelEntry` from published metadata.

    Attaches (and validates — every segment header is checksummed) the
    tensor segments, then reconstructs the entry so
    :meth:`ModelEntry.build_predictor` yields bit-identical predictors to
    the parent's.
    """
    keys = _QUANT_KEYS if meta["kind"] == "quantized" else _FLOAT_KEYS
    layers = [
        {key: _shm.attach_array(layer_meta[key]) for key in keys}
        for layer_meta in meta["layers"]
    ]
    adaptive = None
    if meta["adaptive"] is not None:
        adaptive = AdaptiveConfig(**meta["adaptive"])
    common = dict(
        n_samples=meta["n_samples"],
        grng_name=meta["grng_name"],
        seed=meta["seed"],
        variance_reduction=meta["variance_reduction"],
        share_weight_stacks=meta["share_weight_stacks"],
        adaptive=adaptive,
    )
    if meta["kind"] == "quantized":
        entry = ModelEntry(
            meta["name"],
            None,
            kind="quantized",
            bit_length=meta["bit_length"],
            posterior=layers,
            **common,
        )
    else:
        sizes = (layers[0]["mu_weights"].shape[0],) + tuple(
            params["mu_weights"].shape[1] for params in layers
        )
        network = BayesianNetwork(sizes, seed=meta["seed"])
        for layer, params in zip(network.layers, layers):
            layer.mu_weights = params["mu_weights"]
            layer.rho_weights = params["rho_weights"]
            layer.mu_bias = params["mu_bias"]
            layer.rho_bias = params["rho_bias"]
        entry = ModelEntry(meta["name"], network, **common)
    entry.version = meta["version"]
    return entry


def _encode_error(error: Exception) -> bytes:
    return f"{type(error).__name__}: {error}".encode("utf-8", "replace")


def _decode_error(payload: bytes) -> Exception:
    """Map a worker's ``"TypeName: message"`` back to a typed exception.

    Unknown names (a worker raised something outside :mod:`repro.errors`)
    degrade to a plain :class:`~repro.errors.ServingError` carrying the
    full text — typed where possible, never silent.
    """
    text = payload.decode("utf-8", "replace")
    name, sep, detail = text.partition(": ")
    cls = getattr(_errors, name, None) if sep else None
    if isinstance(cls, type) and issubclass(cls, Exception):
        return cls(detail)
    return ServingError(f"process worker failed: {text}")


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------
def _worker_main(
    worker_index: int,
    incarnation: int,
    request_ring: str,
    response_ring: str,
    control_name: str,
    plan_events: tuple,
    stack_cache_capacity: int,
) -> None:
    """One serving process: pop requests, run batched MC, push results.

    Takes only plain data (ints, names, tuples) — no locks, events, or
    live objects may cross the spawn boundary (reprolint RL007).  The
    fault plan arrives as plain tuples and is consulted through the pure
    :meth:`~repro.serving.resilience.FaultPlan.event_at` lookup with the
    batch count read from the parent-owned control block, so the chaos
    schedule survives this incarnation's own death.
    """
    requests = Ring.attach(request_ring)
    responses = Ring.attach(response_ring)
    control = _shm.attach_raw(control_name)
    ctrl = control.buf
    _ctrl_set(ctrl, worker_index, _F_INCARNATION, incarnation)
    plan = FaultPlan.from_plain_events(plan_events) if plan_events else None
    entries: dict[int, ModelEntry] = {}
    broken: dict[int, str] = {}
    predictors: dict[str, tuple[int, object]] = {}
    stack_cache = WeightStackCache(capacity=stack_cache_capacity)
    while True:
        _ctrl_add(ctrl, worker_index, _F_HEARTBEAT, 1.0)
        message = requests.pop(timeout_s=_IDLE_POLL_S)
        if message is None:
            continue
        if message.kind == MSG_SHUTDOWN:
            return
        if message.kind == MSG_LOAD_MODEL:
            meta = json.loads(message.payload.decode("utf-8"))
            model_id = int(meta["model_id"])
            try:
                entry = entry_from_meta(meta)
            except Exception as error:  # noqa: BLE001 - reported per request
                # Typically a lost race with the parent unlinking a
                # superseded version's segments; requests against this id
                # fail typed until the parent pushes the newer version.
                entries.pop(model_id, None)
                broken[model_id] = f"{type(error).__name__}: {error}"
                continue
            entries[model_id] = entry
            broken.pop(model_id, None)
            predictors.pop(entry.name, None)
            continue
        if message.kind == MSG_EVICT_MODEL:
            model_id = int(message.aux3)
            evicted = entries.pop(model_id, None)
            broken.pop(model_id, None)
            if evicted is not None:
                predictors.pop(evicted.name, None)
                stack_cache.invalidate_model(evicted.name)
            continue
        if message.kind != MSG_REQUEST:
            continue  # unknown control kind: skip, stay up
        # The batch count is read-modify-written to the control block
        # *before* the fault check so a kill mid-batch still advances the
        # schedule clock for the replacement incarnation.
        count = int(_ctrl_get(ctrl, worker_index, _F_BATCHES_STARTED)) + 1
        _ctrl_set(ctrl, worker_index, _F_BATCHES_STARTED, count)
        if plan is not None:
            event = plan.event_at(worker_index, count, incarnation)
            if event is not None:
                if event.action == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                if event.action == "exit":
                    os._exit(13)
                # "stall" and "delay" only differ in magnitude: a stall
                # outlives the supervisor's batch timeout and gets this
                # process killed mid-sleep.
                time.sleep(event.seconds)
        try:
            payload, rows, cols, aux = _serve_request(
                message, worker_index, incarnation, entries, broken,
                predictors, stack_cache,
            )
            _ctrl_add(ctrl, worker_index, _F_BATCHES_DONE, 1.0)
            _ctrl_add(ctrl, worker_index, _F_ROWS_DONE, rows)
            _ctrl_add(ctrl, worker_index, _F_ADAPTIVE_ROWS, aux[0])
            _ctrl_add(ctrl, worker_index, _F_ADAPTIVE_PASSES, aux[1])
            _ctrl_add(ctrl, worker_index, _F_INFERENCE_S, aux[3])
            response = (MSG_RESULT, payload, rows, cols, aux[0], aux[1], aux[2])
        except Exception as error:  # noqa: BLE001 - fault barrier per batch
            response = (MSG_ERROR, _encode_error(error), 0, 0, 0, 0, 0)
        kind, payload, rows, cols, aux1, aux2, aux3 = response
        try:
            responses.push(
                kind,
                payload,
                rows=rows,
                cols=cols,
                version=message.version,
                msg_id=message.msg_id,
                aux1=aux1,
                aux2=aux2,
                aux3=aux3,
            )
        except ServingError:
            # The parent stopped consuming (failover/stop in progress);
            # keep looping — this incarnation is about to be torn down.
            continue


def _serve_request(
    message,
    worker_index: int,
    incarnation: int,
    entries: dict[int, ModelEntry],
    broken: dict[int, str],
    predictors: dict[str, tuple[int, object]],
    stack_cache: WeightStackCache,
) -> tuple[bytes, int, int, tuple[int, int, int, float]]:
    """Run one batch worker-side; returns (payload, rows, cols, aux).

    ``aux`` is ``(adaptive_rows, adaptive_passes, degraded_n_eff,
    inference_seconds)``.  Mirrors the thread worker's execute() compute
    path exactly: same predictor construction, same degradation seam,
    same output-shape check inside the fault barrier.
    """
    model_id = int(message.aux3)
    entry = entries.get(model_id)
    if entry is None:
        detail = broken.get(model_id, "model was never loaded on this worker")
        raise ServingError(f"model id {model_id} unavailable: {detail}")
    if entry.version != message.version:
        raise ServingError(
            f"request targets version {message.version} of model "
            f"{entry.name!r} but this worker holds version {entry.version}"
        )
    x = message.rows_array()
    cached = predictors.get(entry.name)
    if cached is not None and cached[0] == entry.version:
        predictor = cached[1]
    else:
        predictor = entry.build_predictor(
            worker_index, stack_cache=stack_cache, incarnation=incarnation
        )
        predictors[entry.name] = (entry.version, predictor)
    if entry.share_weight_stacks:
        stack_cache.sync_position(
            entry.name, entry.version, entry.n_samples, int(message.aux2)
        )
    n_eff = int(message.aux1)
    degraded = 0
    started = time.perf_counter()
    seam = None
    if 0 < n_eff < entry.n_samples:
        seam = chunk_seam(predictor)
    if seam is not None:
        degraded = n_eff
        probs = np.asarray(seam(x, 0, n_eff)).mean(axis=0)
    else:
        probs = np.asarray(predictor.predict_proba_batched(x))
    inference_s = time.perf_counter() - started
    if probs.ndim != 2 or probs.shape != (message.rows, entry.out_features):
        raise ConfigurationError(
            f"predictor for model {entry.name!r} returned shape "
            f"{probs.shape}, expected ({message.rows}, {entry.out_features})"
        )
    adaptive_rows = adaptive_passes = 0
    pop_pass_counts = getattr(predictor, "pop_pass_counts", None)
    if pop_pass_counts is not None and not degraded:
        pass_counts = pop_pass_counts()
        if pass_counts is not None:
            adaptive_rows = int(np.asarray(pass_counts).size)
            adaptive_passes = int(np.asarray(pass_counts).sum())
    payload = np.ascontiguousarray(probs, dtype=np.float64).tobytes()
    return (
        payload,
        int(probs.shape[0]),
        int(probs.shape[1]),
        (adaptive_rows, adaptive_passes, degraded, inference_s),
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerLink:
    """Parent-side handle to one live worker incarnation.

    Owns the incarnation's transport (rings are rebuilt fresh on every
    restart — a killed worker may have torn its old rings).  ``abort`` is
    the cross-thread tear-down flag: the supervisor sets it during
    failover and the slot's channel thread backs out of any ring wait.
    Ring unlinking is deferred to :meth:`release` (called by the channel
    thread or ``stop()``, never concurrently with ring use).
    """

    def __init__(self, slot: int, incarnation: int, process, request: Ring,
                 response: Ring) -> None:
        self.slot = slot
        self.incarnation = incarnation
        self.process = process
        self.request = request
        self.response = response
        self.abort = threading.Event()
        #: model name -> version already pushed to this incarnation.
        self.pushed: dict[str, int] = {}
        #: model evictions queued for the channel thread to forward.
        self.pending_evictions: list[tuple[str, int]] = []
        self.next_msg_id = 1
        self._release_lock = threading.Lock()
        self._released = False

    def release(self) -> None:
        """Unlink this incarnation's rings exactly once (thread-safe)."""
        with self._release_lock:
            if self._released:
                return
            self._released = True
        self.request.close()
        self.response.close()


class _ChannelWorker(threading.Thread):
    """One parent thread per slot: batcher -> request ring -> tickets.

    Persists across incarnations (links are swapped underneath it by the
    supervisor).  Mirrors the thread worker's execute() policy on the
    parent side of the seam: deadline shedding, admission observation,
    the degradation ladder, cache fills, metrics, and span phases — so
    both modes present identical serving semantics.
    """

    def __init__(self, pool: "ProcessWorkerPool", slot: int) -> None:
        super().__init__(name=f"bnn-serving-channel-{slot}", daemon=True)
        self.pool = pool
        self.slot = slot
        self.busy_since: float | None = None
        self.current_batch: Batch | None = None
        self.retired = False

    # ------------------------------------------------------------------
    def run(self) -> None:
        pool = self.pool
        while not self.retired:
            batch = pool.batcher.next_batch(timeout=_IDLE_POLL_S)
            if batch is None:
                if pool.batcher.closed:
                    return
                continue
            self.busy_since = time.perf_counter()
            self.current_batch = batch
            try:
                self._dispatch(batch)
            except Exception as error:  # noqa: BLE001 - last-resort barrier
                batch.cancelled = True
                pool.metrics.record_batch(len(batch))
                _fail_batch_tickets(
                    batch,
                    ServingError(f"process-mode dispatch failed: {error}"),
                    pool.metrics,
                    pool.tracer,
                )
            finally:
                self.current_batch = None
                self.busy_since = None

    # ------------------------------------------------------------------
    def _fail_with_spans(self, batch: Batch, error: Exception, traced: bool) -> None:
        """Thread-worker-barrier ticket failure (metrics + span close)."""
        pool = self.pool
        pool.metrics.record_batch(len(batch))
        for ticket in batch.tickets:
            if not ticket.set_exception(error):
                continue
            pool.metrics.record_failure()
            if traced and ticket.trace is not None:
                span = ticket.trace
                span.batch_size = len(batch)
                span.worker = self.slot
                pool.tracer.finish(
                    span, end=ticket.completed_at, error=type(error).__name__
                )

    def _fail_crashed(self, batch: Batch, link: _WorkerLink, traced: bool) -> None:
        """Fail a batch whose incarnation died mid-dispatch."""
        batch.cancelled = True
        self._fail_with_spans(
            batch,
            WorkerCrashed(
                f"serving process worker {self.slot} (incarnation "
                f"{link.incarnation}) crashed or was failed over mid-batch; "
                "its requests were failed with this typed error"
            ),
            traced,
        )

    def _ensure_model(self, link: _WorkerLink, entry: ModelEntry) -> int:
        """Push LOAD_MODEL to the incarnation if it lacks this version."""
        pool = self.pool
        model_id = pool._model_id(entry.name)
        if link.pushed.get(entry.name) != entry.version:
            payload = pool._bundle_payload(entry, model_id)
            link.request.push(
                MSG_LOAD_MODEL,
                payload,
                version=entry.version,
                should_abort=link.abort.is_set,
            )
            link.pushed[entry.name] = entry.version
        return model_id

    def _forward_evictions(self, link: _WorkerLink) -> None:
        pool = self.pool
        with pool._lock:
            evictions = list(link.pending_evictions)
            link.pending_evictions.clear()
        for name, model_id in evictions:
            link.pushed.pop(name, None)
            link.request.push(
                MSG_EVICT_MODEL,
                name.encode("utf-8"),
                aux3=model_id,
                should_abort=link.abort.is_set,
            )

    def _await_response(self, link: _WorkerLink, msg_id: int):
        """Block (bounded by supervision) for the in-flight batch's reply."""
        pool = self.pool
        while True:
            if link.abort.is_set():
                return None  # failover owns the tickets now
            message = link.response.pop(
                timeout_s=_IDLE_POLL_S, should_abort=link.abort.is_set
            )
            if message is not None:
                if message.msg_id != msg_id:
                    raise RingIntegrityError(
                        f"response carries message id {message.msg_id}, "
                        f"expected {msg_id} — protocol desync"
                    )
                return message
            if link.abort.is_set():
                return None
            if not link.process.is_alive():
                pool._failover(self.slot, link, "died")
                return None

    def _dispatch(self, batch: Batch) -> None:
        pool = self.pool
        tracer = pool.tracer
        if batch.expired or any(t.deadline is not None for t in batch.tickets):
            shed_expired_tickets(batch, pool.metrics, tracer, self.slot)
        if len(batch) == 0:
            return
        traced = tracer is not None and any(
            ticket.trace is not None for ticket in batch.tickets
        )
        exec_start = time.perf_counter()
        admission = pool.admission
        if admission is not None:
            youngest = max(ticket.created_at for ticket in batch.tickets)
            admission.observe_queue_wait(exec_start - youngest)
        link = pool._link(self.slot)
        if link is None:
            batch.cancelled = True
            self._fail_with_spans(
                batch,
                WorkerCrashed(
                    f"serving process slot {self.slot} is retired "
                    "(restart budget exhausted, or the pool is stopping); "
                    "its requests were failed over"
                ),
                traced,
            )
            if not pool._stopping.is_set():
                self.retired = True
            return
        try:
            entry = pool.registry.get(batch.model)
            n_eff = 0
            if admission is not None:
                effective = admission.effective_passes(entry.n_samples)
                if effective < entry.n_samples:
                    n_eff = effective
            stack_position = 0
            if entry.share_weight_stacks and pool.stack_cache is not None:
                stack_position = pool.stack_cache.ensure_position(
                    entry.name, entry.version, entry.n_samples
                )
            payload = np.ascontiguousarray(
                batch.stack(), dtype=np.float64
            ).tobytes()
        except Exception as error:  # noqa: BLE001 - pre-transport barrier
            self._fail_with_spans(batch, error, traced)
            return
        try:
            self._forward_evictions(link)
            model_id = self._ensure_model(link, entry)
            msg_id = link.next_msg_id
            link.next_msg_id += 1
            link.request.push(
                MSG_REQUEST,
                payload,
                rows=len(batch),
                cols=entry.in_features,
                version=entry.version,
                msg_id=msg_id,
                aux1=n_eff,
                aux2=stack_position,
                aux3=model_id,
                should_abort=link.abort.is_set,
            )
            message = self._await_response(link, msg_id)
        except ConfigurationError as error:
            # Payload exceeds the ring slot: a sizing error, not a crash.
            self._fail_with_spans(batch, error, traced)
            return
        except ServingError:
            # Torn ring, protocol desync, or a push timeout against a
            # wedged consumer: the incarnation's transport is unusable.
            pool._failover(self.slot, link, "wedged")
            self._fail_crashed(batch, link, traced)
            return
        if message is None:
            # _await_response unblocked on the abort flag: the incarnation
            # is dead.  This thread popped the batch, so this thread fails
            # it — the supervisor only swaps links (see _failover).
            self._fail_crashed(batch, link, traced)
            return
        if message.kind == MSG_ERROR:
            self._fail_with_spans(batch, _decode_error(message.payload), traced)
            return
        try:
            probs = message.rows_array()
            if probs.shape != (len(batch), entry.out_features):
                raise RingIntegrityError(
                    f"result for model {entry.name!r} has shape "
                    f"{probs.shape}, expected ({len(batch)}, {entry.out_features})"
                )
        except RingIntegrityError as error:
            self._fail_with_spans(batch, error, traced)
            return
        degraded = int(message.aux3) or None
        pool.metrics.record_batch(len(batch))
        if degraded is not None:
            pool.metrics.record_degraded(len(batch))
        if message.aux1:
            pool.metrics.record_adaptive_totals(
                int(message.aux1), int(message.aux2), entry.n_samples
            )
        if traced:
            e_last = max(
                (
                    span.marks.get("enqueued", span.start)
                    for span in (t.trace for t in batch.tickets)
                    if span is not None
                ),
                default=exec_start,
            )
            e_last = min(e_last, exec_start)
        respond_start = time.perf_counter()
        infer_s = respond_start - exec_start
        for row_index, ticket in enumerate(batch.tickets):
            if batch.cancelled:
                return  # failover already delivered typed errors
            row = probs[row_index]
            if pool.cache.capacity:
                pool.cache.put(
                    PredictionCache.key(
                        entry.name, entry.version, entry.n_samples,
                        batch.rows[row_index],
                    ),
                    row,
                )
            ticket.degraded = degraded
            if not ticket.set_result(row):
                continue
            pool.metrics.record_latency(ticket.latency())
            if traced and ticket.trace is not None:
                span = ticket.trace
                enqueued = min(span.marks.get("enqueued", span.start), e_last)
                span.add_phase("batch_fill", e_last - enqueued)
                span.add_phase("queue_wait", exec_start - e_last)
                span.add_phase("inference", infer_s)
                span.add_phase("respond", ticket.completed_at - respond_start)
                span.batch_size = len(batch)
                span.worker = self.slot
                pool.tracer.finish(span, end=ticket.completed_at)


class ProcessWorkerPool:
    """Crash-isolated process workers behind the thread pool's interface.

    Drop-in peer of :class:`~repro.serving.workers.WorkerPool`: same
    constructor shape, same ``restarts``/``stop()`` surface, driven by the
    same :class:`~repro.serving.batcher.MicroBatcher`.  Supervision is
    always on (a process pool without liveness checks could hang the
    service on a single SIGKILL); resilience knobs tune its thresholds.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        batcher: MicroBatcher,
        cache: PredictionCache,
        metrics: ServiceMetrics,
        workers: int = 2,
        stack_cache: WeightStackCache | None = None,
        tracer: Tracer | None = None,
        resilience: ResilienceConfig | None = None,
        admission: AdmissionController | None = None,
        fault_plan: FaultPlan | None = None,
        *,
        ring_slots: int = 4,
        ring_slot_bytes: int = 1 << 20,
        start_method: str | None = None,
    ) -> None:
        check_positive("workers", workers)
        self.registry = registry
        self.batcher = batcher
        self.cache = cache
        self.metrics = metrics
        self.stack_cache = stack_cache
        self.tracer = tracer
        self.resilience = resilience
        self.admission = admission
        self.size = int(workers)
        self.ring_slots = int(ring_slots)
        self.ring_slot_bytes = int(ring_slot_bytes)
        #: Fault schedule as plain tuples — what every spawn receives.
        self._plan_events = () if fault_plan is None else fault_plan.plain_events()
        self._stack_capacity = stack_cache.capacity if stack_cache is not None else 8
        self.batch_timeout_s = (
            resilience.batch_timeout_s if resilience else _DEFAULT_BATCH_TIMEOUT_S
        )
        self.heartbeat_interval_s = (
            resilience.heartbeat_interval_s if resilience else _DEFAULT_HEARTBEAT_S
        )
        self.max_restarts = (
            resilience.max_restarts if resilience else _DEFAULT_MAX_RESTARTS
        )
        # "spawn" is the only start method that is safe regardless of the
        # service's own threads (fork duplicates held locks); overridable
        # for platforms where spawn is prohibitively slow.
        self._mp = multiprocessing.get_context(start_method or "spawn")
        self._lock = threading.Lock()
        #: Signals link-state transitions (shares ``_lock`` so link reads
        #: and restart waits serialize on one mutex).
        self._restart_cv = threading.Condition(self._lock)
        self._stopping = threading.Event()
        self._stopped = False
        self._restarts = 0
        #: (name, version) -> (meta payload template args, owned segments).
        self._bundles: dict[tuple[str, int], tuple[bytes, list]] = {}
        self._model_ids: dict[str, int] = {}
        self._retired_links: list[_WorkerLink] = []
        self._final_counters: dict[str, float] | None = None
        control = shared_memory.SharedMemory(
            create=True,
            size=self.size * _CTRL_FIELDS * 8,
            name=_shm.segment_name("ctrl"),
        )
        control.buf[:] = b"\0" * (self.size * _CTRL_FIELDS * 8)
        self._control_buf = control.buf
        self._control = _shm.OwnedSegment(control)
        self._links: list[_WorkerLink | None] = [
            self._spawn(slot, 0) for slot in range(self.size)
        ]
        self.channels = [_ChannelWorker(self, slot) for slot in range(self.size)]
        for channel in self.channels:
            channel.start()
        self._supervisor = threading.Thread(
            target=self._supervise, name="bnn-serving-proc-supervisor", daemon=True
        )
        self._supervisor.start()

    # ------------------------------------------------------------------
    def _spawn(self, slot: int, incarnation: int) -> _WorkerLink:
        request = Ring.create(
            slots=self.ring_slots, slot_bytes=self.ring_slot_bytes,
            name_prefix=f"req{slot}",
        )
        response = Ring.create(
            slots=self.ring_slots, slot_bytes=self.ring_slot_bytes,
            name_prefix=f"resp{slot}",
        )
        process = self._mp.Process(
            target=_worker_main,
            args=(
                slot,
                incarnation,
                request.name,
                response.name,
                self._control.name,
                self._plan_events,
                self._stack_capacity,
            ),
            name=f"bnn-serving-proc-{slot}",
            daemon=True,
        )
        process.start()
        return _WorkerLink(slot, incarnation, process, request, response)

    def _link(self, slot: int) -> _WorkerLink | None:
        """The slot's current link; waits out an in-flight restart.

        Returns ``None`` only for a genuinely retired slot (restart
        budget exhausted) or a stopping pool — never for the transient
        window while :meth:`_failover` is spawning a replacement.
        """
        with self._restart_cv:
            while self._links[slot] is _RESTARTING and not self._stopping.is_set():
                self._restart_cv.wait(_IDLE_POLL_S)
            link = self._links[slot]
            return link if isinstance(link, _WorkerLink) else None

    def _model_id(self, name: str) -> int:
        with self._lock:
            return self._model_ids.setdefault(name, len(self._model_ids) + 1)

    def _bundle_payload(self, entry: ModelEntry, model_id: int) -> bytes:
        """The (cached) LOAD_MODEL payload for one ``(name, version)``.

        Publishing a new version unlinks the superseded version's
        segments — workers that already loaded the old version hold
        private copies, and in-order rings guarantee any incarnation
        sees the matching LOAD before requests against the new version.
        """
        key = (entry.name, entry.version)
        with self._lock:
            cached = self._bundles.get(key)
            if cached is not None:
                return cached[0]
        payload, segments = export_entry_meta(entry, model_id)
        with self._lock:
            raced = self._bundles.get(key)
            if raced is not None:
                stale = segments  # another channel published first
                payload = raced[0]
            else:
                self._bundles[key] = (payload, segments)
                stale = []
                for other in [k for k in self._bundles if k[0] == entry.name and k != key]:
                    stale.extend(self._bundles.pop(other)[1])
        for segment in stale:
            segment.unlink()
        return payload

    # ------------------------------------------------------------------
    @property
    def restarts(self) -> int:
        """Supervised restarts performed over the pool's lifetime."""
        with self._lock:
            return self._restarts

    def incarnations(self) -> list[int | None]:
        """Current incarnation per slot (``None`` for a retired slot)."""
        with self._lock:
            return [
                link.incarnation if isinstance(link, _WorkerLink) else None
                for link in self._links
            ]

    def live_workers(self) -> int:
        with self._lock:
            links = list(self._links)
        return sum(
            1
            for link in links
            if isinstance(link, _WorkerLink) and link.process.is_alive()
        )

    def process_counters(self) -> dict[str, float]:
        """Cross-process progress counters summed over the control block."""
        if self._final_counters is not None:
            return dict(self._final_counters)
        buf = self._control_buf
        if buf is None:
            return {name: 0.0 for name in _CTRL_COUNTER_NAMES}
        return {
            name: sum(_ctrl_get(buf, slot, field) for slot in range(self.size))
            for name, field in _CTRL_COUNTER_NAMES.items()
        }

    def evict_model(self, name: str) -> None:
        """Drop a model's shm bundles; queue worker-side eviction.

        Worker notification is lazy (forwarded by each slot's channel
        thread — the single ring producer — before its next dispatch);
        correctness never depends on it because versions are monotonic
        per name forever, but it releases worker memory.
        """
        with self._lock:
            model_id = self._model_ids.get(name)
            stale = []
            for key in [k for k in self._bundles if k[0] == name]:
                stale.extend(self._bundles.pop(key)[1])
            if model_id is not None:
                for link in self._links:
                    if isinstance(link, _WorkerLink) and name in link.pushed:
                        link.pending_evictions.append((name, model_id))
        for segment in stale:
            segment.unlink()

    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stopping.wait(self.heartbeat_interval_s):
            with self._lock:
                snapshot = list(enumerate(self._links))
            now = time.perf_counter()
            for slot, link in snapshot:
                if self._stopping.is_set():
                    return
                if not isinstance(link, _WorkerLink):
                    continue  # retired, or a failover is mid-flight
                if not link.process.is_alive():
                    self._failover(slot, link, "died")
                    continue
                busy_since = self.channels[slot].busy_since
                if busy_since is not None and now - busy_since > self.batch_timeout_s:
                    self._failover(slot, link, "stalled")

    def _failover(self, slot: int, link: _WorkerLink, cause: str) -> None:
        """Kill an incarnation and restart the slot.

        Idempotent per link (supervisor and channel threads can both
        detect the same death); the replacement gets fresh rings and
        ``incarnation + 1`` — its GRNG streams re-derive at the bumped
        position, deterministic given the fault schedule.

        Tickets are NOT resolved here: the slot's channel thread owns its
        in-flight batch and fails it when the abort flag unblocks it.
        (Resolving from this thread raced the channel moving on to its
        next batch — the supervisor could fail a batch the replacement
        worker would have served, or miss the dying one entirely.)
        """
        with self._restart_cv:
            if self._links[slot] is not link:
                return  # another thread already failed this incarnation over
            self._links[slot] = _RESTARTING
        link.abort.set()
        if link.process.is_alive():
            link.process.kill()
        link.process.join(2.0)
        restarted = False
        with self._restart_cv:
            self._retired_links.append(link)
            if self._restarts < self.max_restarts and not self._stopping.is_set():
                self._restarts += 1
                restarted = True
                self._links[slot] = self._spawn(slot, link.incarnation + 1)
            else:
                self._links[slot] = None
            self._restart_cv.notify_all()
        if restarted:
            self.metrics.record_restart(cause)

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 10.0) -> None:
        """Drain, shut workers down, and unlink every shared segment.

        Idempotent.  After it returns no batch ticket is left unresolved
        and no shared-memory segment created by this pool survives
        (``shm.live_segments()`` drops to whatever existed before the
        pool) — crash, chaos, or clean run alike.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self._stopping.set()
        with self._restart_cv:
            self._restart_cv.notify_all()  # release channels parked in _link
        self._supervisor.join(timeout)
        # close() refuses new submissions but leaves queued batches
        # poppable: channel threads drain in-flight work before exiting.
        self.batcher.close()
        for channel in self.channels:
            channel.join(timeout)
        with self._lock:
            links = [link for link in self._links if isinstance(link, _WorkerLink)]
        # Channels are parked (or force-joined): this thread is now the
        # sole ring producer, so pushing SHUTDOWN respects SPSC.
        for link in links:
            try:
                link.request.push(
                    MSG_SHUTDOWN, timeout_s=0.5, should_abort=link.abort.is_set
                )
            except ServingError:
                pass  # wedged ring: the kill below covers it
        for link in links:
            link.process.join(timeout)
            if link.process.is_alive():
                link.process.kill()
                link.process.join(2.0)
        # No-hang sweep: a channel thread that outlived its join timeout
        # must not leave tickets unresolved behind a stopped pool.
        for channel in self.channels:
            batch = channel.current_batch
            if batch is None:
                continue
            batch.cancelled = True
            _fail_batch_tickets(
                batch,
                WorkerCrashed(
                    f"serving process slot {channel.slot} shut down holding "
                    "an unfinished batch"
                ),
                self.metrics,
                self.tracer,
            )
        self._final_counters = self.process_counters()
        for link in links:
            link.abort.set()
            link.release()
        with self._lock:
            retired = list(self._retired_links)
            self._retired_links.clear()
            bundles = list(self._bundles.values())
            self._bundles.clear()
        for link in retired:
            link.release()
        for _payload, segments in bundles:
            for segment in segments:
                segment.unlink()
        self._control_buf = None
        self._control.unlink()
