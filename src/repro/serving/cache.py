"""LRU prediction cache keyed on (model, version, N, input digest).

Monte-Carlo predictions are stochastic, so a cache is *definitional* as
much as an optimisation: the service promises that, between two reloads of
a model, repeated requests for the same input return the same probability
row (the one computed for the first arrival) rather than a fresh MC
estimate.  The model's registry **version** is part of the key, which is
how a reload invalidates every cached row of the old posterior without a
scan; :meth:`PredictionCache.invalidate_model` additionally drops the dead
entries eagerly so reload-heavy services don't wait on LRU pressure to
reclaim the memory.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.errors import ConfigurationError

#: Key type: (model name, model version, n_samples, input digest).
CacheKey = tuple[str, int, int, bytes]


def input_digest(row: np.ndarray) -> bytes:
    """Digest of one input row's float64 bytes (layout-independent)."""
    data = np.ascontiguousarray(row, dtype=np.float64)
    return hashlib.blake2b(data.tobytes(), digest_size=16).digest()


class PredictionCache:
    """Thread-safe LRU over probability rows.

    Parameters
    ----------
    capacity:
        Maximum cached rows; ``0`` disables the cache entirely (every
        ``get`` misses, ``put`` is a no-op) — the configuration the
        bit-for-bit serving-equivalence tests use so cache hits cannot
        change batch composition.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(model: str, version: int, n_samples: int, row: np.ndarray) -> CacheKey:
        return (model, int(version), int(n_samples), input_digest(row))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        # Snapshot both counters under the lock so a concurrent lookup
        # cannot make the ratio mix a new hit with a stale total.
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> np.ndarray | None:
        """Cached row (a defensive copy) or ``None``; counts hit/miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value.copy()

    def peek(self, key: CacheKey) -> np.ndarray | None:
        """Like :meth:`get` but without touching the hit/miss counters.

        For internal double-checks (the service re-reads the cache after
        registering as the pending primary) that must not distort the
        hit-rate statistics of the original lookup.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                return None
            self._entries.move_to_end(key)
            return value.copy()

    def put(self, key: CacheKey, value: np.ndarray) -> None:
        """Insert (or refresh) a row, evicting least-recently-used overflow."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = np.array(value, dtype=np.float64)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_model(self, model: str) -> int:
        """Eagerly drop every entry of ``model`` (any version); returns count."""
        with self._lock:
            dead = [key for key in self._entries if key[0] == model]
            for key in dead:
                del self._entries[key]
            return len(dead)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
