"""Micro-batching scheduler: coalesce single-image requests into batches.

The serving subsystem's core trade: the batched Monte-Carlo engine
(:meth:`~repro.bnn.inference.MonteCarloPredictor.predict_proba_batched`)
amortises its dominant cost — drawing ``n_samples * eps_per_pass``
Gaussian epsilons — over every row of its input batch, so 64 coalesced
single-image requests cost roughly one request's worth of GRNG work plus
64-row GEMMs.  :class:`MicroBatcher` is the queue that performs that
coalescing:

* ``submit`` appends to a **bounded** queue and raises
  :class:`~repro.errors.ServiceOverloaded` when full (typed backpressure —
  producers feel load instead of the queue growing without bound);
* ``next_batch`` (worker side) pops up to ``max_batch`` requests **for one
  model**, waiting at most ``max_wait_ms`` after the first pop for the
  batch to fill — the classic latency/throughput knob;
* ``drain_tick`` is the non-blocking variant used by the synchronous
  (caller-driven) service mode and by tests; an empty queue is a no-op
  tick returning ``None``.

Requests for different models may interleave in the queue; a batch only
ever contains rows for a single model (one ``predict_proba_batched`` call
serves one posterior), and skipped requests keep their queue order.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.errors import ConfigurationError, ServiceOverloaded, ServingError
from repro.utils.validation import check_positive


class PredictionTicket:
    """Future-like handle for one submitted prediction request.

    Created by :meth:`~repro.serving.service.BnnService.submit`; resolved
    by whichever worker executes the batch the request lands in (or
    immediately, on a cache hit).  ``created_at`` / ``completed_at`` are
    ``time.perf_counter`` stamps so client-observed latency and the
    service's recorded latency are the same number.
    """

    __slots__ = (
        "model", "created_at", "completed_at", "trace",
        "slo", "deadline", "degraded", "stale",
        "_event", "_value", "_error",
    )

    def __init__(self, model: str, slo: str = "interactive") -> None:
        self.model = model
        self.created_at = time.perf_counter()
        self.completed_at: float | None = None
        #: Optional :class:`~repro.obs.trace.RequestSpan` attached by a
        #: tracing-enabled service; ``None`` when tracing is off.
        self.trace = None
        #: SLO class (:data:`~repro.serving.resilience.SLO_CLASSES`).
        self.slo = slo
        #: Absolute perf_counter deadline, or ``None`` (no eviction).
        self.deadline: float | None = None
        #: MC passes actually served when the overload ladder reduced
        #: them; ``None`` for a full-``N`` result.
        self.degraded: int | None = None
        #: True when resolved from a version-stale cache row.
        self.stale = False
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether a result or error has been delivered."""
        return self._event.is_set()

    def set_result(self, value: np.ndarray) -> bool:
        """Deliver a result; first delivery wins.

        Returns ``False`` without touching the ticket when it already
        resolved — the exactly-once guarantee coalesced followers rely
        on when eviction, supervision, and a worker race to resolve the
        shared ticket.  (The unlocked check-then-set leaves a benign
        race: two simultaneous racers may both write, but the event only
        transitions once and ``result`` prefers the error, so waiters
        still observe a single coherent outcome.)
        """
        if self._event.is_set():
            return False
        self._value = value
        self.completed_at = time.perf_counter()
        self._event.set()
        return True

    def set_exception(self, error: BaseException) -> bool:
        """Deliver a failure; first delivery wins (see :meth:`set_result`)."""
        if self._event.is_set():
            return False
        self._error = error
        self.completed_at = time.perf_counter()
        self._event.set()
        return True

    def latency(self) -> float:
        """Seconds from submit to completion (requires :meth:`done`)."""
        if self.completed_at is None:
            raise ServingError("ticket is not complete yet")
        return self.completed_at - self.created_at

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until resolved; return the probability row or re-raise.

        Returns a private copy per call: coalesced duplicate requests share
        one ticket, so handing out the stored array would let one caller's
        in-place mutation corrupt another's result (the cache copies on
        read for the same reason).
        """
        if not self._event.wait(timeout):
            raise ServingError(
                f"prediction for model {self.model!r} timed out after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value.copy()


class _Request:
    __slots__ = ("row", "ticket")

    def __init__(self, row: np.ndarray, ticket: PredictionTicket) -> None:
        self.row = row
        self.ticket = ticket


class Batch:
    """One model's worth of coalesced requests, ready for a single MC call."""

    __slots__ = ("model", "rows", "tickets", "popped_at", "expired", "cancelled")

    def __init__(self, model: str, rows: list[np.ndarray], tickets: list[PredictionTicket]) -> None:
        self.model = model
        self.rows = rows
        self.tickets = tickets
        #: ``perf_counter`` stamp of the pop — the end of queue residency
        #: for every request in the batch (tracing's queue_wait anchor).
        self.popped_at = time.perf_counter()
        #: Tickets whose deadline expired in the queue; the executing
        #: worker fails them with ``DeadlineExceeded`` (shed, not served).
        self.expired: list[PredictionTicket] = []
        #: Set by the supervisor when it declares the executing worker
        #: dead/stalled; a late (zombie) worker must not resolve tickets
        #: or fill the cache past this point.
        self.cancelled = False

    def __len__(self) -> int:
        return len(self.rows)

    def stack(self) -> np.ndarray:
        """The ``(len(batch), in_features)`` input of the batched MC call."""
        return np.stack(self.rows)


class MicroBatcher:
    """Bounded request queue with same-model micro-batch coalescing.

    Parameters
    ----------
    max_batch:
        Upper bound on rows per batch — the micro-batching window.
    max_wait_ms:
        After the first request of a batch is popped, how long a blocking
        ``next_batch`` waits for the batch to fill before dispatching a
        partial one.  ``0`` dispatches whatever is queued immediately.
    capacity:
        Bounded queue size; ``submit`` beyond it raises
        :class:`~repro.errors.ServiceOverloaded`.
    """

    def __init__(self, max_batch: int = 64, max_wait_ms: float = 2.0, capacity: int = 1024) -> None:
        check_positive("max_batch", max_batch)
        check_positive("capacity", capacity)
        if max_wait_ms < 0:
            raise ConfigurationError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if capacity < max_batch:
            raise ConfigurationError(
                f"capacity ({capacity}) must be >= max_batch ({max_batch})"
            )
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.capacity = int(capacity)
        self._queue: deque[_Request] = deque()
        # Per-model pending counts, kept in lockstep with the queue so
        # "is a full batch ready?" and the fill-wait below are O(1);
        # _full is the set of models whose count reaches max_batch.
        self._counts: dict[str, int] = {}
        self._full: set[str] = set()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Requests currently queued (all models)."""
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def submit(self, row: np.ndarray, ticket: PredictionTicket) -> int:
        """Enqueue one request; returns the queue depth after the append.

        Raises :class:`~repro.errors.ServiceOverloaded` when the queue is
        at capacity and :class:`~repro.errors.ServingError` when closed.
        """
        with self._not_empty:
            if self._closed:
                raise ServingError("batcher is closed")
            if len(self._queue) >= self.capacity:
                raise ServiceOverloaded(
                    f"request queue full ({self.capacity} pending); retry later"
                )
            self._queue.append(_Request(row, ticket))
            if ticket.trace is not None:
                ticket.trace.mark("enqueued")
            model = ticket.model
            self._counts[model] = self._counts.get(model, 0) + 1
            if self._counts[model] >= self.max_batch:
                self._full.add(model)
            depth = len(self._queue)
            self._not_empty.notify()
            return depth

    # ------------------------------------------------------------------
    def _pop_batch_locked(self) -> Batch | None:
        """Pop up to ``max_batch`` same-model requests (caller holds lock).

        Scanning stops as soon as the batch is full (or the head model's
        pending count is exhausted), and skipped other-model requests are
        spliced back in front of the untouched tail — so a pop is
        O(batch + skipped), not O(queue), and never holds the lock for a
        full-queue rebuild under multi-model load.

        Deadline eviction happens here, at the queue boundary: requests
        whose ticket deadline already passed are split into the batch's
        ``expired`` list (the executing worker fails them with
        ``DeadlineExceeded`` — they still consumed a queue slot, but no
        inference).  Tickets that resolved while queued (failed by a
        racing path) are dropped silently; a pop that yields neither live
        nor expired requests retries on the remaining queue.
        """
        while self._queue:
            model = self._queue[0].ticket.model
            available = min(self._counts[model], self.max_batch)
            taken: list[_Request] = []
            skipped: list[_Request] = []
            while len(taken) < available:
                request = self._queue.popleft()
                if request.ticket.model == model:
                    taken.append(request)
                else:
                    skipped.append(request)
            self._queue.extendleft(reversed(skipped))
            remaining = self._counts[model] - len(taken)
            if remaining:
                self._counts[model] = remaining
            else:
                del self._counts[model]
            if remaining < self.max_batch:
                self._full.discard(model)
            live: list[_Request] = []
            expired: list[PredictionTicket] = []
            now: float | None = None
            for request in taken:
                ticket = request.ticket
                if ticket.done():
                    continue
                if ticket.deadline is not None:
                    if now is None:
                        now = time.perf_counter()
                    if now > ticket.deadline:
                        expired.append(ticket)
                        continue
                live.append(request)
            if not live and not expired:
                continue  # everything popped had already resolved; retry
            batch = Batch(model, [r.row for r in live], [r.ticket for r in live])
            batch.expired = expired
            return batch
        return None

    def full_batch_ready(self) -> bool:
        """Whether *any* model has ``max_batch`` rows pending.

        The synchronous service mode uses this as its auto-drain trigger,
        so submission bursts dispatch full micro-batches and partial
        remainders wait for an explicit flush.  The check covers every
        model, not just the head of the queue — a full batch queued behind
        another model's partial rows still triggers the drain (the drain
        loop pops head batches until the full one dispatches).
        """
        with self._lock:
            return bool(self._full)

    def drain_tick(self) -> Batch | None:
        """Non-blocking tick: pop one batch if anything is queued.

        An empty queue is a valid empty tick — returns ``None``, touches
        nothing.  This is the caller-driven path of the synchronous service
        mode.
        """
        with self._lock:
            return self._pop_batch_locked()

    def next_batch(self, timeout: float | None = None) -> Batch | None:
        """Blocking pop for worker threads.

        Waits up to ``timeout`` seconds for a first request (``None`` on
        timeout or when closed and drained), then up to ``max_wait_ms``
        more for ``max_batch`` same-model requests to accumulate before
        dispatching a partial batch.
        """
        with self._not_empty:
            if not self._queue and not self._closed:
                self._not_empty.wait(timeout)
            if not self._queue:
                return None
            if self.max_wait_ms > 0:
                window = self.max_wait_ms / 1000.0
                model = self._queue[0].ticket.model
                deadline = time.perf_counter() + window
                while not self._closed:
                    if self._queue:
                        head = self._queue[0].ticket.model
                        if head != model:
                            # Another worker popped the model we were
                            # filling for; the new head gets its own fill
                            # window instead of inheriting a spent one.
                            model = head
                            deadline = time.perf_counter() + window
                        if self._counts.get(model, 0) >= self.max_batch:
                            break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
            return self._pop_batch_locked()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse new submissions and wake blocked workers.

        Already-queued requests remain poppable so a shutdown can drain.
        """
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()
