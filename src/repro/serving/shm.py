"""Checksummed shared-memory segments for the process-mode serving tier.

Process workers (:mod:`repro.serving.procpool`) cannot share Python
objects with the service process, so posterior tensors travel through
:class:`multiprocessing.shared_memory.SharedMemory` segments.  Every
segment written here carries a fixed header the attaching side validates
**on every attach**:

* a magic marker and a layout version (so a future layout change is a
  typed error, not a misread tensor);
* the array's dtype string and shape;
* a content digest (BLAKE2b-64) over the payload bytes.

A mismatch anywhere raises :class:`~repro.errors.ShmIntegrityError` — a
torn publish, a segment left behind by a dead incarnation, or foreign
memory under a recycled name must never be consumed as model weights.

Leak discipline
---------------
Segment names are OS-global state: a leaked segment survives the process
that created it.  Ownership is therefore strictly parent-side: the
creating process tracks every live segment in a module registry and is
the only one to ``unlink``.  Three layers guarantee zero leaks:

* every :class:`OwnedSegment` carries a ``weakref.finalize`` that unlinks
  it when the owner is garbage collected;
* the pool's ``stop()``/failover paths unlink deterministically;
* an ``atexit`` sweep unlinks anything still registered at interpreter
  exit (a crashed test must not leave ``psm_*`` segments behind).

Attaching processes only ``close()`` after copying.  On Python < 3.13
``SharedMemory()`` registers *every* construction with the resource
tracker, but ``multiprocessing`` children share the parent's tracker
process and its registry is a per-name set — the worker's duplicate
registration is a no-op and the parent's ``unlink()`` deregisters the
name exactly once.  Attachers must *not* send an unregister of their own:
with a shared tracker that would cancel the parent's registration and
turn every later unlink into tracker noise.
"""

from __future__ import annotations

import atexit
import hashlib
import secrets
import struct
import threading
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ConfigurationError, ShmIntegrityError

__all__ = [
    "HEADER_LAYOUT_VERSION",
    "OwnedSegment",
    "publish_array",
    "attach_array",
    "attach_raw",
    "live_segments",
    "sweep_all",
]

#: Bump on any change to the header struct below.
HEADER_LAYOUT_VERSION = 1

_MAGIC = b"RPRO"
#: magic | layout version | flags | dtype string | ndim | shape[8] |
#: payload nbytes | BLAKE2b-64 content digest.
_HEADER = struct.Struct("<4sHH16sI8QQQ")
_MAX_NDIM = 8

# ----------------------------------------------------------------------
# Parent-side live-segment registry (the leak-sweep source of truth)
# ----------------------------------------------------------------------
_registry_lock = threading.Lock()
_live: dict[str, shared_memory.SharedMemory] = {}


def live_segments() -> list[str]:
    """Names of segments created by this process and not yet unlinked."""
    with _registry_lock:
        return sorted(_live)


def _unlink_by_name(name: str) -> None:
    """Idempotent close+unlink of a registered segment (finalizer body)."""
    with _registry_lock:
        segment = _live.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
    except OSError:  # pragma: no cover - close on an already-dead mapping
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race with the OS
        pass


def sweep_all() -> int:
    """Unlink every still-registered segment; returns how many were swept.

    Registered with :mod:`atexit` so an aborted run cannot leak ``psm_*``
    segments; also the test hook for the leak-sweep assertions.
    """
    swept = 0
    for name in live_segments():
        _unlink_by_name(name)
        swept += 1
    return swept


atexit.register(sweep_all)


class OwnedSegment:
    """Handle to a parent-owned shared-memory segment.

    ``unlink()`` is idempotent and also runs via ``weakref.finalize`` when
    the handle is garbage collected, so dropping the last reference can
    never leak the OS object.
    """

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self.name = segment.name
        self.nbytes = segment.size
        with _registry_lock:
            _live[segment.name] = segment
        self._finalizer = weakref.finalize(self, _unlink_by_name, segment.name)

    def unlink(self) -> None:
        """Close and unlink the segment now (safe to call repeatedly)."""
        self._finalizer()

    @property
    def linked(self) -> bool:
        return self._finalizer.alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.linked else "unlinked"
        return f"OwnedSegment({self.name!r}, {self.nbytes} bytes, {state})"


# ----------------------------------------------------------------------
# Publish / attach
# ----------------------------------------------------------------------
def _digest(payload: memoryview | bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "little"
    )


def segment_name(prefix: str) -> str:
    """A collision-resistant segment name (``psm_``-style, parent-chosen).

    The random suffix (not a counter) keeps names from colliding with
    segments a crashed previous run failed to sweep.
    """
    return f"{prefix}-{secrets.token_hex(6)}"


def publish_array(array: np.ndarray, *, name_prefix: str = "repro") -> OwnedSegment:
    """Copy ``array`` into a new checksummed shared-memory segment.

    The caller (always the service process) owns the returned handle; the
    payload is an immutable snapshot — publishing copies, so later writer-
    side mutation cannot tear a reader.
    """
    array = np.ascontiguousarray(array)
    if array.ndim > _MAX_NDIM:
        raise ConfigurationError(
            f"cannot publish a {array.ndim}-d array (max {_MAX_NDIM} dims)"
        )
    dtype_bytes = array.dtype.str.encode("ascii")
    if len(dtype_bytes) > 16:
        raise ConfigurationError(
            f"dtype string {array.dtype.str!r} too long for the segment header"
        )
    shape = tuple(array.shape) + (0,) * (_MAX_NDIM - array.ndim)
    payload = array.tobytes()
    segment = shared_memory.SharedMemory(
        create=True, size=_HEADER.size + max(1, len(payload)),
        name=segment_name(name_prefix),
    )
    segment.buf[_HEADER.size:_HEADER.size + len(payload)] = payload
    _HEADER.pack_into(
        segment.buf, 0,
        _MAGIC, HEADER_LAYOUT_VERSION, 0, dtype_bytes.ljust(16, b"\0"),
        array.ndim, *shape, len(payload), _digest(payload),
    )
    return OwnedSegment(segment)


def _attach(name: str) -> shared_memory.SharedMemory:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise ShmIntegrityError(
            f"shared-memory segment {name!r} does not exist (already "
            "unlinked, or never published)"
        ) from None
    # SharedMemory() re-registers the name with the resource tracker
    # (until 3.13's track= parameter).  Worker processes share the
    # parent's tracker, whose registry is a set — the duplicate is
    # harmless and the parent's unlink() clears it, so no unregister
    # here (see the module docstring's leak-discipline section).
    return segment


def attach_array(name: str) -> np.ndarray:
    """Validate ``name``'s header and return a private copy of its array.

    Every check failure is a typed :class:`~repro.errors.ShmIntegrityError`;
    the segment is closed (never unlinked — the parent owns it) before
    returning.
    """
    segment = _attach(name)
    try:
        if segment.size < _HEADER.size:
            raise ShmIntegrityError(
                f"segment {name!r} is shorter than the layout header "
                f"({segment.size} < {_HEADER.size} bytes)"
            )
        (magic, layout, _flags, dtype_bytes, ndim, *rest) = _HEADER.unpack_from(
            segment.buf, 0
        )
        shape8, nbytes, digest = rest[:_MAX_NDIM], rest[_MAX_NDIM], rest[_MAX_NDIM + 1]
        if magic != _MAGIC:
            raise ShmIntegrityError(
                f"segment {name!r} has no repro header (magic {magic!r})"
            )
        if layout != HEADER_LAYOUT_VERSION:
            raise ShmIntegrityError(
                f"segment {name!r} uses layout version {layout}, this build "
                f"reads version {HEADER_LAYOUT_VERSION}"
            )
        if not 0 <= ndim <= _MAX_NDIM:
            raise ShmIntegrityError(
                f"segment {name!r} header declares {ndim} dims (max {_MAX_NDIM})"
            )
        try:
            dtype = np.dtype(dtype_bytes.rstrip(b"\0").decode("ascii"))
        except (TypeError, UnicodeDecodeError) as error:
            raise ShmIntegrityError(
                f"segment {name!r} header has an unreadable dtype"
            ) from error
        shape = tuple(int(dim) for dim in shape8[:ndim])
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if ndim else dtype.itemsize
        if nbytes != expected or segment.size < _HEADER.size + nbytes:
            raise ShmIntegrityError(
                f"segment {name!r} header is inconsistent: {nbytes} payload "
                f"bytes for shape {shape} dtype {dtype} in a "
                f"{segment.size}-byte segment"
            )
        payload = bytes(segment.buf[_HEADER.size:_HEADER.size + nbytes])
        if _digest(payload) != digest:
            raise ShmIntegrityError(
                f"segment {name!r} failed its content digest — torn or "
                "corrupted publish; refusing to load it as tensor data"
            )
        return np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
    finally:
        segment.close()


def attach_raw(name: str) -> shared_memory.SharedMemory:
    """Attach without validation (tests corrupt headers through this).

    The caller must ``close()`` the returned segment; ownership (unlink)
    stays with the publisher.
    """
    return _attach(name)
