"""Load-test harness: open- and closed-loop request generators.

Two canonical arrival patterns drive :class:`~repro.serving.service.BnnService`:

* **Closed loop** (:func:`run_closed_loop`) — a fixed window of in-flight
  requests; the next window is issued only when the previous one
  completed.  Measures *capacity*: the maximum sustainable requests/sec of
  the configuration, which is what the ≥5x micro-batching-vs-per-request
  benchmark gate compares.
* **Open loop** (:func:`run_open_loop`) — requests arrive on a Poisson
  process at ``rate_rps`` regardless of completions, the standard model of
  independent users.  Measures *latency under load* and exercises the
  backpressure path: arrivals beyond the bounded queue are dropped and
  counted, not buffered.

Arrival randomness is seeded through
:func:`repro.utils.seeding.spawn_generator`, so a load test is replayable.
Latencies are taken from the tickets' own submit/complete timestamps — the
same numbers the service metrics record — so client- and service-side
views agree.

For apples-to-apples comparisons *across service configurations* (thread
vs process workers, chaos vs calm) the open loop's live draws are not
enough: the schedule must be frozen first.  :func:`generate_trace`
materialises a seeded burst or diurnal arrival schedule as a
:class:`TracePlan` — plain data, no generator state — and
:func:`trace_replay` offers exactly that schedule (same offsets, same
image indices, same SLO classes) against any service, so two runs differ
only in the serving stack under test.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    AdmissionShed,
    ConfigurationError,
    DeadlineExceeded,
    ServiceOverloaded,
)
from repro.serving.batcher import PredictionTicket
from repro.serving.metrics import format_latency, percentile_dict
from repro.serving.resilience import SLO_CLASSES, FaultPlan
from repro.serving.service import BnnService
from repro.utils.seeding import spawn_generator
from repro.utils.validation import check_positive

#: Ceiling on waiting for stragglers when a run ends.
_RESULT_TIMEOUT_S = 60.0


@dataclass
class LoadStats:
    """Outcome of one load-generator run."""

    pattern: str
    offered: int
    completed: int
    #: Open-loop arrivals rejected by backpressure and lost.
    dropped: int = 0
    #: Closed-loop rejections that were retried (and eventually completed).
    retried: int = 0
    failed: int = 0
    #: Requests shed by the resilience layer (admission control at submit,
    #: deadline eviction in queue).  Their own bucket — policy losses, not
    #: service faults — and excluded from the latency samples.
    shed: int = 0
    #: Tickets that never resolved within the collection timeout.  The
    #: no-hang invariant requires this to be 0 in every chaos run.
    hung: int = 0
    #: Total wall clock of the run (arrival window + drain for open loop).
    duration_s: float = 0.0
    #: Open loop only: the arrival window alone — the interval during
    #: which requests were offered.  0.0 for closed-loop runs.
    window_s: float = 0.0
    #: Open loop only: post-window flush/drain and straggler collection.
    drain_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list, repr=False)
    #: Per-completion submit stamps (``ticket.created_at``, perf_counter
    #: timebase), index-aligned with ``latencies_s`` — the raw samples
    #: behind :meth:`export_samples`.
    submit_ts: list[float] = field(default_factory=list, repr=False)
    #: Completed-request latencies grouped by SLO class (resilience runs
    #: only; empty otherwise).
    latencies_by_slo: dict[str, list[float]] = field(default_factory=dict, repr=False)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second.

        Open-loop runs divide by the arrival window (all completed work
        arrived inside it; including the post-window drain in the
        denominator would understate the service); closed-loop runs use
        the full wall clock, whose windows have no idle drain tail.
        """
        basis = self.window_s if self.window_s > 0 else self.duration_s
        return self.completed / basis if basis > 0 else 0.0

    def latency_percentiles(self) -> dict[str, float]:
        return percentile_dict(self.latencies_s)

    def latency_mean(self) -> float:
        return float(np.mean(self.latencies_s)) if self.latencies_s else 0.0

    def latency_max(self) -> float:
        return float(np.max(self.latencies_s)) if self.latencies_s else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed by policy (0.0 when none)."""
        return self.shed / self.offered if self.offered else 0.0

    @property
    def goodput_rps(self) -> float:
        """Completed-within-policy requests per second (= throughput here:
        shed and failed rows never reach ``completed``)."""
        return self.throughput_rps

    def slo_percentiles(self, slo: str) -> dict[str, float]:
        """Latency percentiles of one SLO class's completions only."""
        return percentile_dict(self.latencies_by_slo.get(slo, []))

    def summary(self) -> dict[str, float]:
        """Percentiles plus mean/max — one dict for reports and recorders.

        Shed requests are *excluded* from every latency number (they were
        refused, not served slowly) and surfaced as ``shed_rate`` instead.
        """
        out = self.latency_percentiles()
        out["mean"] = self.latency_mean()
        out["max"] = self.latency_max()
        if self.shed or self.hung:
            out["shed_rate"] = self.shed_rate
        return out

    def export_samples(self, path) -> pathlib.Path:
        """Write per-request ``{submit_ts, latency_s}`` JSON lines.

        ``submit_ts`` is the ticket's ``perf_counter`` submit stamp — the
        same timebase the server's trace spans use, so client samples and
        span timelines can be joined offline.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for submit, latency in zip(self.submit_ts, self.latencies_s):
                handle.write(
                    json.dumps({"submit_ts": submit, "latency_s": latency}) + "\n"
                )
        return path

    def render(self) -> str:
        if self.window_s > 0:
            duration_line = (
                f"duration     : {self.duration_s:.3f}s "
                f"({self.window_s:.3f}s arrival window + {self.drain_s:.3f}s drain)"
            )
        else:
            duration_line = f"duration     : {self.duration_s:.3f}s"
        lines = [
            f"pattern      : {self.pattern}",
            f"offered      : {self.offered} requests"
            + (f" ({self.dropped} dropped by backpressure)" if self.dropped else "")
            + (f" ({self.retried} backpressure retries)" if self.retried else ""),
            f"completed    : {self.completed} ({self.failed} failed)",
            duration_line,
            f"throughput   : {self.throughput_rps:,.1f} req/s",
            f"latency      : {format_latency(self.latency_percentiles())}  "
            f"mean={self.latency_mean() * 1e3:.2f}ms  "
            f"max={self.latency_max() * 1e3:.2f}ms",
        ]
        if self.shed or self.hung:
            lines.append(
                f"resilience   : {self.shed} shed "
                f"({self.shed_rate * 100.0:.1f}% of offered), {self.hung} hung"
            )
        if len(self.latencies_by_slo) > 1:
            for slo in SLO_CLASSES:
                if self.latencies_by_slo.get(slo):
                    lines.append(
                        f"  {slo:<11}: {len(self.latencies_by_slo[slo])} completed  "
                        f"{format_latency(self.slo_percentiles(slo))}"
                    )
        return "\n".join(lines)


def _collect(stats: LoadStats, tickets: list[PredictionTicket], timeout: float) -> None:
    for ticket in tickets:
        try:
            ticket.result(timeout)
        except (DeadlineExceeded, AdmissionShed):
            stats.shed += 1  # policy loss, not a service fault
        except Exception:  # noqa: BLE001 - a load test tallies failures
            if ticket.done():
                stats.failed += 1
            else:
                stats.hung += 1  # result() timed out with no resolution at all
        else:
            stats.completed += 1
            stats.latencies_s.append(ticket.latency())
            stats.submit_ts.append(ticket.created_at)
            stats.latencies_by_slo.setdefault(ticket.slo, []).append(ticket.latency())


def run_closed_loop(
    service: BnnService,
    model: str,
    images: np.ndarray,
    *,
    total_requests: int,
    window: int | None = None,
    slo: str | None = None,
    deadline_s: float | None = None,
    result_timeout_s: float = _RESULT_TIMEOUT_S,
) -> LoadStats:
    """Issue ``total_requests`` in back-to-back windows; measure capacity.

    ``window`` defaults to the service's ``max_batch`` so each window maps
    onto one full micro-batch.  Requests cycle through ``images``.
    Transient :class:`~repro.errors.ServiceOverloaded` rejections are
    retried after a short backoff (a closed-loop client waits, it does not
    drop) — but an :class:`~repro.errors.AdmissionShed` is final: the
    policy refused this class under pressure, so the request lands in the
    ``shed`` bucket instead of a retry storm that would defeat the
    controller.
    """
    check_positive("total_requests", total_requests)
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 2 or images.shape[0] == 0:
        raise ConfigurationError(
            f"images must be a non-empty (count, features) array, got {images.shape}"
        )
    if window is None:
        window = service.config.max_batch
    check_positive("window", window)
    stats = LoadStats(pattern="closed-loop", offered=total_requests, completed=0)
    start = time.perf_counter()
    sent = 0
    while sent < total_requests:
        take = min(window, total_requests - sent)
        tickets: list[PredictionTicket] = []
        for offset in range(take):
            row = images[(sent + offset) % images.shape[0]]
            while True:
                try:
                    tickets.append(
                        service.submit(model, row, slo=slo, deadline_s=deadline_s)
                    )
                    break
                except AdmissionShed:
                    stats.shed += 1  # shed by policy: lost, not retried
                    break
                except ServiceOverloaded:
                    stats.retried += 1  # the request is retried, not lost
                    time.sleep(0.001)
        service.flush()
        _collect(stats, tickets, result_timeout_s)
        sent += take
    stats.duration_s = time.perf_counter() - start
    return stats


def run_open_loop(
    service: BnnService,
    model: str,
    images: np.ndarray,
    *,
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
    slo: str | None = None,
    deadline_s: float | None = None,
    slo_weights: "dict[str, float] | None" = None,
    fault_plan: FaultPlan | None = None,
    result_timeout_s: float = _RESULT_TIMEOUT_S,
) -> LoadStats:
    """Poisson arrivals at ``rate_rps`` for ``duration_s``; measure latency.

    Requests that hit a full queue are dropped (counted, not retried) —
    open-loop clients model independent users, whose arrivals do not slow
    down because the service is busy.  Admission-control sheds land in
    their own ``shed`` bucket.  Meaningful latency numbers need a service
    with ``workers >= 1``; in synchronous mode only full batches dispatch
    during the run and the remainder drains at the end.

    ``slo_weights`` draws each request's SLO class from a weighted
    distribution (seeded — replayable); it is mutually exclusive with a
    fixed ``slo``.  A ``fault_plan`` with burst windows multiplies the
    arrival rate inside each window (burst overload) without perturbing
    the underlying exponential draw sequence.

    The arrival window (``window_s``) and the post-window flush/drain
    (``drain_s``) are measured separately; ``throughput_rps`` divides by
    the window, so the drain tail no longer deflates the reported rate.
    """
    check_positive("rate_rps", rate_rps)
    check_positive("duration_s", duration_s)
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 2 or images.shape[0] == 0:
        raise ConfigurationError(
            f"images must be a non-empty (count, features) array, got {images.shape}"
        )
    if slo_weights is not None:
        if slo is not None:
            raise ConfigurationError("pass either slo or slo_weights, not both")
        unknown = set(slo_weights) - set(SLO_CLASSES)
        if unknown or not slo_weights:
            raise ConfigurationError(
                f"slo_weights must be a non-empty map over {SLO_CLASSES}, "
                f"got {sorted(slo_weights)}"
            )
        classes = [c for c in SLO_CLASSES if c in slo_weights]
        weights = np.asarray([slo_weights[c] for c in classes], dtype=np.float64)
        if weights.sum() <= 0 or (weights < 0).any():
            raise ConfigurationError("slo_weights must be non-negative, sum > 0")
        weights = weights / weights.sum()
    rng = spawn_generator(seed, "loadgen-open")
    stats = LoadStats(pattern=f"open-loop @ {rate_rps:g} req/s", offered=0, completed=0)
    tickets: list[PredictionTicket] = []
    start = time.perf_counter()
    next_arrival = start
    index = 0
    while True:
        gap = rng.exponential(1.0 / rate_rps)
        if fault_plan is not None:
            # Scale the gap, not the rate inside the draw: the exponential
            # sequence is identical with or without bursts, so a chaos run
            # replays the same arrival skeleton as its calm twin.
            gap /= fault_plan.rate_multiplier(next_arrival - start)
        next_arrival += gap
        now = time.perf_counter()
        if next_arrival - start > duration_s:
            break
        if next_arrival > now:
            time.sleep(next_arrival - now)
        request_slo = slo
        if slo_weights is not None:
            request_slo = classes[int(rng.choice(len(classes), p=weights))]
        stats.offered += 1
        try:
            tickets.append(
                service.submit(
                    model,
                    images[index % images.shape[0]],
                    slo=request_slo,
                    deadline_s=deadline_s,
                )
            )
        except AdmissionShed:
            stats.shed += 1
        except ServiceOverloaded:
            stats.dropped += 1
        index += 1
    # The arrival window ends here; the flush/drain and straggler
    # collection below are accounted separately so throughput_rps (which
    # divides by the window) is not understated by the drain tail.
    stats.window_s = time.perf_counter() - start
    service.flush()
    _collect(stats, tickets, result_timeout_s)
    stats.duration_s = time.perf_counter() - start
    stats.drain_s = stats.duration_s - stats.window_s
    return stats


# ----------------------------------------------------------------------
# Frozen arrival traces (cross-configuration comparisons)
# ----------------------------------------------------------------------
#: Shapes :func:`generate_trace` knows how to draw.
TRACE_PATTERNS = ("burst", "diurnal")


@dataclass(frozen=True)
class TracePlan:
    """A frozen arrival schedule: pure data, replayable anywhere.

    ``arrivals`` is a tuple of ``(offset_s, image_index, slo)`` rows —
    offsets relative to replay start, the image index each request cycles
    into, and the request's SLO class (``None`` outside resilience runs).
    Because the schedule carries no generator state, replaying it against
    a threaded and a process-mode service offers bit-identical request
    sequences, which the cross-mode equivalence gates rely on.
    """

    pattern: str
    seed: int
    rate_rps: float
    duration_s: float
    arrivals: tuple[tuple[float, int, "str | None"], ...]

    def __len__(self) -> int:
        return len(self.arrivals)


def generate_trace(
    seed: int,
    *,
    rate_rps: float,
    duration_s: float,
    pattern: str = "burst",
    image_count: int = 1,
    slo_weights: "dict[str, float] | None" = None,
    burst_multiplier: float = 4.0,
    burst_period_s: float = 1.0,
    burst_width_s: float = 0.25,
    diurnal_floor: float = 0.25,
) -> TracePlan:
    """Draw a seeded non-homogeneous Poisson arrival schedule.

    Two canonical shapes:

    * ``"burst"`` — baseline ``rate_rps`` with periodic windows (every
      ``burst_period_s``, lasting ``burst_width_s``) at
      ``burst_multiplier`` times the rate: flash-crowd overload.
    * ``"diurnal"`` — one sinusoidal "day" across ``duration_s``, dipping
      to ``diurnal_floor`` of the peak rate: slow load swing.

    Arrivals are drawn by thinning a homogeneous process at the peak
    rate, so the whole schedule is a pure function of the arguments.
    """
    check_positive("rate_rps", rate_rps)
    check_positive("duration_s", duration_s)
    check_positive("image_count", image_count)
    if pattern not in TRACE_PATTERNS:
        raise ConfigurationError(
            f"unknown trace pattern {pattern!r}; "
            f"expected one of {', '.join(TRACE_PATTERNS)}"
        )
    if pattern == "burst":
        if burst_multiplier < 1.0:
            raise ConfigurationError(
                f"burst_multiplier must be >= 1, got {burst_multiplier}"
            )
        if not 0.0 < burst_width_s <= burst_period_s:
            raise ConfigurationError(
                "burst_width_s must be in (0, burst_period_s] "
                f"({burst_width_s} vs {burst_period_s})"
            )
        peak = rate_rps * burst_multiplier

        def rate_at(t: float) -> float:
            in_burst = (t % burst_period_s) < burst_width_s
            return peak if in_burst else rate_rps

    else:
        if not 0.0 < diurnal_floor <= 1.0:
            raise ConfigurationError(
                f"diurnal_floor must be in (0, 1], got {diurnal_floor}"
            )
        peak = rate_rps

        def rate_at(t: float) -> float:
            swing = 0.5 * (1.0 - np.cos(2.0 * np.pi * t / duration_s))
            return rate_rps * (diurnal_floor + (1.0 - diurnal_floor) * swing)

    rng = spawn_generator(seed, "loadgen-trace")
    classes: list[str] = []
    weights = None
    if slo_weights is not None:
        unknown = set(slo_weights) - set(SLO_CLASSES)
        if unknown or not slo_weights:
            raise ConfigurationError(
                f"slo_weights must be a non-empty map over {SLO_CLASSES}, "
                f"got {sorted(slo_weights)}"
            )
        classes = [c for c in SLO_CLASSES if c in slo_weights]
        weights = np.asarray([slo_weights[c] for c in classes], dtype=np.float64)
        if weights.sum() <= 0 or (weights < 0).any():
            raise ConfigurationError("slo_weights must be non-negative, sum > 0")
        weights = weights / weights.sum()
    arrivals: list[tuple[float, int, "str | None"]] = []
    t = 0.0
    index = 0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t > duration_s:
            break
        # Thinning: accept with probability rate(t)/peak.  The uniform is
        # drawn unconditionally so the stream's consumption pattern (and
        # hence every later draw) is schedule-independent.
        accept = float(rng.uniform()) < rate_at(t) / peak
        if not accept:
            continue
        slo: str | None = None
        if weights is not None:
            slo = classes[int(rng.choice(len(classes), p=weights))]
        arrivals.append((t, index % image_count, slo))
        index += 1
    return TracePlan(
        pattern=pattern,
        seed=seed,
        rate_rps=rate_rps,
        duration_s=duration_s,
        arrivals=tuple(arrivals),
    )


def trace_replay(
    service: BnnService,
    model: str,
    images: np.ndarray,
    plan: TracePlan,
    *,
    deadline_s: float | None = None,
    pace: bool = True,
    result_timeout_s: float = _RESULT_TIMEOUT_S,
) -> LoadStats:
    """Offer a :class:`TracePlan`'s schedule against ``service``.

    With ``pace=True`` arrivals are held to the plan's offsets (open-loop
    timing fidelity); ``pace=False`` offers the same sequence as fast as
    the submit path accepts it, which is what the bit-exactness
    comparisons use — identical request order with no wall-clock jitter.
    Backpressure drops and admission sheds land in the usual buckets.
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 2 or images.shape[0] == 0:
        raise ConfigurationError(
            f"images must be a non-empty (count, features) array, got {images.shape}"
        )
    stats = LoadStats(
        pattern=f"trace-replay[{plan.pattern} seed={plan.seed}]",
        offered=0,
        completed=0,
    )
    tickets: list[PredictionTicket] = []
    start = time.perf_counter()
    for offset, image_index, slo in plan.arrivals:
        if pace:
            target = start + offset
            now = time.perf_counter()
            if target > now:
                time.sleep(target - now)
        stats.offered += 1
        try:
            tickets.append(
                service.submit(
                    model,
                    images[image_index % images.shape[0]],
                    slo=slo,
                    deadline_s=deadline_s,
                )
            )
        except AdmissionShed:
            stats.shed += 1
        except ServiceOverloaded:
            stats.dropped += 1
    stats.window_s = time.perf_counter() - start
    service.flush()
    _collect(stats, tickets, result_timeout_s)
    stats.duration_s = time.perf_counter() - start
    stats.drain_s = stats.duration_s - stats.window_s
    return stats
